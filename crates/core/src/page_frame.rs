//! The Page Frame Manager.
//!
//! Manager of page frames and of *paged objects* — page tables bound to
//! disk homes. Three of the paper's mechanisms live here:
//!
//! * **The descriptor lock protocol.** The hardware sets the lock bit in
//!   a missing page's descriptor while taking the fault, so no
//!   interpretive retranslation is ever needed: the handler that owns the
//!   locked descriptor services the page, *unlocks the descriptor and
//!   notifies all processes that have been waiting* (an eventcount
//!   advance — no knowledge of who waits). A processor that encounters a
//!   locked descriptor takes the locked-page-descriptor exception and
//!   waits on the same eventcount.
//!
//! * **The quota-trap bit.** The manager sets the exception-causing bit
//!   in every descriptor corresponding to an unallocated page, so a
//!   reference to a never-before-used page raises a *quota* fault routed
//!   to the known-segment manager — page creation is requested from
//!   above, with quota already checked, through
//!   [`PageFrameManager::add_page`]. The manager never identifies pages
//!   with segments, never walks any hierarchy.
//!
//! * **The write-behind purifier.** Following Huber's multi-process
//!   paging design, modified victims are queued for a dedicated daemon
//!   virtual processor ([`PageFrameManager::purifier_step`]) that writes
//!   them back — at low priority, when a processor would otherwise be
//!   idle — and performs the zero-page scan, reverting all-zero pages to
//!   file-map flags and uncharging their statically bound quota cells.
//!
//! The manager's own map (page-table pool slot → disk home and cell) is
//! kept in ordinary manager state backed by a core segment; it depends
//! only on the core-segment, disk-record and quota-cell managers and the
//! virtual-processor primitives — all below it in the lattice.

use crate::core_segment::CoreSegmentManager;
use crate::disk_record::DiskRecordManager;
use crate::error::KernelError;
use crate::quota_cell::QuotaCellManager;
use crate::types::{DiskHome, SegUid};
use crate::vproc::VirtualProcessorManager;
use mx_hw::cpu::Ptw;
use mx_hw::{AbsAddr, DiskError, FrameNo, Machine, PackId, RecordNo, Subsystem, PAGE_WORDS};
use mx_sync::sim::EcId;
use std::collections::VecDeque;

/// Page-table words per paged object — the maximum segment size in pages.
pub const PT_WORDS: u32 = 256;

/// Transient-read retries before the failure surfaces as a typed error.
pub const READ_RETRY_BUDGET: u32 = 3;

/// Reads a record into a frame, retrying transient errors up to the
/// budget; exhaustion (and every hard fault) surfaces as
/// [`KernelError::Disk`] — never a panic. Returns the retries used.
pub(crate) fn read_into_frame_with_retry(
    machine: &mut Machine,
    pack: PackId,
    record: RecordNo,
    frame: FrameNo,
) -> Result<u32, KernelError> {
    let mut retries = 0;
    loop {
        match machine.disk_read_into_frame(pack, record, frame) {
            Ok(()) => return Ok(retries),
            Err(e @ DiskError::TransientRead { .. }) => {
                retries += 1;
                if retries >= READ_RETRY_BUDGET {
                    return Err(KernelError::Disk(e));
                }
            }
            Err(e) => return Err(KernelError::Disk(e)),
        }
    }
}

/// A handle to a paged object (a bound page-table slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PtHandle(pub u32);

#[derive(Debug, Clone, Copy)]
struct PtBinding {
    home: DiskHome,
    /// The statically bound quota cell to uncharge on zero reversion.
    cell: Option<SegUid>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrameUse {
    Free,
    Page { slot: u32, pageno: u32 },
}

/// Experiment counters for the paging paths.
#[derive(Debug, Clone, Copy, Default)]
pub struct PageStats {
    /// Missing pages serviced (page-ins).
    pub services: u64,
    /// Pages created via [`PageFrameManager::add_page`].
    pub creations: u64,
    /// Frames reclaimed from other pages.
    pub evictions: u64,
    /// Evicted pages found all-zero and reverted to file-map flags.
    pub zero_reversions: u64,
    /// Pages written back by the purifier daemon.
    pub purifier_writes: u64,
    /// Eventcount notifications issued after services.
    pub notifications: u64,
    /// Transient read errors absorbed by the retry path.
    pub transient_retries: u64,
}

/// The page-frame object manager.
#[derive(Debug)]
pub struct PageFrameManager {
    pool_base: AbsAddr,
    slots: Vec<Option<PtBinding>>,
    frames: Vec<FrameUse>,
    first_pageable: u32,
    clock_hand: u32,
    write_queue: VecDeque<FrameNo>,
    /// Advanced whenever a locked descriptor is serviced and unlocked.
    pub page_event: EcId,
    /// Counters.
    pub stats: PageStats,
}

impl PageFrameManager {
    /// Builds the manager: a page-table pool of `slots` paged objects in
    /// a core segment, and the page eventcount.
    ///
    /// The pageable frame region must be declared later with
    /// [`PageFrameManager::set_pageable_region`], after every core
    /// segment has been allocated.
    ///
    /// # Errors
    ///
    /// [`KernelError::TableFull`] if the core-segment region cannot hold
    /// the pool.
    pub fn new(
        csm: &mut CoreSegmentManager,
        vpm: &mut VirtualProcessorManager,
        slots: u32,
    ) -> Result<Self, KernelError> {
        let words = u64::from(slots) * u64::from(PT_WORDS);
        let frames = words.div_ceil(PAGE_WORDS as u64) as u32;
        let pool_seg = csm.allocate(frames.max(1))?;
        Ok(Self {
            pool_base: csm.addr(pool_seg, 0),
            slots: (0..slots).map(|_| None).collect(),
            frames: Vec::new(),
            first_pageable: 0,
            clock_hand: 0,
            write_queue: VecDeque::new(),
            page_event: vpm.create_eventcount(),
            stats: PageStats::default(),
        })
    }

    /// Declares the pageable region `[first, total)` once initialization
    /// has fixed the wired layout.
    pub fn set_pageable_region(&mut self, first: u32, total: u32) {
        self.first_pageable = first;
        self.clock_hand = first;
        self.frames = (0..total).map(|_| FrameUse::Free).collect();
    }

    /// Number of pageable frames.
    pub fn pageable(&self) -> u32 {
        self.frames.len() as u32 - self.first_pageable
    }

    /// Absolute address of the page table for a bound handle.
    ///
    /// # Panics
    ///
    /// Panics on a foreign or unbound handle.
    pub fn pt_addr(&self, handle: PtHandle) -> AbsAddr {
        assert!(
            self.slots[handle.0 as usize].is_some(),
            "unbound page table handle"
        );
        self.pool_base
            .add(u64::from(handle.0) * u64::from(PT_WORDS))
    }

    /// The disk home a handle is bound to.
    ///
    /// # Panics
    ///
    /// Panics on an unbound handle.
    pub fn home(&self, handle: PtHandle) -> DiskHome {
        self.slots[handle.0 as usize].expect("bound handle").home
    }

    /// Binds a page-table slot to the segment at `home`, initializing
    /// every descriptor: not-present, with the quota-trap bit on exactly
    /// the unallocated pages (holes and everything past the length).
    ///
    /// # Errors
    ///
    /// [`KernelError::TableFull`] when the pool is exhausted.
    pub fn bind(
        &mut self,
        machine: &mut Machine,
        drm: &DiskRecordManager,
        home: DiskHome,
        cell: Option<SegUid>,
    ) -> Result<PtHandle, KernelError> {
        let slot = self
            .slots
            .iter()
            .position(|s| s.is_none())
            .ok_or(KernelError::TableFull("page table pool"))? as u32;
        self.slots[slot as usize] = Some(PtBinding { home, cell });
        let handle = PtHandle(slot);
        for pageno in 0..PT_WORDS {
            let allocated = drm.record_of(machine, home, pageno)?.is_some();
            let ptw = Ptw {
                quota_trap: !allocated,
                ..Ptw::default()
            };
            machine
                .mem
                .write(self.ptw_addr(handle, pageno), ptw.encode());
        }
        // The slot may be a reused one: translations cached from its
        // previous tenant must not survive into the new binding.
        machine.tlb_invalidate_ptw_range(self.ptw_addr(handle, 0), u64::from(PT_WORDS));
        Ok(handle)
    }

    /// Unbinds a paged object: flushes every resident page (with the
    /// zero scan) and frees the slot.
    ///
    /// # Errors
    ///
    /// Propagates disk errors from the flush.
    pub fn unbind(
        &mut self,
        machine: &mut Machine,
        drm: &mut DiskRecordManager,
        qcm: &mut QuotaCellManager,
        handle: PtHandle,
    ) -> Result<(), KernelError> {
        self.flush(machine, drm, qcm, handle)?;
        self.slots[handle.0 as usize] = None;
        Ok(())
    }

    /// Flushes every resident page of a paged object to disk (or back to
    /// zero flags), leaving the object bound.
    ///
    /// # Errors
    ///
    /// Propagates disk errors.
    pub fn flush(
        &mut self,
        machine: &mut Machine,
        drm: &mut DiskRecordManager,
        qcm: &mut QuotaCellManager,
        handle: PtHandle,
    ) -> Result<(), KernelError> {
        let owned: Vec<(u32, u32)> = self
            .frames
            .iter()
            .enumerate()
            .filter_map(|(f, u)| match u {
                FrameUse::Page { slot, pageno } if *slot == handle.0 => Some((f as u32, *pageno)),
                _ => None,
            })
            .collect();
        for (frame, pageno) in owned {
            self.evict_frame(machine, drm, qcm, FrameNo(frame), handle.0, pageno)?;
        }
        Ok(())
    }

    /// Absolute address of a PTW.
    fn ptw_addr(&self, handle: PtHandle, pageno: u32) -> AbsAddr {
        self.pool_base
            .add(u64::from(handle.0) * u64::from(PT_WORDS) + u64::from(pageno))
    }

    /// Reads a PTW.
    pub fn ptw(&self, machine: &Machine, handle: PtHandle, pageno: u32) -> Ptw {
        Ptw::decode(machine.mem.read(self.ptw_addr(handle, pageno)))
    }

    fn set_ptw(&self, machine: &mut Machine, handle: PtHandle, pageno: u32, ptw: Ptw) {
        let addr = self.ptw_addr(handle, pageno);
        // Witness: page-table slots belong to page control; a rewrite
        // from any other scope appears in the edge ledger.
        machine.clock.note_shared_data(Subsystem::PageControl);
        machine.mem.write(addr, ptw.encode());
        // Every kernel descriptor mutation funnels through here: flush
        // the associative memories for the rewritten word ("setfaults").
        machine.tlb_invalidate_ptw(addr);
    }

    /// Maps a faulting descriptor address back to (handle, pageno) using
    /// the manager's own pool geometry.
    pub fn identify(&self, descriptor: AbsAddr) -> Option<(PtHandle, u32)> {
        if descriptor.0 < self.pool_base.0 {
            return None;
        }
        let rel = descriptor.0 - self.pool_base.0;
        let slot = (rel / u64::from(PT_WORDS)) as u32;
        let pageno = (rel % u64::from(PT_WORDS)) as u32;
        if (slot as usize) < self.slots.len() && self.slots[slot as usize].is_some() {
            Some((PtHandle(slot), pageno))
        } else {
            None
        }
    }

    /// Services a missing-page fault whose descriptor the hardware has
    /// already locked: pages the record in, unlocks the descriptor, and
    /// notifies every waiter via the page eventcount.
    ///
    /// # Errors
    ///
    /// [`KernelError::UnhandledFault`]-free by construction: a missing
    /// (not quota-trap) page always has a record. Disk and frame errors
    /// propagate.
    pub fn service_missing(
        &mut self,
        machine: &mut Machine,
        drm: &mut DiskRecordManager,
        qcm: &mut QuotaCellManager,
        vpm: &mut VirtualProcessorManager,
        handle: PtHandle,
        pageno: u32,
    ) -> Result<(), KernelError> {
        crate::charge_pli(machine, 95);
        let ptw = self.ptw(machine, handle, pageno);
        if ptw.present {
            // Already serviced (we were a waiter); nothing to do.
            return Ok(());
        }
        let home = self.home(handle);
        let record = drm
            .record_of(machine, home, pageno)?
            .expect("missing-page fault on a page with no record: quota-trap bit lost");
        let frame = self.claim_frame(machine, drm, qcm, handle.0, pageno)?;
        match read_into_frame_with_retry(machine, home.pack, record, frame) {
            Ok(retries) => self.stats.transient_retries += u64::from(retries),
            Err(e) => {
                // Release the claimed frame so an exhausted or offline
                // read leaves no leak, and clear the lock bit the
                // hardware set at fault time — a descriptor left locked
                // would turn every later reference into an endless
                // LockedDescriptor wait. Waiters are notified so they
                // re-fault and observe the error themselves.
                self.frames[frame.0 as usize] = FrameUse::Free;
                let mut unlocked = ptw;
                unlocked.locked = false;
                self.set_ptw(machine, handle, pageno, unlocked);
                self.stats.notifications += 1;
                vpm.advance(self.page_event);
                return Err(e);
            }
        }
        self.set_ptw(
            machine,
            handle,
            pageno,
            Ptw {
                frame,
                present: true,
                used: true,
                ..Ptw::default()
            },
        );
        self.stats.services += 1;
        // Unlock (the write above cleared the lock bit) and notify.
        self.stats.notifications += 1;
        vpm.advance(self.page_event);
        Ok(())
    }

    /// Adds a never-before-used page to a paged object. Called from the
    /// segment manager *after* the quota charge has been approved.
    ///
    /// # Errors
    ///
    /// [`KernelError::AllPacksFull`] when the home pack is full — the
    /// caller relocates and retries.
    pub fn add_page(
        &mut self,
        machine: &mut Machine,
        drm: &mut DiskRecordManager,
        qcm: &mut QuotaCellManager,
        handle: PtHandle,
        pageno: u32,
    ) -> Result<(), KernelError> {
        if pageno >= PT_WORDS {
            return Err(KernelError::SegmentTooBig);
        }
        crate::charge_pli(machine, 70);
        let home = self.home(handle);
        let record = drm.allocate(machine, home.pack)?;
        let frame = match self.claim_frame(machine, drm, qcm, handle.0, pageno) {
            Ok(f) => f,
            Err(e) => {
                drm.free(machine, home.pack, record);
                return Err(e);
            }
        };
        machine.mem.zero_frame(frame);
        drm.set_record(machine, home, pageno, Some(record))?;
        self.set_ptw(
            machine,
            handle,
            pageno,
            Ptw {
                frame,
                present: true,
                used: true,
                modified: true,
                ..Ptw::default()
            },
        );
        self.stats.creations += 1;
        Ok(())
    }

    /// Claims a frame, preferring free frames, then clean victims; when
    /// only dirty frames remain, runs the purifier synchronously.
    fn claim_frame(
        &mut self,
        machine: &mut Machine,
        drm: &mut DiskRecordManager,
        qcm: &mut QuotaCellManager,
        slot: u32,
        pageno: u32,
    ) -> Result<FrameNo, KernelError> {
        for attempt in 0..3 {
            if let Some(f) = self.take_free(slot, pageno) {
                return Ok(f);
            }
            if let Some((frame, vslot, vpage)) = self.select_clean_victim(machine) {
                self.evict_frame(machine, drm, qcm, frame, vslot, vpage)?;
                if let Some(f) = self.take_free(slot, pageno) {
                    return Ok(f);
                }
            }
            if attempt < 2 {
                // Everything is dirty: purify synchronously.
                while self.purifier_step(machine, drm, qcm)? {}
            }
        }
        Err(KernelError::TableFull("page frames"))
    }

    fn take_free(&mut self, slot: u32, pageno: u32) -> Option<FrameNo> {
        let start = self.first_pageable as usize;
        let i = self.frames[start..]
            .iter()
            .position(|f| *f == FrameUse::Free)?;
        let frame = FrameNo((start + i) as u32);
        self.frames[frame.0 as usize] = FrameUse::Page { slot, pageno };
        Some(frame)
    }

    /// Second-chance clock preferring clean pages; dirty candidates are
    /// queued for the purifier instead of being written inline.
    fn select_clean_victim(&mut self, machine: &mut Machine) -> Option<(FrameNo, u32, u32)> {
        let n = self.frames.len() as u32;
        let span = (n - self.first_pageable) * 2;
        for _ in 0..span {
            let f = self.clock_hand;
            self.clock_hand += 1;
            if self.clock_hand >= n {
                self.clock_hand = self.first_pageable;
            }
            let FrameUse::Page { slot, pageno } = self.frames[f as usize] else {
                continue;
            };
            let handle = PtHandle(slot);
            let mut ptw = self.ptw(machine, handle, pageno);
            if ptw.wired || ptw.locked {
                continue;
            }
            if ptw.used {
                ptw.used = false;
                self.set_ptw(machine, handle, pageno, ptw);
                continue;
            }
            if ptw.modified {
                if !self.write_queue.contains(&FrameNo(f)) {
                    self.write_queue.push_back(FrameNo(f));
                }
                continue;
            }
            return Some((FrameNo(f), slot, pageno));
        }
        None
    }

    /// Evicts one resident page: scans for all-zeros (reverting to a
    /// flag and uncharging the bound cell) or writes it back, then frees
    /// the frame and re-arms the descriptor.
    fn evict_frame(
        &mut self,
        machine: &mut Machine,
        drm: &mut DiskRecordManager,
        qcm: &mut QuotaCellManager,
        frame: FrameNo,
        slot: u32,
        pageno: u32,
    ) -> Result<(), KernelError> {
        let handle = PtHandle(slot);
        let binding = self.slots[slot as usize].expect("bound slot");
        let ptw = self.ptw(machine, handle, pageno);
        self.stats.evictions += 1;
        // The zero scan reads the whole page: the paper's "otherwise
        // unnecessary access to the data in every page".
        crate::charge_pli(machine, 45);
        if machine.mem.frame_is_zero(frame) {
            // Revert to the zero flag: free the record, re-arm the
            // quota-trap bit, drop the storage charge.
            if let Some(record) = drm.record_of(machine, binding.home, pageno)? {
                drm.set_record(machine, binding.home, pageno, None)?;
                drm.free(machine, binding.home.pack, record);
                if let Some(cell) = binding.cell {
                    qcm.uncharge(machine, cell, 1)?;
                }
            }
            self.set_ptw(
                machine,
                handle,
                pageno,
                Ptw {
                    quota_trap: true,
                    ..Ptw::default()
                },
            );
            self.stats.zero_reversions += 1;
        } else {
            if ptw.modified {
                let record = drm
                    .record_of(machine, binding.home, pageno)?
                    .expect("nonzero resident page has a record");
                machine
                    .disk_write_from_frame(binding.home.pack, record, frame)
                    .map_err(KernelError::Disk)?;
            }
            self.set_ptw(machine, handle, pageno, Ptw::default());
        }
        self.frames[frame.0 as usize] = FrameUse::Free;
        self.write_queue.retain(|f| *f != frame);
        Ok(())
    }

    /// One unit of purifier-daemon work: write back (or zero-revert) the
    /// oldest queued dirty page. Returns `true` if work was done.
    ///
    /// The daemon VP runs this when a processor would otherwise be idle,
    /// which is where the new memory manager wins back some of its
    /// PL/I-recoding cost.
    ///
    /// # Errors
    ///
    /// Propagates disk errors.
    pub fn purifier_step(
        &mut self,
        machine: &mut Machine,
        drm: &mut DiskRecordManager,
        qcm: &mut QuotaCellManager,
    ) -> Result<bool, KernelError> {
        let Some(frame) = self.write_queue.pop_front() else {
            return Ok(false);
        };
        crate::charge_pli(machine, 50);
        let FrameUse::Page { slot, pageno } = self.frames[frame.0 as usize] else {
            return Ok(true);
        };
        let handle = PtHandle(slot);
        let binding = self.slots[slot as usize].expect("bound slot");
        let mut ptw = self.ptw(machine, handle, pageno);
        if !ptw.modified {
            return Ok(true);
        }
        if machine.mem.frame_is_zero(frame) {
            // The page went back to zeros while dirty: revert in place.
            if let Some(record) = drm.record_of(machine, binding.home, pageno)? {
                drm.set_record(machine, binding.home, pageno, None)?;
                drm.free(machine, binding.home.pack, record);
                if let Some(cell) = binding.cell {
                    qcm.uncharge(machine, cell, 1)?;
                }
            }
            self.set_ptw(
                machine,
                handle,
                pageno,
                Ptw {
                    quota_trap: true,
                    ..Ptw::default()
                },
            );
            self.frames[frame.0 as usize] = FrameUse::Free;
            self.stats.zero_reversions += 1;
        } else {
            let record = drm
                .record_of(machine, binding.home, pageno)?
                .expect("dirty page has a record");
            machine
                .disk_write_from_frame(binding.home.pack, record, frame)
                .map_err(KernelError::Disk)?;
            ptw.modified = false;
            self.set_ptw(machine, handle, pageno, ptw);
            self.stats.purifier_writes += 1;
        }
        Ok(true)
    }

    /// Dirty pages queued for the purifier daemon.
    pub fn pending_purifier_work(&self) -> usize {
        self.write_queue.len()
    }

    /// Rebinds a flushed paged object to a new disk home (relocation),
    /// keeping the same handle — and therefore the same page-table
    /// address, so connected descriptor segments stay valid and no
    /// address space needs disconnecting.
    ///
    /// # Errors
    ///
    /// Propagates disk errors re-arming the descriptors.
    ///
    /// # Panics
    ///
    /// Panics if any page of the object is still resident.
    pub fn rebind_home(
        &mut self,
        machine: &mut Machine,
        drm: &DiskRecordManager,
        handle: PtHandle,
        new_home: DiskHome,
    ) -> Result<(), KernelError> {
        assert!(
            !self
                .frames
                .iter()
                .any(|f| matches!(f, FrameUse::Page { slot, .. } if *slot == handle.0)),
            "rebinding a paged object with resident pages"
        );
        let binding = self.slots[handle.0 as usize]
            .as_mut()
            .expect("bound handle");
        binding.home = new_home;
        for pageno in 0..PT_WORDS {
            let allocated = drm.record_of(machine, new_home, pageno)?.is_some();
            let ptw = Ptw {
                quota_trap: !allocated,
                ..Ptw::default()
            };
            machine
                .mem
                .write(self.ptw_addr(handle, pageno), ptw.encode());
        }
        // The whole table was re-armed: flush any translation cached
        // from it (full-pack relocation keeps the table address).
        machine.tlb_invalidate_ptw_range(self.ptw_addr(handle, 0), u64::from(PT_WORDS));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx_aim::{FlowTracker, Label};
    use mx_hw::{MachineConfig, PackId, Word};

    struct Rig {
        machine: Machine,
        drm: DiskRecordManager,
        qcm: QuotaCellManager,
        vpm: VirtualProcessorManager,
        pfm: PageFrameManager,
        home: DiskHome,
        handle: PtHandle,
    }

    fn rig(frames: usize, records: u32) -> Rig {
        let mut machine = Machine::new(MachineConfig {
            frames,
            packs: 2,
            records_per_pack: records,
            toc_slots_per_pack: 8,
            ..MachineConfig::kernel_proposed()
        });
        let mut csm = CoreSegmentManager::new(0, 8);
        let mut vpm = VirtualProcessorManager::new(&mut csm, 4).unwrap();
        let mut drm = DiskRecordManager::new();
        let mut qcm = QuotaCellManager::new(&mut csm).unwrap();
        qcm.bind_table_base(&csm);
        let mut pfm = PageFrameManager::new(&mut csm, &mut vpm, 8).unwrap();
        csm.seal();
        pfm.set_pageable_region(csm.end_frame(), frames as u32);
        // A segment plus a quota cell to bill.
        let cell_toc = drm.create_entry(&mut machine, PackId(0), 100).unwrap();
        let cell_home = DiskHome {
            pack: PackId(0),
            toc: cell_toc,
        };
        qcm.create_cell(
            &mut machine,
            &mut drm,
            SegUid(100),
            cell_home,
            50,
            Label::BOTTOM,
        )
        .unwrap();
        let toc = drm.create_entry(&mut machine, PackId(0), 1).unwrap();
        let home = DiskHome {
            pack: PackId(0),
            toc,
        };
        let handle = pfm
            .bind(&mut machine, &drm, home, Some(SegUid(100)))
            .unwrap();
        Rig {
            machine,
            drm,
            qcm,
            vpm,
            pfm,
            home,
            handle,
        }
    }

    #[test]
    fn bind_arms_quota_traps_on_unallocated_pages() {
        let mut r = rig(64, 64);
        let ptw = r.pfm.ptw(&r.machine, r.handle, 0);
        assert!(ptw.quota_trap && !ptw.present);
        // Allocate page 0, rebind another handle: trap only on holes.
        r.pfm
            .add_page(&mut r.machine, &mut r.drm, &mut r.qcm, r.handle, 0)
            .unwrap();
        let h2 = r
            .pfm
            .bind(&mut r.machine, &r.drm, r.home, Some(SegUid(100)))
            .unwrap();
        assert!(
            !r.pfm.ptw(&r.machine, h2, 0).quota_trap,
            "page 0 has a record now"
        );
        assert!(r.pfm.ptw(&r.machine, h2, 1).quota_trap);
    }

    #[test]
    fn add_page_then_flush_then_service_round_trip() {
        let mut r = rig(64, 64);
        r.pfm
            .add_page(&mut r.machine, &mut r.drm, &mut r.qcm, r.handle, 0)
            .unwrap();
        let ptw = r.pfm.ptw(&r.machine, r.handle, 0);
        assert!(ptw.present && ptw.modified);
        // Put a word in so it is not reverted to zeros.
        r.machine.mem.write(ptw.frame.base(), Word::new(0o777));
        r.pfm
            .flush(&mut r.machine, &mut r.drm, &mut r.qcm, r.handle)
            .unwrap();
        assert!(!r.pfm.ptw(&r.machine, r.handle, 0).present);
        // Service brings it back with the stored contents.
        let (h, p) = (r.handle, 0);
        r.pfm
            .service_missing(&mut r.machine, &mut r.drm, &mut r.qcm, &mut r.vpm, h, p)
            .unwrap();
        let ptw = r.pfm.ptw(&r.machine, r.handle, 0);
        assert!(ptw.present);
        assert_eq!(r.machine.mem.read(ptw.frame.base()), Word::new(0o777));
        assert_eq!(r.pfm.stats.services, 1);
        assert_eq!(r.pfm.stats.notifications, 1);
    }

    #[test]
    fn flush_of_zero_page_reverts_and_uncharges() {
        let mut r = rig(64, 64);
        let mut flows = FlowTracker::new();
        r.qcm
            .charge(&mut r.machine, SegUid(100), 1, Label::BOTTOM, &mut flows)
            .unwrap();
        r.pfm
            .add_page(&mut r.machine, &mut r.drm, &mut r.qcm, r.handle, 3)
            .unwrap();
        assert_eq!(r.qcm.cell_state(SegUid(100)), Some((50, 1)));
        // Never written: all zeros. Flush reverts and uncharges.
        r.pfm
            .flush(&mut r.machine, &mut r.drm, &mut r.qcm, r.handle)
            .unwrap();
        assert_eq!(r.qcm.cell_state(SegUid(100)), Some((50, 0)));
        assert!(
            r.pfm.ptw(&r.machine, r.handle, 3).quota_trap,
            "trap re-armed"
        );
        assert_eq!(r.drm.records_used(&r.machine, r.home).unwrap(), 0);
        assert_eq!(r.pfm.stats.zero_reversions, 1);
    }

    #[test]
    fn pressure_prefers_clean_victims_and_queues_dirty_for_purifier() {
        let mut r = rig(24, 128); // small pageable pool
        let pageable = r.pfm.pageable();
        assert!(
            pageable >= 4,
            "rig leaves a few pageable frames, got {pageable}"
        );
        // Fill all pageable frames with dirty pages, then write a marker
        // so they are nonzero.
        for pageno in 0..pageable + 4 {
            r.pfm
                .add_page(&mut r.machine, &mut r.drm, &mut r.qcm, r.handle, pageno)
                .unwrap();
            let ptw = r.pfm.ptw(&r.machine, r.handle, pageno);
            if ptw.present {
                r.machine
                    .mem
                    .write(ptw.frame.base(), Word::new(u64::from(pageno) + 1));
            }
        }
        assert!(r.pfm.stats.evictions > 0 || r.pfm.stats.purifier_writes > 0);
        // Drain the purifier queue like the daemon VP would.
        while r
            .pfm
            .purifier_step(&mut r.machine, &mut r.drm, &mut r.qcm)
            .unwrap()
        {}
        assert_eq!(r.pfm.pending_purifier_work(), 0);
    }

    #[test]
    fn transient_reads_are_absorbed_by_the_retry_budget() {
        use mx_hw::FaultPlan;
        let mut r = rig(64, 64);
        r.pfm
            .add_page(&mut r.machine, &mut r.drm, &mut r.qcm, r.handle, 0)
            .unwrap();
        let ptw = r.pfm.ptw(&r.machine, r.handle, 0);
        r.machine.mem.write(ptw.frame.base(), Word::new(0o55));
        r.pfm
            .flush(&mut r.machine, &mut r.drm, &mut r.qcm, r.handle)
            .unwrap();
        let rec = r.drm.record_of(&r.machine, r.home, 0).unwrap().unwrap();
        // The first two channel reads of the record fail; the third
        // succeeds within the budget.
        r.machine.install_fault_plan(
            FaultPlan::new()
                .transient_read(PackId(0), rec, 1)
                .transient_read(PackId(0), rec, 2),
        );
        let (h, p) = (r.handle, 0);
        r.pfm
            .service_missing(&mut r.machine, &mut r.drm, &mut r.qcm, &mut r.vpm, h, p)
            .unwrap();
        assert_eq!(r.pfm.stats.transient_retries, 2);
        let ptw = r.pfm.ptw(&r.machine, r.handle, 0);
        assert_eq!(r.machine.mem.read(ptw.frame.base()), Word::new(0o55));
    }

    #[test]
    fn retry_exhaustion_surfaces_typed_error_without_leaking_the_frame() {
        use mx_hw::{DiskError, FaultPlan};
        let mut r = rig(64, 64);
        r.pfm
            .add_page(&mut r.machine, &mut r.drm, &mut r.qcm, r.handle, 0)
            .unwrap();
        let ptw = r.pfm.ptw(&r.machine, r.handle, 0);
        r.machine.mem.write(ptw.frame.base(), Word::new(0o55));
        r.pfm
            .flush(&mut r.machine, &mut r.drm, &mut r.qcm, r.handle)
            .unwrap();
        let rec = r.drm.record_of(&r.machine, r.home, 0).unwrap().unwrap();
        let mut plan = FaultPlan::new();
        for k in 1..=u64::from(READ_RETRY_BUDGET) {
            plan = plan.transient_read(PackId(0), rec, k);
        }
        r.machine.install_fault_plan(plan);
        let free_before = r
            .pfm
            .frames
            .iter()
            .filter(|f| **f == FrameUse::Free)
            .count();
        let (h, p) = (r.handle, 0);
        let err = r
            .pfm
            .service_missing(&mut r.machine, &mut r.drm, &mut r.qcm, &mut r.vpm, h, p)
            .unwrap_err();
        assert!(matches!(
            err,
            KernelError::Disk(DiskError::TransientRead { .. })
        ));
        let free_after = r
            .pfm
            .frames
            .iter()
            .filter(|f| **f == FrameUse::Free)
            .count();
        assert_eq!(free_before, free_after, "claimed frame released");
        // The fault was transient: once the plan's ordinals pass, the
        // same reference succeeds.
        r.pfm
            .service_missing(&mut r.machine, &mut r.drm, &mut r.qcm, &mut r.vpm, h, p)
            .unwrap();
    }

    #[test]
    fn offline_pack_surfaces_typed_error() {
        use mx_hw::DiskError;
        let mut r = rig(64, 64);
        r.pfm
            .add_page(&mut r.machine, &mut r.drm, &mut r.qcm, r.handle, 0)
            .unwrap();
        let ptw = r.pfm.ptw(&r.machine, r.handle, 0);
        r.machine.mem.write(ptw.frame.base(), Word::new(0o55));
        r.pfm
            .flush(&mut r.machine, &mut r.drm, &mut r.qcm, r.handle)
            .unwrap();
        r.machine.faults.set_offline(PackId(0), true);
        let (h, p) = (r.handle, 0);
        let err = r
            .pfm
            .service_missing(&mut r.machine, &mut r.drm, &mut r.qcm, &mut r.vpm, h, p)
            .unwrap_err();
        assert!(matches!(
            err,
            KernelError::Disk(DiskError::PackOffline { .. })
        ));
    }

    #[test]
    fn identify_maps_descriptor_addresses_home() {
        let r = rig(64, 64);
        let addr = r.pfm.pt_addr(r.handle).add(5);
        assert_eq!(r.pfm.identify(addr), Some((r.handle, 5)));
        assert_eq!(r.pfm.identify(AbsAddr(0)), None);
    }

    #[test]
    fn unbind_releases_the_slot() {
        let mut r = rig(64, 64);
        r.pfm
            .unbind(&mut r.machine, &mut r.drm, &mut r.qcm, r.handle)
            .unwrap();
        // The slot is reusable.
        let h2 = r.pfm.bind(&mut r.machine, &r.drm, r.home, None).unwrap();
        assert_eq!(h2, r.handle);
    }
}
