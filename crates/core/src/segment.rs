//! The Segment (active segment) Manager.
//!
//! Activates segments, grows them under their **statically bound** quota
//! cells, and relocates them when their pack fills. Two of the paper's
//! headline simplifications are visible directly in the signatures:
//!
//! * `activate` takes the disk home and the quota cell name — supplied
//!   from above by the known-segment manager — and never consults any
//!   directory. "As a result, the deactivation of segments by the active
//!   segment manager no longer is constrained by the shape of the
//!   directory hierarchy."
//!
//! * `grow` checks the quota with one call to the quota-cell manager
//!   (no upward search), calls the page-frame manager to add the page,
//!   and on a full pack relocates the segment itself and then raises the
//!   [`Signal::SegmentMoved`] **upward signal** — the quota and
//!   full-pack work is complete by the time the directory manager hears
//!   about it, and no activation record below awaits a return.

use crate::disk_record::DiskRecordManager;
use crate::error::{KernelError, Signal};
use crate::page_frame::{PageFrameManager, PtHandle};
use crate::quota_cell::QuotaCellManager;
use crate::types::{DiskHome, SegUid};
use mx_aim::{FlowTracker, Label};
use mx_hw::cpu::Sdw;
use mx_hw::{AbsAddr, Machine, Subsystem};
use std::collections::HashMap;

/// One active segment.
#[derive(Debug, Clone)]
pub struct ActiveSeg {
    /// Paged-object handle in the page-frame manager.
    pub handle: PtHandle,
    /// Current disk home.
    pub home: DiskHome,
    /// The statically bound quota cell (the uid of the controlling quota
    /// directory).
    pub cell: SegUid,
    /// True for directory segments.
    pub is_dir: bool,
    /// AIM label of the contents.
    pub label: Label,
    /// Absolute addresses of connected SDWs, registered from above, so
    /// deactivation can cut every address space loose.
    pub connected_sdws: Vec<AbsAddr>,
}

/// Experiment counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct SegStats {
    /// Activations performed.
    pub activations: u64,
    /// Deactivations performed.
    pub deactivations: u64,
    /// Whole-segment relocations (full packs).
    pub relocations: u64,
    /// Upward signals raised.
    pub upward_signals: u64,
}

/// The active-segment object manager.
#[derive(Debug, Default)]
pub struct SegmentManager {
    active: HashMap<SegUid, ActiveSeg>,
    /// Counters.
    pub stats: SegStats,
}

impl SegmentManager {
    /// A fresh manager with nothing active.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of active segments.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// The active entry for `uid`, if any.
    pub fn get(&self, uid: SegUid) -> Option<&ActiveSeg> {
        self.active.get(&uid)
    }

    /// Finds the uid bound to a page-table handle (fault routing).
    pub fn uid_of_handle(&self, handle: PtHandle) -> Option<SegUid> {
        self.active
            .iter()
            .find(|(_, s)| s.handle == handle)
            .map(|(u, _)| *u)
    }

    /// Activates a segment: loads its quota cell and binds a paged
    /// object. Requires nothing about the directory hierarchy.
    ///
    /// # Errors
    ///
    /// Table exhaustion or unknown-cell errors from below.
    #[allow(clippy::too_many_arguments)]
    pub fn activate(
        &mut self,
        machine: &mut Machine,
        drm: &mut DiskRecordManager,
        qcm: &mut QuotaCellManager,
        pfm: &mut PageFrameManager,
        uid: SegUid,
        home: DiskHome,
        cell: SegUid,
        is_dir: bool,
        label: Label,
    ) -> Result<PtHandle, KernelError> {
        if let Some(seg) = self.active.get(&uid) {
            return Ok(seg.handle);
        }
        crate::charge_pli(machine, 110);
        qcm.load(machine, drm, cell, label)?;
        let handle = match pfm.bind(machine, drm, home, Some(cell)) {
            Ok(h) => h,
            Err(e) => {
                qcm.unload(machine, drm, cell)?;
                return Err(e);
            }
        };
        self.active.insert(
            uid,
            ActiveSeg {
                handle,
                home,
                cell,
                is_dir,
                label,
                connected_sdws: Vec::new(),
            },
        );
        self.stats.activations += 1;
        Ok(handle)
    }

    /// Deactivates a segment — any segment, directory or not, regardless
    /// of what else is active: flushes and unbinds its pages, cuts every
    /// registered SDW, releases the quota cell reference.
    ///
    /// # Errors
    ///
    /// [`KernelError::NotActive`] if the segment is not active.
    pub fn deactivate(
        &mut self,
        machine: &mut Machine,
        drm: &mut DiskRecordManager,
        qcm: &mut QuotaCellManager,
        pfm: &mut PageFrameManager,
        uid: SegUid,
    ) -> Result<(), KernelError> {
        let seg = self.active.remove(&uid).ok_or(KernelError::NotActive)?;
        crate::charge_pli(machine, 85);
        pfm.unbind(machine, drm, qcm, seg.handle)?;
        for sdw_addr in &seg.connected_sdws {
            // Witness: descriptor words are segment control's data base.
            machine.clock.note_shared_data(Subsystem::SegmentControl);
            machine.mem.write(*sdw_addr, Sdw::default().encode());
            machine.tlb_invalidate_sdw(*sdw_addr);
        }
        qcm.unload(machine, drm, seg.cell)?;
        self.stats.deactivations += 1;
        Ok(())
    }

    /// The uids of every active segment, sorted (so shutdown sweeps are
    /// deterministic).
    pub fn active_uids(&self) -> Vec<SegUid> {
        let mut uids: Vec<SegUid> = self.active.keys().copied().collect();
        uids.sort();
        uids
    }

    /// Registers a connected SDW's core address so deactivation can cut
    /// it (called from the gatekeeper when it connects an address
    /// space).
    ///
    /// # Errors
    ///
    /// [`KernelError::NotActive`] if the segment is not active.
    pub fn register_connection(
        &mut self,
        uid: SegUid,
        sdw_addr: AbsAddr,
    ) -> Result<(), KernelError> {
        let seg = self.active.get_mut(&uid).ok_or(KernelError::NotActive)?;
        if !seg.connected_sdws.contains(&sdw_addr) {
            seg.connected_sdws.push(sdw_addr);
        }
        Ok(())
    }

    /// Grows a segment by one page (the quota-exception service): one
    /// direct quota charge, then page creation; a full pack triggers
    /// relocation and the upward signal.
    ///
    /// # Errors
    ///
    /// [`KernelError::QuotaExceeded`] (charge refused),
    /// [`KernelError::AllPacksFull`] (no pack can take the segment), or
    /// [`KernelError::Upward`] carrying [`Signal::SegmentMoved`] — the
    /// page **was** created; only the directory entry update remains.
    #[allow(clippy::too_many_arguments)]
    pub fn grow(
        &mut self,
        machine: &mut Machine,
        drm: &mut DiskRecordManager,
        qcm: &mut QuotaCellManager,
        pfm: &mut PageFrameManager,
        flows: &mut FlowTracker,
        uid: SegUid,
        pageno: u32,
        subject: Label,
    ) -> Result<(), KernelError> {
        let (handle, cell) = {
            let seg = self.active.get(&uid).ok_or(KernelError::NotActive)?;
            (seg.handle, seg.cell)
        };
        crate::charge_pli(machine, 35);
        qcm.charge(machine, cell, 1, subject, flows)?;
        match pfm.add_page(machine, drm, qcm, handle, pageno) {
            Ok(()) => Ok(()),
            Err(KernelError::AllPacksFull) => {
                // Full pack: relocate, retry the creation on the new
                // home, then signal upward for the directory update.
                let new_home = self.relocate(machine, drm, qcm, pfm, uid)?;
                match pfm.add_page(machine, drm, qcm, handle, pageno) {
                    Ok(()) => {
                        self.stats.upward_signals += 1;
                        Err(KernelError::Upward(Signal::SegmentMoved { uid, new_home }))
                    }
                    Err(e) => {
                        qcm.uncharge(machine, cell, 1)?;
                        Err(e)
                    }
                }
            }
            Err(e) => {
                qcm.uncharge(machine, cell, 1)?;
                Err(e)
            }
        }
    }

    /// Moves a segment, records and all, to the emptiest other pack.
    /// The paged object keeps its handle (and page-table address), so
    /// connected address spaces remain valid.
    ///
    /// # Errors
    ///
    /// [`KernelError::AllPacksFull`] if no other pack has room.
    pub fn relocate(
        &mut self,
        machine: &mut Machine,
        drm: &mut DiskRecordManager,
        qcm: &mut QuotaCellManager,
        pfm: &mut PageFrameManager,
        uid: SegUid,
    ) -> Result<DiskHome, KernelError> {
        let (handle, old) = {
            let seg = self.active.get(&uid).ok_or(KernelError::NotActive)?;
            (seg.handle, seg.home)
        };
        crate::charge_pli(machine, 380);
        pfm.flush(machine, drm, qcm, handle)?;
        let target = drm
            .emptiest_other(machine, old.pack)
            .ok_or(KernelError::AllPacksFull)?;
        let new_toc = drm.create_entry(machine, target, uid.0)?;
        let new_home = DiskHome {
            pack: target,
            toc: new_toc,
        };

        // Copy the file map record by record.
        let len = drm.len_pages(machine, old)?;
        for pageno in 0..len {
            let Some(old_rec) = drm.record_of(machine, old, pageno)? else {
                drm.set_record(machine, new_home, pageno, None)?;
                continue;
            };
            // The copy goes through the fault-checked channel: transient
            // read errors are retried within the budget, hard faults
            // surface as typed errors.
            let buf = {
                let mut retries = 0;
                loop {
                    match machine.disk_read_record(old.pack, old_rec) {
                        Ok(b) => break b,
                        Err(e @ mx_hw::DiskError::TransientRead { .. }) => {
                            retries += 1;
                            if retries >= crate::page_frame::READ_RETRY_BUDGET {
                                return Err(KernelError::Disk(e));
                            }
                        }
                        Err(e) => return Err(KernelError::Disk(e)),
                    }
                }
            };
            let new_rec = drm.allocate(machine, target)?;
            machine
                .disk_write_record(target, new_rec, &buf)
                .map_err(KernelError::Disk)?;
            drm.set_record(machine, new_home, pageno, Some(new_rec))?;
        }
        // Move the on-disk quota cell, if this segment is a quota
        // directory, and repoint the cell manager at the new home.
        let cell_rec = drm.read_quota_cell(machine, old)?;
        if cell_rec.is_some() {
            drm.write_quota_cell(machine, new_home, cell_rec)?;
        }
        qcm.update_home(uid, new_home);
        drm.delete_entry(machine, old)?;
        pfm.rebind_home(machine, drm, handle, new_home)?;
        self.active
            .get_mut(&uid)
            .ok_or(KernelError::NotActive)?
            .home = new_home;
        self.stats.relocations += 1;
        Ok(new_home)
    }

    /// Reads one word of an active segment from kernel state, servicing
    /// missing pages and creating never-used pages (a read of a hole
    /// materializes a zero page — and charges quota, the confinement
    /// side effect the paper analyses).
    ///
    /// # Errors
    ///
    /// Paging, quota, and upward-signal errors from below.
    #[allow(clippy::too_many_arguments)]
    pub fn read_word(
        &mut self,
        machine: &mut Machine,
        drm: &mut DiskRecordManager,
        qcm: &mut QuotaCellManager,
        pfm: &mut PageFrameManager,
        vpm: &mut crate::vproc::VirtualProcessorManager,
        flows: &mut FlowTracker,
        uid: SegUid,
        wordno: u32,
        subject: Label,
    ) -> Result<mx_hw::Word, KernelError> {
        let abs = self.touch_word(
            machine, drm, qcm, pfm, vpm, flows, uid, wordno, subject, false,
        )?;
        let cost = machine.cost;
        machine.clock.charge_core_access(&cost);
        Ok(machine.mem.read(abs))
    }

    /// Writes one word of an active segment from kernel state.
    ///
    /// # Errors
    ///
    /// Paging, quota, and upward-signal errors from below.
    #[allow(clippy::too_many_arguments)]
    pub fn write_word(
        &mut self,
        machine: &mut Machine,
        drm: &mut DiskRecordManager,
        qcm: &mut QuotaCellManager,
        pfm: &mut PageFrameManager,
        vpm: &mut crate::vproc::VirtualProcessorManager,
        flows: &mut FlowTracker,
        uid: SegUid,
        wordno: u32,
        value: mx_hw::Word,
        subject: Label,
    ) -> Result<(), KernelError> {
        let abs = self.touch_word(
            machine, drm, qcm, pfm, vpm, flows, uid, wordno, subject, true,
        )?;
        let cost = machine.cost;
        machine.clock.charge_core_access(&cost);
        machine.mem.write(abs, value);
        Ok(())
    }

    /// Brings the page under `wordno` resident and returns the word's
    /// absolute address, updating the descriptor's used/modified bits.
    #[allow(clippy::too_many_arguments)]
    fn touch_word(
        &mut self,
        machine: &mut Machine,
        drm: &mut DiskRecordManager,
        qcm: &mut QuotaCellManager,
        pfm: &mut PageFrameManager,
        vpm: &mut crate::vproc::VirtualProcessorManager,
        flows: &mut FlowTracker,
        uid: SegUid,
        wordno: u32,
        subject: Label,
        dirty: bool,
    ) -> Result<AbsAddr, KernelError> {
        let handle = self.active.get(&uid).ok_or(KernelError::NotActive)?.handle;
        let pageno = wordno / mx_hw::PAGE_WORDS as u32;
        if pageno >= crate::page_frame::PT_WORDS {
            return Err(KernelError::SegmentTooBig);
        }
        for _ in 0..4 {
            let ptw = pfm.ptw(machine, handle, pageno);
            if ptw.present {
                let mut p = ptw;
                p.used = true;
                p.modified |= dirty;
                machine
                    .mem
                    .write(pfm.pt_addr(handle).add(u64::from(pageno)), p.encode());
                return Ok(p
                    .frame
                    .base()
                    .add(u64::from(wordno % mx_hw::PAGE_WORDS as u32)));
            }
            if ptw.quota_trap {
                self.grow(machine, drm, qcm, pfm, flows, uid, pageno, subject)?;
            } else {
                pfm.service_missing(machine, drm, qcm, vpm, handle, pageno)?;
            }
        }
        Err(KernelError::NotActive)
    }

    /// Truncates an active segment to zero pages, uncharging its cell.
    ///
    /// # Errors
    ///
    /// [`KernelError::NotActive`] if the segment is not active.
    pub fn truncate(
        &mut self,
        machine: &mut Machine,
        drm: &mut DiskRecordManager,
        qcm: &mut QuotaCellManager,
        pfm: &mut PageFrameManager,
        uid: SegUid,
    ) -> Result<(), KernelError> {
        let (handle, home, cell) = {
            let seg = self.active.get(&uid).ok_or(KernelError::NotActive)?;
            (seg.handle, seg.home, seg.cell)
        };
        // Flush drops zero pages (uncharging them); then free whatever
        // records remain.
        pfm.flush(machine, drm, qcm, handle)?;
        let len = drm.len_pages(machine, home)?;
        let mut freed = 0;
        for pageno in 0..len {
            if let Some(rec) = drm.record_of(machine, home, pageno)? {
                drm.set_record(machine, home, pageno, None)?;
                drm.free(machine, home.pack, rec);
                freed += 1;
            }
        }
        if freed > 0 {
            qcm.uncharge(machine, cell, freed)?;
        }
        // Reset the file map length and re-arm every descriptor.
        machine
            .disks
            .pack_mut(home.pack)
            .map_err(|_| KernelError::NotActive)?
            .entry_mut(home.toc)
            .map_err(|_| KernelError::NotActive)?
            .file_map
            .clear();
        pfm.rebind_home(machine, drm, handle, home)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core_segment::CoreSegmentManager;
    use crate::vproc::VirtualProcessorManager;
    use mx_hw::{MachineConfig, PackId, Word};

    struct Rig {
        machine: Machine,
        drm: DiskRecordManager,
        qcm: QuotaCellManager,
        pfm: PageFrameManager,
        vpm: VirtualProcessorManager,
        segm: SegmentManager,
        flows: FlowTracker,
        cell: SegUid,
        uid: SegUid,
        home: DiskHome,
    }

    fn rig(records: u32, quota: u32) -> Rig {
        let mut machine = Machine::new(MachineConfig {
            frames: 64,
            packs: 2,
            records_per_pack: records,
            toc_slots_per_pack: 16,
            ..MachineConfig::kernel_proposed()
        });
        let mut csm = CoreSegmentManager::new(0, 10);
        let mut vpm = VirtualProcessorManager::new(&mut csm, 4).unwrap();
        let mut drm = DiskRecordManager::new();
        let mut qcm = QuotaCellManager::new(&mut csm).unwrap();
        qcm.bind_table_base(&csm);
        let mut pfm = PageFrameManager::new(&mut csm, &mut vpm, 8).unwrap();
        csm.seal();
        pfm.set_pageable_region(csm.end_frame(), 64);

        let cell = SegUid(1);
        let cell_toc = drm.create_entry(&mut machine, PackId(0), cell.0).unwrap();
        qcm.create_cell(
            &mut machine,
            &mut drm,
            cell,
            DiskHome {
                pack: PackId(0),
                toc: cell_toc,
            },
            quota,
            Label::BOTTOM,
        )
        .unwrap();
        let uid = SegUid(2);
        let toc = drm.create_entry(&mut machine, PackId(0), uid.0).unwrap();
        let home = DiskHome {
            pack: PackId(0),
            toc,
        };
        Rig {
            machine,
            drm,
            qcm,
            pfm,
            vpm,
            segm: SegmentManager::new(),
            flows: FlowTracker::new(),
            cell,
            uid,
            home,
        }
    }

    fn activate(r: &mut Rig) -> PtHandle {
        r.segm
            .activate(
                &mut r.machine,
                &mut r.drm,
                &mut r.qcm,
                &mut r.pfm,
                r.uid,
                r.home,
                r.cell,
                false,
                Label::BOTTOM,
            )
            .unwrap()
    }

    fn grow(r: &mut Rig, pageno: u32) -> Result<(), KernelError> {
        r.segm.grow(
            &mut r.machine,
            &mut r.drm,
            &mut r.qcm,
            &mut r.pfm,
            &mut r.flows,
            r.uid,
            pageno,
            Label::BOTTOM,
        )
    }

    #[test]
    fn activate_needs_no_hierarchy_and_is_idempotent() {
        let mut r = rig(32, 20);
        let h1 = activate(&mut r);
        let h2 = activate(&mut r);
        assert_eq!(h1, h2);
        assert_eq!(r.segm.stats.activations, 1);
        assert_eq!(r.segm.uid_of_handle(h1), Some(r.uid));
    }

    #[test]
    fn grow_charges_the_static_cell_directly() {
        let mut r = rig(32, 3);
        activate(&mut r);
        grow(&mut r, 0).unwrap();
        grow(&mut r, 1).unwrap();
        grow(&mut r, 2).unwrap();
        assert_eq!(r.qcm.cell_state(r.cell), Some((3, 3)));
        let err = grow(&mut r, 3).unwrap_err();
        assert_eq!(err, KernelError::QuotaExceeded { limit: 3, used: 3 });
        assert_eq!(r.qcm.charges, 4, "one direct hit per growth — no walking");
    }

    #[test]
    fn full_pack_relocates_and_raises_the_upward_signal() {
        let mut r = rig(6, 40);
        // A roomier third pack to take the relocated segment (pack 1 is
        // as small as pack 0 and could not absorb it).
        let big = r.machine.disks.attach(64, 16);
        activate(&mut r);
        // Pack 0 has 6 records; growth fills it and forces the move.
        let mut moved = None;
        for pageno in 0..8 {
            match grow(&mut r, pageno) {
                Ok(()) => {
                    // Make the page nonzero so flushes keep the records.
                    let ptw = r
                        .pfm
                        .ptw(&r.machine, r.segm.get(r.uid).unwrap().handle, pageno);
                    r.machine
                        .mem
                        .write(ptw.frame.base(), Word::new(u64::from(pageno) + 1));
                }
                Err(KernelError::Upward(Signal::SegmentMoved { uid, new_home })) => {
                    moved = Some((uid, new_home, pageno));
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        let (uid, new_home, at_page) = moved.expect("a full pack must occur");
        assert_eq!(uid, r.uid);
        assert_eq!(new_home.pack, big);
        assert_eq!(r.segm.stats.relocations, 1);
        assert_eq!(r.segm.stats.upward_signals, 1);
        // The page creation completed before the signal.
        let seg = r.segm.get(r.uid).unwrap();
        assert_eq!(seg.home, new_home);
        assert!(r.pfm.ptw(&r.machine, seg.handle, at_page).present);
        // Earlier data survived the move.
        let h = seg.handle;
        r.pfm
            .service_missing(&mut r.machine, &mut r.drm, &mut r.qcm, &mut r.vpm, h, 0)
            .unwrap();
        let ptw = r.pfm.ptw(&r.machine, h, 0);
        assert_eq!(r.machine.mem.read(ptw.frame.base()), Word::new(1));
    }

    #[test]
    fn deactivate_cuts_registered_sdws_and_releases_cell() {
        let mut r = rig(32, 20);
        let handle = activate(&mut r);
        grow(&mut r, 0).unwrap();
        // Fake a connected SDW in frame 0.
        let sdw_addr = AbsAddr(10);
        let sdw = Sdw {
            page_table: r.pfm.pt_addr(handle),
            bound_pages: 256,
            read: true,
            write: true,
            execute: false,
            present: true,
            software: false,
        };
        r.machine.mem.write(sdw_addr, sdw.encode());
        r.segm.register_connection(r.uid, sdw_addr).unwrap();
        r.segm
            .deactivate(&mut r.machine, &mut r.drm, &mut r.qcm, &mut r.pfm, r.uid)
            .unwrap();
        assert!(
            !Sdw::decode(r.machine.mem.read(sdw_addr)).present,
            "SDW cut"
        );
        assert_eq!(r.qcm.cell_state(r.cell), None, "cell reference released");
        assert_eq!(r.segm.active_count(), 0);
    }

    #[test]
    fn truncate_frees_records_and_charges() {
        let mut r = rig(32, 20);
        let handle = activate(&mut r);
        for p in 0..3 {
            grow(&mut r, p).unwrap();
            let ptw = r.pfm.ptw(&r.machine, handle, p);
            r.machine.mem.write(ptw.frame.base(), Word::new(9));
        }
        assert_eq!(r.qcm.cell_state(r.cell), Some((20, 3)));
        r.segm
            .truncate(&mut r.machine, &mut r.drm, &mut r.qcm, &mut r.pfm, r.uid)
            .unwrap();
        assert_eq!(r.qcm.cell_state(r.cell), Some((20, 0)));
        assert_eq!(
            r.drm
                .len_pages(&r.machine, r.segm.get(r.uid).unwrap().home)
                .unwrap(),
            0
        );
    }
}
