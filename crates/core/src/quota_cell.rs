//! The Quota Cell Manager.
//!
//! "The new design makes quota cells be explicit objects with their own
//! manager. A quota cell is stored in the disk pack table of contents
//! entry for the associated directory and is cached in primary memory in
//! a table managed by the quota cell manager. The segment manager
//! presents the quota cell information to the quota cell manager whenever
//! a directory is activated and calls upon the quota cell manager to
//! perform all operations on quota cells."
//!
//! Cells are named by the uid of their quota directory. Because
//! designation is restricted to childless directories, the binding
//! between a segment and its controlling cell is **static**: no dynamic
//! upward search ever happens — `charge` is a direct table hit.
//!
//! The in-core cache lives in a core segment (a map dependency on the
//! core-segment manager only), and cells persist in TOC entries (a
//! component dependency on the disk-record manager only): the manager
//! sits low in the lattice, below the segment manager that calls it.

use crate::core_segment::{CoreSegId, CoreSegmentManager};
use crate::disk_record::DiskRecordManager;
use crate::error::KernelError;
use crate::types::{DiskHome, SegUid};
use mx_aim::{FlowTracker, Label};
use mx_hw::disk::QuotaCellRecord;
use mx_hw::{Machine, Subsystem, Word};
use std::collections::HashMap;

/// Words of core-segment table per cell (uid, limit, used, flags).
const CELL_WORDS: u64 = 4;

#[derive(Debug, Clone, Copy)]
struct CellDirEntry {
    home: DiskHome,
    slot: u32,
}

#[derive(Debug, Clone, Copy)]
struct LoadedCell {
    limit: u32,
    used: u32,
    refs: u32,
    label: Label,
}

/// The quota-cell object manager.
#[derive(Debug)]
pub struct QuotaCellManager {
    /// Registry of every cell in existence: uid → (persistent home, core
    /// table slot). Conceptually part of the core table itself.
    cell_dir: HashMap<SegUid, CellDirEntry>,
    loaded: HashMap<SegUid, LoadedCell>,
    table_seg: CoreSegId,
    /// Absolute base of the core-table segment, bound once after
    /// construction via [`QuotaCellManager::bind_table_base`].
    table_base: mx_hw::AbsAddr,
    max_cells: u32,
    next_slot: u32,
    /// Direct-hit charges performed (experiment counter — compare the
    /// legacy quota-walk level counts).
    pub charges: u64,
}

impl QuotaCellManager {
    /// Builds the manager with a one-frame core-segment cell table.
    ///
    /// # Errors
    ///
    /// [`KernelError::TableFull`] if no core segment can be allocated.
    pub fn new(csm: &mut CoreSegmentManager) -> Result<Self, KernelError> {
        let table_seg = csm.allocate(1)?;
        let max_cells = (mx_hw::PAGE_WORDS as u64 / CELL_WORDS) as u32;
        Ok(Self {
            cell_dir: HashMap::new(),
            loaded: HashMap::new(),
            table_seg,
            table_base: mx_hw::AbsAddr(0),
            max_cells,
            next_slot: 0,
            charges: 0,
        })
    }

    /// Creates a new quota cell for quota directory `uid`, persisted in
    /// the TOC entry at `home`, and loads it.
    ///
    /// # Errors
    ///
    /// [`KernelError::TableFull`] when the cell table is exhausted;
    /// [`KernelError::QuotaDesignation`] if the cell already exists.
    pub fn create_cell(
        &mut self,
        machine: &mut Machine,
        drm: &mut DiskRecordManager,
        uid: SegUid,
        home: DiskHome,
        limit: u32,
        label: Label,
    ) -> Result<(), KernelError> {
        if self.cell_dir.contains_key(&uid) {
            return Err(KernelError::QuotaDesignation("cell already exists"));
        }
        if self.next_slot >= self.max_cells {
            return Err(KernelError::TableFull("quota cell"));
        }
        let slot = self.next_slot;
        self.next_slot += 1;
        self.cell_dir.insert(uid, CellDirEntry { home, slot });
        drm.write_quota_cell(
            machine,
            home,
            Some(QuotaCellRecord {
                limit_pages: limit,
                used_pages: 0,
            }),
        )?;
        self.loaded.insert(
            uid,
            LoadedCell {
                limit,
                used: 0,
                refs: 0,
                label,
            },
        );
        self.sync_core_table(machine, uid);
        Ok(())
    }

    /// Registers an existing on-disk cell without touching its persisted
    /// counts — the recovery bootload path: after a crash the cell
    /// directory is rebuilt by walking the surviving disk image, and the
    /// used count found on disk must be preserved for the salvager to
    /// audit. Idempotent for an already-registered uid.
    ///
    /// # Errors
    ///
    /// [`KernelError::TableFull`] when the cell table is exhausted;
    /// [`KernelError::QuotaDesignation`] if the TOC entry at `home`
    /// carries no cell record.
    pub fn adopt_cell(
        &mut self,
        machine: &Machine,
        drm: &DiskRecordManager,
        uid: SegUid,
        home: DiskHome,
    ) -> Result<(), KernelError> {
        if self.cell_dir.contains_key(&uid) {
            return Ok(());
        }
        if self.next_slot >= self.max_cells {
            return Err(KernelError::TableFull("quota cell"));
        }
        drm.read_quota_cell(machine, home)?
            .ok_or(KernelError::QuotaDesignation("cell missing from TOC"))?;
        let slot = self.next_slot;
        self.next_slot += 1;
        self.cell_dir.insert(uid, CellDirEntry { home, slot });
        Ok(())
    }

    /// Destroys a cell that is no longer referenced and carries no
    /// charge.
    ///
    /// # Errors
    ///
    /// [`KernelError::QuotaDesignation`] if the cell is still charged or
    /// referenced.
    pub fn destroy_cell(
        &mut self,
        machine: &mut Machine,
        drm: &mut DiskRecordManager,
        uid: SegUid,
    ) -> Result<(), KernelError> {
        let entry = *self
            .cell_dir
            .get(&uid)
            .ok_or(KernelError::QuotaDesignation("no such cell"))?;
        if let Some(cell) = self.loaded.get(&uid) {
            if cell.refs > 0 {
                return Err(KernelError::QuotaDesignation("cell still referenced"));
            }
            if cell.used > 0 {
                return Err(KernelError::QuotaDesignation("cell still charged"));
            }
        }
        self.loaded.remove(&uid);
        self.cell_dir.remove(&uid);
        drm.write_quota_cell(machine, entry.home, None)?;
        Ok(())
    }

    /// Loads (or re-references) a cell into the core table. The segment
    /// manager calls this when it activates a segment bound to the cell.
    ///
    /// # Errors
    ///
    /// [`KernelError::QuotaDesignation`] for an unknown cell.
    pub fn load(
        &mut self,
        machine: &mut Machine,
        drm: &DiskRecordManager,
        uid: SegUid,
        label: Label,
    ) -> Result<(), KernelError> {
        let entry = *self
            .cell_dir
            .get(&uid)
            .ok_or(KernelError::QuotaDesignation("no such cell"))?;
        if let Some(cell) = self.loaded.get_mut(&uid) {
            cell.refs += 1;
            return Ok(());
        }
        let rec = drm
            .read_quota_cell(machine, entry.home)?
            .ok_or(KernelError::QuotaDesignation("cell missing from TOC"))?;
        self.loaded.insert(
            uid,
            LoadedCell {
                limit: rec.limit_pages,
                used: rec.used_pages,
                refs: 1,
                label,
            },
        );
        self.sync_core_table(machine, uid);
        Ok(())
    }

    /// Drops a reference; when the last reference goes, persists the cell
    /// back to its TOC entry and evicts it from the core table.
    ///
    /// # Errors
    ///
    /// [`KernelError::QuotaDesignation`] for an unknown or unloaded cell.
    pub fn unload(
        &mut self,
        machine: &mut Machine,
        drm: &mut DiskRecordManager,
        uid: SegUid,
    ) -> Result<(), KernelError> {
        let entry = *self
            .cell_dir
            .get(&uid)
            .ok_or(KernelError::QuotaDesignation("no such cell"))?;
        let cell = self
            .loaded
            .get_mut(&uid)
            .ok_or(KernelError::QuotaDesignation("cell not loaded"))?;
        cell.refs = cell.refs.saturating_sub(1);
        if cell.refs == 0 {
            let rec = QuotaCellRecord {
                limit_pages: cell.limit,
                used_pages: cell.used,
            };
            self.loaded.remove(&uid);
            drm.write_quota_cell(machine, entry.home, Some(rec))?;
        }
        Ok(())
    }

    /// Charges `pages` against the cell — a direct hit, no hierarchy
    /// walk. Records the accounting information flow for the confinement
    /// experiments.
    ///
    /// # Errors
    ///
    /// [`KernelError::QuotaExceeded`] when the limit would be passed;
    /// [`KernelError::QuotaDesignation`] for an unloaded cell.
    pub fn charge(
        &mut self,
        machine: &mut Machine,
        uid: SegUid,
        pages: u32,
        subject: Label,
        flows: &mut FlowTracker,
    ) -> Result<(), KernelError> {
        self.charges += 1;
        crate::charge_pli(machine, 18);
        // Witness: quota cells are page control's data base in the new
        // design (moved down out of the directories); any scope mutating
        // one shows up in the edge ledger as a writer->owner edge.
        machine.clock.note_shared_data(Subsystem::PageControl);
        let cell = self
            .loaded
            .get_mut(&uid)
            .ok_or(KernelError::QuotaDesignation("cell not loaded"))?;
        if cell.used + pages > cell.limit {
            return Err(KernelError::QuotaExceeded {
                limit: cell.limit,
                used: cell.used,
            });
        }
        cell.used += pages;
        let cell_label = cell.label;
        flows.observe(
            subject,
            cell_label,
            "quota cell used-count update on page creation",
        );
        self.sync_core_table(machine, uid);
        Ok(())
    }

    /// Reverses a charge (zero reversion, truncation, deletion).
    ///
    /// Deletion paths may uncharge a cell no active segment references;
    /// in that case the persistent copy in the TOC entry is updated
    /// directly.
    ///
    /// # Errors
    ///
    /// [`KernelError::QuotaDesignation`] for a cell that does not exist
    /// at all.
    pub fn uncharge(
        &mut self,
        machine: &mut Machine,
        uid: SegUid,
        pages: u32,
    ) -> Result<(), KernelError> {
        crate::charge_pli(machine, 12);
        machine.clock.note_shared_data(Subsystem::PageControl);
        if let Some(cell) = self.loaded.get_mut(&uid) {
            cell.used = cell.used.saturating_sub(pages);
            self.sync_core_table(machine, uid);
            return Ok(());
        }
        // Not resident: update the on-disk cell in place.
        let entry = *self
            .cell_dir
            .get(&uid)
            .ok_or(KernelError::QuotaDesignation("no such cell"))?;
        let mut drm = DiskRecordManager::new();
        let mut rec = drm
            .read_quota_cell(machine, entry.home)?
            .ok_or(KernelError::QuotaDesignation("cell missing from TOC"))?;
        rec.used_pages = rec.used_pages.saturating_sub(pages);
        drm.write_quota_cell(machine, entry.home, Some(rec))?;
        Ok(())
    }

    /// Forces a cell's used count to `used`, in core (when resident) and
    /// in the persistent TOC copy — the salvager's drift repair, which
    /// must work whether or not any segment bound to the cell is active.
    ///
    /// # Errors
    ///
    /// [`KernelError::QuotaDesignation`] if the cell does not exist.
    pub fn salvage_set_used(
        &mut self,
        machine: &mut Machine,
        drm: &mut DiskRecordManager,
        uid: SegUid,
        used: u32,
    ) -> Result<(), KernelError> {
        let entry = *self
            .cell_dir
            .get(&uid)
            .ok_or(KernelError::QuotaDesignation("no such cell"))?;
        // Cross-subsystem mutation witness: drift repair rewrites a cell
        // page control owns, from whichever scope the salvager runs in.
        machine.clock.note_shared_data(Subsystem::PageControl);
        if let Some(cell) = self.loaded.get_mut(&uid) {
            cell.used = used;
        }
        self.sync_core_table(machine, uid);
        let mut rec = drm
            .read_quota_cell(machine, entry.home)?
            .ok_or(KernelError::QuotaDesignation("cell missing from TOC"))?;
        rec.used_pages = used;
        drm.write_quota_cell(machine, entry.home, Some(rec))
    }

    /// Current (limit, used) of a loaded cell.
    pub fn cell_state(&self, uid: SegUid) -> Option<(u32, u32)> {
        self.loaded.get(&uid).map(|c| (c.limit, c.used))
    }

    /// Rewrites a cell's persistent home (its quota directory relocated).
    pub fn update_home(&mut self, uid: SegUid, new_home: DiskHome) {
        if let Some(e) = self.cell_dir.get_mut(&uid) {
            e.home = new_home;
        }
    }

    /// True if `uid` names a quota cell.
    pub fn exists(&self, uid: SegUid) -> bool {
        self.cell_dir.contains_key(&uid)
    }

    /// Mirrors a cell into the core-segment table (limit and used words),
    /// keeping the "cached in primary memory" story literal.
    /// Mirrors a cell into the core-segment table (uid, limit, used,
    /// flags words), keeping the "cached in primary memory" story
    /// literal. Skipped until the base is bound.
    fn sync_core_table(&self, machine: &mut Machine, uid: SegUid) {
        if self.table_base == mx_hw::AbsAddr(0) {
            return;
        }
        let Some(entry) = self.cell_dir.get(&uid) else {
            return;
        };
        let Some(cell) = self.loaded.get(&uid) else {
            return;
        };
        let base = u64::from(entry.slot) * CELL_WORDS;
        let words = [
            Word::new(uid.0),
            Word::new(u64::from(cell.limit)),
            Word::new(u64::from(cell.used)),
            Word::new(1),
        ];
        for (i, w) in words.iter().enumerate() {
            machine.mem.write(self.table_base.add(base + i as u64), *w);
        }
    }

    /// Binds the core-table base address (called once by the kernel
    /// right after construction, with the core-segment manager in hand).
    pub fn bind_table_base(&mut self, csm: &CoreSegmentManager) {
        self.table_base = csm.addr(self.table_seg, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx_hw::MachineConfig;

    fn setup() -> (
        Machine,
        CoreSegmentManager,
        DiskRecordManager,
        QuotaCellManager,
        DiskHome,
    ) {
        let mut machine = Machine::new(MachineConfig {
            packs: 1,
            records_per_pack: 16,
            toc_slots_per_pack: 8,
            ..MachineConfig::kernel_proposed()
        });
        let mut csm = CoreSegmentManager::new(0, 4);
        let mut drm = DiskRecordManager::new();
        let mut qcm = QuotaCellManager::new(&mut csm).unwrap();
        qcm.bind_table_base(&csm);
        let toc = drm.create_entry(&mut machine, mx_hw::PackId(0), 1).unwrap();
        let home = DiskHome {
            pack: mx_hw::PackId(0),
            toc,
        };
        (machine, csm, drm, qcm, home)
    }

    #[test]
    fn create_charge_uncharge_cycle() {
        let (mut m, _csm, mut drm, mut qcm, home) = setup();
        let uid = SegUid(1);
        let mut flows = FlowTracker::new();
        qcm.create_cell(&mut m, &mut drm, uid, home, 5, Label::BOTTOM)
            .unwrap();
        qcm.charge(&mut m, uid, 3, Label::BOTTOM, &mut flows)
            .unwrap();
        assert_eq!(qcm.cell_state(uid), Some((5, 3)));
        let err = qcm
            .charge(&mut m, uid, 3, Label::BOTTOM, &mut flows)
            .unwrap_err();
        assert_eq!(err, KernelError::QuotaExceeded { limit: 5, used: 3 });
        qcm.uncharge(&mut m, uid, 2).unwrap();
        assert_eq!(qcm.cell_state(uid), Some((5, 1)));
        assert_eq!(qcm.charges, 2);
    }

    #[test]
    fn unload_persists_and_reload_restores() {
        let (mut m, _csm, mut drm, mut qcm, home) = setup();
        let uid = SegUid(2);
        let mut flows = FlowTracker::new();
        qcm.create_cell(&mut m, &mut drm, uid, home, 10, Label::BOTTOM)
            .unwrap();
        qcm.load(&mut m, &drm, uid, Label::BOTTOM).unwrap();
        qcm.charge(&mut m, uid, 4, Label::BOTTOM, &mut flows)
            .unwrap();
        qcm.unload(&mut m, &mut drm, uid).unwrap();
        assert_eq!(qcm.cell_state(uid), None, "evicted from the core table");
        let rec = drm.read_quota_cell(&m, home).unwrap().unwrap();
        assert_eq!(rec.used_pages, 4, "persisted to the TOC entry");
        qcm.load(&mut m, &drm, uid, Label::BOTTOM).unwrap();
        assert_eq!(qcm.cell_state(uid), Some((10, 4)));
    }

    #[test]
    fn refcounting_keeps_cell_loaded() {
        let (mut m, _csm, mut drm, mut qcm, home) = setup();
        let uid = SegUid(3);
        qcm.create_cell(&mut m, &mut drm, uid, home, 10, Label::BOTTOM)
            .unwrap();
        qcm.load(&mut m, &drm, uid, Label::BOTTOM).unwrap();
        qcm.load(&mut m, &drm, uid, Label::BOTTOM).unwrap();
        qcm.unload(&mut m, &mut drm, uid).unwrap();
        assert!(qcm.cell_state(uid).is_some(), "one reference remains");
        qcm.unload(&mut m, &mut drm, uid).unwrap();
        assert!(qcm.cell_state(uid).is_none());
    }

    #[test]
    fn destroy_refuses_charged_or_referenced_cells() {
        let (mut m, _csm, mut drm, mut qcm, home) = setup();
        let uid = SegUid(4);
        let mut flows = FlowTracker::new();
        qcm.create_cell(&mut m, &mut drm, uid, home, 10, Label::BOTTOM)
            .unwrap();
        qcm.charge(&mut m, uid, 1, Label::BOTTOM, &mut flows)
            .unwrap();
        assert!(qcm.destroy_cell(&mut m, &mut drm, uid).is_err());
        qcm.uncharge(&mut m, uid, 1).unwrap();
        qcm.destroy_cell(&mut m, &mut drm, uid).unwrap();
        assert!(!qcm.exists(uid));
        assert_eq!(drm.read_quota_cell(&m, home).unwrap(), None);
    }

    #[test]
    fn adopt_preserves_the_persisted_used_count() {
        let (mut m, _csm, mut drm, mut qcm, home) = setup();
        let uid = SegUid(6);
        let mut flows = FlowTracker::new();
        qcm.create_cell(&mut m, &mut drm, uid, home, 10, Label::BOTTOM)
            .unwrap();
        qcm.load(&mut m, &drm, uid, Label::BOTTOM).unwrap();
        qcm.charge(&mut m, uid, 3, Label::BOTTOM, &mut flows)
            .unwrap();
        qcm.unload(&mut m, &mut drm, uid).unwrap();
        // A recovery bootload sees only the disk image.
        let mut fresh = QuotaCellManager::new(&mut CoreSegmentManager::new(0, 4)).unwrap();
        fresh.adopt_cell(&m, &drm, uid, home).unwrap();
        assert!(fresh.exists(uid));
        fresh.adopt_cell(&m, &drm, uid, home).unwrap(); // idempotent
        fresh.load(&mut m, &drm, uid, Label::BOTTOM).unwrap();
        assert_eq!(fresh.cell_state(uid), Some((10, 3)), "used count kept");
    }

    #[test]
    fn downward_accounting_flow_is_observed() {
        let (mut m, _csm, mut drm, mut qcm, home) = setup();
        let uid = SegUid(5);
        let mut flows = FlowTracker::new();
        qcm.create_cell(&mut m, &mut drm, uid, home, 10, Label::BOTTOM)
            .unwrap();
        let secret = Label::new(mx_aim::Level(2), mx_aim::CompartmentSet::empty());
        qcm.charge(&mut m, uid, 1, secret, &mut flows).unwrap();
        assert_eq!(flows.violation_count(), 1, "high subject wrote a low cell");
    }
}
