//! The Directory Manager.
//!
//! Directories are segments holding fixed-size entry records; every
//! operation here reads and writes them *through the segment manager*,
//! so directory work really pages, really grows, and really charges
//! quota cells.
//!
//! Three of the paper's designs live here:
//!
//! * **The single-directory search primitive with mythical
//!   identifiers** (Bratt, 1975). The kernel does not follow tree names;
//!   it searches one designated directory for one presented name. If the
//!   caller can read the directory, the answer is honest. If not — or if
//!   the "directory" never existed — the primitive *always returns a
//!   matching identifier*, mythical if necessary, indistinguishable from
//!   a real one; only an attempt to *use* the final identifier yields
//!   the uniform "no access". Tree-name expansion itself lives outside
//!   the kernel, in `mx-user`.
//!
//! * **Childless-only quota designation.** A directory may become (or
//!   stop being) a quota directory only while it has no children, so
//!   every object's controlling quota cell is fixed at creation — the
//!   static binding the whole quota design rests on.
//!
//! * **The moved-segment signal consumer.** When the upward signal
//!   arrives (via the gatekeeper), the manager rewrites the directory
//!   entry of the moved segment with its new pack and TOC index.

use crate::disk_record::DiskRecordManager;
use crate::error::KernelError;
use crate::known_segment::{KnownSegmentManager, KstEntry};
use crate::page_frame::PageFrameManager;
use crate::quota_cell::QuotaCellManager;
use crate::segment::SegmentManager;
use crate::types::{AccessRight, Acl, DiskHome, ObjToken, ProcessId, SegUid, UserId};
use crate::vproc::VirtualProcessorManager;
use mx_aim::{AccessKind, CompartmentSet, FlowTracker, Label, Level, ReferenceMonitor};
use mx_hw::{Machine, PackId, TocIndex, Word};
use std::collections::HashMap;

/// Words per directory entry record.
pub const ENTRY_WORDS: u32 = 20;

/// The lower managers a directory operation runs against — everything
/// below the directory manager in the lattice, bundled for signatures.
pub struct FsCtx<'a> {
    /// The machine.
    pub machine: &'a mut Machine,
    /// Disk-record manager.
    pub drm: &'a mut DiskRecordManager,
    /// Quota-cell manager.
    pub qcm: &'a mut QuotaCellManager,
    /// Page-frame manager.
    pub pfm: &'a mut PageFrameManager,
    /// Virtual-processor manager (eventcounts for page service).
    pub vpm: &'a mut VirtualProcessorManager,
    /// Segment manager.
    pub segm: &'a mut SegmentManager,
    /// Information-flow tracker.
    pub flows: &'a mut FlowTracker,
    /// The AIM reference monitor: every mandatory-access decision made
    /// during directory operations is recorded in its audit log.
    pub monitor: &'a mut ReferenceMonitor,
}

/// A decoded directory entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryRecord {
    /// The named object's uid.
    pub uid: SegUid,
    /// Directory?
    pub is_dir: bool,
    /// Quota directory?
    pub quota_dir: bool,
    /// Disk home.
    pub home: DiskHome,
    /// Entry name.
    pub name: String,
    /// Discretionary ACL.
    pub acl: Acl,
    /// AIM label.
    pub label: Label,
    /// Quota limit (quota directories; informational — the live value
    /// is the cell's).
    pub quota_limit: u32,
    /// Controlling quota cell of the object's own pages.
    pub own_cell: SegUid,
}

#[derive(Debug, Clone, Copy)]
struct BranchInfo {
    parent: Option<SegUid>,
    slot: u32,
    is_dir: bool,
    children: u32,
    /// Cell charged for this object's own pages (fixed at creation).
    own_cell: SegUid,
    /// Cell new children will be bound to (own uid if quota directory).
    child_cell: SegUid,
    quota_dir: bool,
    home: DiskHome,
    label: Label,
}

/// Experiment counters for the search primitive.
#[derive(Debug, Clone, Copy, Default)]
pub struct DirStats {
    /// Search-primitive invocations.
    pub searches: u64,
    /// Mythical identifiers issued.
    pub mythical_issued: u64,
    /// Moved-segment signals consumed.
    pub moves_recorded: u64,
}

/// The directory object manager.
#[derive(Debug)]
pub struct DirectoryManager {
    branch: HashMap<SegUid, BranchInfo>,
    real_tokens: HashMap<u64, SegUid>,
    token_of: HashMap<SegUid, u64>,
    secret: u64,
    root: SegUid,
    next_uid: u64,
    /// Counters.
    pub stats: DirStats,
}

fn mix(mut x: u64) -> u64 {
    // SplitMix64 finalizer: deterministic, well distributed.
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn name_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn pack_name(name: &str) -> [Word; 8] {
    let mut words = [Word::ZERO; 8];
    for (i, b) in name.bytes().take(32).enumerate() {
        let w = i / 4;
        let shift = (i % 4) as u32 * 9;
        words[w] = Word::new(words[w].raw() | (u64::from(b) << shift));
    }
    words
}

fn unpack_name(words: &[Word; 8]) -> String {
    let mut out = String::new();
    for w in words {
        for c in 0..4 {
            let b = ((w.raw() >> (c * 9)) & 0x1FF) as u8;
            if b == 0 {
                return out;
            }
            out.push(b as char);
        }
    }
    out
}

fn pack_label(label: Label) -> u64 {
    u64::from(label.level.0 & 0x7) | (label.compartments.bits() & 0xFF_FFFF) << 3
}

fn unpack_label(bits: u64) -> Label {
    Label::new(
        Level((bits & 0x7) as u8),
        CompartmentSet::from_bits((bits >> 3) & 0xFF_FFFF),
    )
}

impl DirectoryManager {
    /// Creates the manager and the root directory (a quota directory
    /// with `root_quota` pages, public access, system-low label).
    ///
    /// # Errors
    ///
    /// Disk or table errors from below.
    pub fn new(ctx: &mut FsCtx<'_>, seed: u64, root_quota: u32) -> Result<Self, KernelError> {
        let root = SegUid(1);
        let toc = ctx.drm.create_entry(ctx.machine, PackId(0), root.0)?;
        let home = DiskHome {
            pack: PackId(0),
            toc,
        };
        ctx.qcm
            .create_cell(ctx.machine, ctx.drm, root, home, root_quota, Label::BOTTOM)?;
        let mut dm = Self {
            branch: HashMap::new(),
            real_tokens: HashMap::new(),
            token_of: HashMap::new(),
            secret: mix(seed ^ 0x006d_756c_7469_6373),
            root,
            next_uid: 2,
            stats: DirStats::default(),
        };
        dm.branch.insert(
            root,
            BranchInfo {
                parent: None,
                slot: 0,
                is_dir: true,
                children: 0,
                own_cell: root,
                child_cell: root,
                quota_dir: true,
                home,
                label: Label::BOTTOM,
            },
        );
        ctx.segm.activate(
            ctx.machine,
            ctx.drm,
            ctx.qcm,
            ctx.pfm,
            root,
            home,
            root,
            true,
            Label::BOTTOM,
        )?;
        ctx.segm.write_word(
            ctx.machine,
            ctx.drm,
            ctx.qcm,
            ctx.pfm,
            ctx.vpm,
            ctx.flows,
            root,
            0,
            Word::ZERO,
            Label::BOTTOM,
        )?;
        Ok(dm)
    }

    /// Rebuilds the manager from a surviving disk image — the recovery
    /// bootload path. `root_home` names the root directory's TOC entry
    /// (found by scanning pack 0 for uid 1). The branch cache is rebuilt
    /// by walking the directory segments themselves; entries whose TOC
    /// home is missing or mismatched are left uncatalogued for the
    /// salvager to report and repair.
    ///
    /// # Errors
    ///
    /// Disk or table errors reading the hierarchy.
    pub fn recover(
        ctx: &mut FsCtx<'_>,
        seed: u64,
        root_home: DiskHome,
    ) -> Result<Self, KernelError> {
        let root = SegUid(1);
        let mut dm = Self {
            branch: HashMap::new(),
            real_tokens: HashMap::new(),
            token_of: HashMap::new(),
            secret: mix(seed ^ 0x006d_756c_7469_6373),
            root,
            next_uid: 2,
            stats: DirStats::default(),
        };
        dm.branch.insert(
            root,
            BranchInfo {
                parent: None,
                slot: 0,
                is_dir: true,
                children: 0,
                own_cell: root,
                child_cell: root,
                quota_dir: true,
                home: root_home,
                label: Label::BOTTOM,
            },
        );
        // The root's quota cell record rode out the crash in its TOC
        // entry; adopt it without disturbing the persisted counts.
        ctx.qcm.adopt_cell(ctx.machine, ctx.drm, root, root_home)?;
        ctx.segm.activate(
            ctx.machine,
            ctx.drm,
            ctx.qcm,
            ctx.pfm,
            root,
            root_home,
            root,
            true,
            Label::BOTTOM,
        )?;
        let mut max_uid = root.0;
        let mut stack = vec![root];
        while let Some(dir) = stack.pop() {
            let parent_cell = dm.branch.get(&dir).expect("walked dir").child_cell;
            dm.ensure_active(ctx, dir)?;
            let count = dm.entry_count(ctx, dir)?;
            for slot in 0..count {
                let Some(e) = dm.read_entry(ctx, dir, slot)? else {
                    continue;
                };
                max_uid = max_uid.max(e.uid.0);
                // Catalogue only entries whose home survived; the
                // salvager flags the rest as dangling.
                let toc_uid = ctx
                    .machine
                    .disks
                    .pack(e.home.pack)
                    .ok()
                    .and_then(|p| p.entry(e.home.toc).ok())
                    .map(|t| t.uid);
                if toc_uid != Some(e.uid.0) {
                    continue;
                }
                if dm.branch.contains_key(&e.uid) {
                    // A duplicate claim (torn directory page); keep the
                    // first, leave this one for the salvager.
                    continue;
                }
                let mut quota_dir = e.quota_dir;
                if quota_dir {
                    // Re-adopt the persisted cell; if the record is gone
                    // the designation did not survive the crash.
                    if ctx
                        .qcm
                        .adopt_cell(ctx.machine, ctx.drm, e.uid, e.home)
                        .is_err()
                    {
                        quota_dir = false;
                    }
                }
                // Derive the controlling cell from the walk, not from the
                // entry's cached `own_cell` word: a torn directory page
                // can leave a valid uid next to a stale cell pointer, and
                // the nearest-superior rule is exactly what this top-down
                // walk reconstructs.
                dm.branch.insert(
                    e.uid,
                    BranchInfo {
                        parent: Some(dir),
                        slot,
                        is_dir: e.is_dir,
                        children: 0,
                        own_cell: parent_cell,
                        child_cell: if quota_dir { e.uid } else { parent_cell },
                        quota_dir,
                        home: e.home,
                        label: e.label,
                    },
                );
                dm.branch.get_mut(&dir).expect("walked dir").children += 1;
                if e.is_dir {
                    stack.push(e.uid);
                }
            }
        }
        dm.next_uid = max_uid + 1;
        Ok(dm)
    }

    /// The root directory's uid.
    pub fn root(&self) -> SegUid {
        self.root
    }

    /// The (real) token for the root directory.
    pub fn root_token(&mut self) -> ObjToken {
        self.real_token(self.root)
    }

    fn real_token(&mut self, uid: SegUid) -> ObjToken {
        if let Some(t) = self.token_of.get(&uid) {
            return ObjToken(*t);
        }
        let mut t = mix(uid.0 ^ self.secret);
        while t == 0 || self.real_tokens.contains_key(&t) {
            t = mix(t ^ 0x9e37_79b9);
        }
        self.real_tokens.insert(t, uid);
        self.token_of.insert(uid, t);
        ObjToken(t)
    }

    fn mythical_token(&mut self, dir_token: ObjToken, name: &str) -> ObjToken {
        self.stats.mythical_issued += 1;
        let mut t = mix(dir_token.0 ^ name_hash(name) ^ self.secret.rotate_left(17));
        // A mythical token must never collide with a real one (that
        // would grant access); perturb deterministically until clear.
        while t == 0 || self.real_tokens.contains_key(&t) {
            t = mix(t ^ 0x51_7c_c1_b7);
        }
        ObjToken(t)
    }

    /// Resolves a token to a uid — kernel internal; user code never sees
    /// uids.
    pub fn resolve_token(&self, token: ObjToken) -> Option<SegUid> {
        self.real_tokens.get(&token.0).copied()
    }

    /// True if the object exists (kernel internal).
    pub fn exists(&self, uid: SegUid) -> bool {
        self.branch.contains_key(&uid)
    }

    /// The home the manager currently records for an object.
    pub fn home_of(&self, uid: SegUid) -> Option<DiskHome> {
        self.branch.get(&uid).map(|b| b.home)
    }

    /// Everything needed to activate an object: `(home, controlling
    /// cell, is_dir, label)`. Kernel internal — the gatekeeper uses it
    /// for process state segments.
    pub fn activation_info(&self, uid: SegUid) -> Option<(DiskHome, SegUid, bool, Label)> {
        self.branch
            .get(&uid)
            .map(|b| (b.home, b.own_cell, b.is_dir, b.label))
    }

    // ---- entry records in segment storage --------------------------------

    fn entry_base(slot: u32) -> u32 {
        1 + slot * ENTRY_WORDS
    }

    pub(crate) fn ensure_active(
        &self,
        ctx: &mut FsCtx<'_>,
        uid: SegUid,
    ) -> Result<(), KernelError> {
        let b = self.branch.get(&uid).ok_or(KernelError::NotActive)?;
        ctx.segm
            .activate(
                ctx.machine,
                ctx.drm,
                ctx.qcm,
                ctx.pfm,
                uid,
                b.home,
                b.own_cell,
                b.is_dir,
                b.label,
            )
            .map(|_| ())
    }

    fn seg_read(&self, ctx: &mut FsCtx<'_>, uid: SegUid, wordno: u32) -> Result<Word, KernelError> {
        ctx.segm.read_word(
            ctx.machine,
            ctx.drm,
            ctx.qcm,
            ctx.pfm,
            ctx.vpm,
            ctx.flows,
            uid,
            wordno,
            Label::BOTTOM,
        )
    }

    fn seg_write(
        &self,
        ctx: &mut FsCtx<'_>,
        uid: SegUid,
        wordno: u32,
        value: Word,
    ) -> Result<(), KernelError> {
        ctx.segm.write_word(
            ctx.machine,
            ctx.drm,
            ctx.qcm,
            ctx.pfm,
            ctx.vpm,
            ctx.flows,
            uid,
            wordno,
            value,
            Label::BOTTOM,
        )
    }

    pub(crate) fn entry_count(&self, ctx: &mut FsCtx<'_>, dir: SegUid) -> Result<u32, KernelError> {
        Ok(self.seg_read(ctx, dir, 0)?.raw() as u32)
    }

    /// Reads entry `slot` of directory `dir`; `Ok(None)` for unused
    /// slots.
    pub(crate) fn read_entry(
        &self,
        ctx: &mut FsCtx<'_>,
        dir: SegUid,
        slot: u32,
    ) -> Result<Option<EntryRecord>, KernelError> {
        self.ensure_active(ctx, dir)?;
        let base = Self::entry_base(slot);
        let flags = self.seg_read(ctx, dir, base + 1)?.raw();
        if flags & 1 == 0 {
            return Ok(None);
        }
        let uid = SegUid(self.seg_read(ctx, dir, base)?.raw());
        let pack = PackId(self.seg_read(ctx, dir, base + 2)?.raw() as u32);
        let toc = TocIndex(self.seg_read(ctx, dir, base + 3)?.raw() as u32);
        let mut name_words = [Word::ZERO; 8];
        for (i, w) in name_words.iter_mut().enumerate() {
            *w = self.seg_read(ctx, dir, base + 4 + i as u32)?;
        }
        let users = self.seg_read(ctx, dir, base + 12)?.raw();
        let rights = self.seg_read(ctx, dir, base + 13)?.raw();
        let quota_limit = self.seg_read(ctx, dir, base + 14)?.raw() as u32;
        let own_cell = SegUid(self.seg_read(ctx, dir, base + 16)?.raw());
        Ok(Some(EntryRecord {
            uid,
            is_dir: flags & 2 != 0,
            quota_dir: flags & 4 != 0,
            home: DiskHome { pack, toc },
            name: unpack_name(&name_words),
            acl: Acl::unpack(users, rights),
            label: unpack_label(flags >> 3),
            quota_limit,
            own_cell,
        }))
    }

    /// Writes a whole entry, setting the in-use flag **last** so a
    /// retried operation (after an upward signal) never sees a partial
    /// record.
    fn write_entry(
        &self,
        ctx: &mut FsCtx<'_>,
        dir: SegUid,
        slot: u32,
        e: &EntryRecord,
    ) -> Result<(), KernelError> {
        let base = Self::entry_base(slot);
        self.seg_write(ctx, dir, base, Word::new(e.uid.0))?;
        self.seg_write(ctx, dir, base + 2, Word::new(u64::from(e.home.pack.0)))?;
        self.seg_write(ctx, dir, base + 3, Word::new(u64::from(e.home.toc.0)))?;
        for (i, w) in pack_name(&e.name).iter().enumerate() {
            self.seg_write(ctx, dir, base + 4 + i as u32, *w)?;
        }
        let (users, rights) = e.acl.pack();
        self.seg_write(ctx, dir, base + 12, Word::new(users))?;
        self.seg_write(ctx, dir, base + 13, Word::new(rights))?;
        self.seg_write(ctx, dir, base + 14, Word::new(u64::from(e.quota_limit)))?;
        self.seg_write(ctx, dir, base + 16, Word::new(e.own_cell.0))?;
        let mut flags = 1u64;
        if e.is_dir {
            flags |= 2;
        }
        if e.quota_dir {
            flags |= 4;
        }
        flags |= pack_label(e.label) << 3;
        self.seg_write(ctx, dir, base + 1, Word::new(flags))
    }

    /// The metadata of an object, read from its entry in its superior
    /// (synthesized for the root: public ACL, system-low label).
    fn object_meta(&self, ctx: &mut FsCtx<'_>, uid: SegUid) -> Result<EntryRecord, KernelError> {
        let b = *self.branch.get(&uid).ok_or(KernelError::NoAccess)?;
        match b.parent {
            None => Ok(EntryRecord {
                uid,
                is_dir: true,
                quota_dir: b.quota_dir,
                home: b.home,
                name: String::new(),
                acl: Acl::new(), // Root: checked specially (public).
                label: Label::BOTTOM,
                quota_limit: 0,
                own_cell: b.own_cell,
            }),
            Some(parent) => self
                .read_entry(ctx, parent, b.slot)?
                .ok_or(KernelError::NoAccess),
        }
    }

    /// True if (user, label) may search/read the directory.
    fn can_read_dir(
        &self,
        ctx: &mut FsCtx<'_>,
        user: UserId,
        label: Label,
        dir: SegUid,
    ) -> Result<bool, KernelError> {
        if dir == self.root {
            return Ok(true); // The root listing is public.
        }
        let meta = self.object_meta(ctx, dir)?;
        Ok(meta.acl.permits(user, AccessRight::Read)
            && ctx
                .monitor
                .check(label, meta.label, AccessKind::Read)
                .is_ok())
    }

    /// Scans one directory for `name`; kernel-internal, no access check.
    fn scan(
        &self,
        ctx: &mut FsCtx<'_>,
        dir: SegUid,
        name: &str,
    ) -> Result<Option<(u32, EntryRecord)>, KernelError> {
        self.ensure_active(ctx, dir)?;
        let count = self.entry_count(ctx, dir)?;
        for slot in 0..count {
            crate::charge_pli(ctx.machine, 14);
            if let Some(e) = self.read_entry(ctx, dir, slot)? {
                if e.name == name {
                    return Ok(Some((slot, e)));
                }
            }
        }
        Ok(None)
    }

    // ---- the kernel primitives -------------------------------------------

    /// **The single-directory search primitive.**
    ///
    /// If the caller can read `dir_token`'s directory: an honest answer —
    /// the entry's identifier, or [`KernelError::NoEntry`].
    ///
    /// Otherwise — inaccessible directory, a non-directory, a mythical
    /// token, garbage — the primitive *always* returns an identifier:
    /// the real one if the name really is there (so a path that leads to
    /// an accessible file works), a deterministic mythical one if not.
    /// The two are indistinguishable.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoEntry`] only in the honest (readable) case.
    pub fn search(
        &mut self,
        ctx: &mut FsCtx<'_>,
        user: UserId,
        label: Label,
        dir_token: ObjToken,
        name: &str,
    ) -> Result<ObjToken, KernelError> {
        self.stats.searches += 1;
        let resolved = self
            .resolve_token(dir_token)
            .filter(|u| self.branch.contains_key(u));
        let is_real_dir = resolved.is_some_and(|u| self.branch[&u].is_dir);
        let readable = match resolved {
            Some(uid) if is_real_dir => self.can_read_dir(ctx, user, label, uid)?,
            _ => false,
        };
        if readable {
            let dir = resolved.expect("readable implies resolved");
            return match self.scan(ctx, dir, name)? {
                Some((_, e)) => Ok(self.real_token(e.uid)),
                None => Err(KernelError::NoEntry),
            };
        }
        // Not readable: never an error, never information.
        if is_real_dir {
            let dir = resolved.expect("real dir");
            if let Some((_, e)) = self.scan(ctx, dir, name)? {
                // Real identifier: if the path ultimately reaches an
                // accessible object, every intervening identifier works.
                return Ok(self.real_token(e.uid));
            }
        }
        Ok(self.mythical_token(dir_token, name))
    }

    /// Makes the object behind `token` known to a process, with
    /// effective access = ACL ∩ AIM fixed at initiation.
    ///
    /// A mythical (or otherwise unusable) token yields exactly
    /// [`KernelError::NoAccess`] — the same answer a real but forbidden
    /// object yields, so the caller "will be unable to decide whether or
    /// not the identifier … is real or mythical".
    ///
    /// # Errors
    ///
    /// [`KernelError::NoAccess`], uniformly.
    pub fn initiate(
        &mut self,
        ctx: &mut FsCtx<'_>,
        ksm: &mut KnownSegmentManager,
        pid: ProcessId,
        user: UserId,
        plabel: Label,
        token: ObjToken,
    ) -> Result<u32, KernelError> {
        let uid = self.resolve_token(token).ok_or(KernelError::NoAccess)?;
        let b = *self.branch.get(&uid).ok_or(KernelError::NoAccess)?;
        let meta = self.object_meta(ctx, uid)?;
        let aim_read = ctx
            .monitor
            .check(plabel, meta.label, AccessKind::Read)
            .is_ok();
        let aim_write = ctx
            .monitor
            .check(plabel, meta.label, AccessKind::Write)
            .is_ok();
        let read = meta.acl.permits(user, AccessRight::Read) && aim_read;
        let write = meta.acl.permits(user, AccessRight::Write) && aim_write;
        let execute = meta.acl.permits(user, AccessRight::Execute) && aim_read;
        if !(read || write || execute) {
            return Err(KernelError::NoAccess);
        }
        ksm.bind(
            pid,
            KstEntry {
                uid,
                home: b.home,
                cell: b.own_cell,
                is_dir: b.is_dir,
                label: meta.label,
                read,
                write,
                execute,
            },
        )
    }

    /// Creates a segment or directory entry in the directory behind
    /// `dir_token`.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoAccess`] (bad token / no modify permission),
    /// [`KernelError::AimViolation`], [`KernelError::NameDuplicated`],
    /// or storage errors — including a propagating upward signal if the
    /// directory itself had to move while growing.
    #[allow(clippy::too_many_arguments)]
    pub fn create(
        &mut self,
        ctx: &mut FsCtx<'_>,
        user: UserId,
        plabel: Label,
        dir_token: ObjToken,
        name: &str,
        acl: Acl,
        label: Label,
        is_dir: bool,
    ) -> Result<ObjToken, KernelError> {
        let dir = self.resolve_token(dir_token).ok_or(KernelError::NoAccess)?;
        let b = *self.branch.get(&dir).ok_or(KernelError::NoAccess)?;
        if !b.is_dir {
            return Err(KernelError::NotADirectory);
        }
        let meta = self.object_meta(ctx, dir)?;
        let modify_ok = dir == self.root
            || (meta.acl.permits(user, AccessRight::Write)
                && ctx
                    .monitor
                    .check(plabel, meta.label, AccessKind::Write)
                    .is_ok());
        if !modify_ok {
            return Err(KernelError::NoAccess);
        }
        if !label.dominates(meta.label) {
            return Err(KernelError::AimViolation);
        }
        if self.scan(ctx, dir, name)?.is_some() {
            return Err(KernelError::NameDuplicated);
        }
        crate::charge_pli(ctx.machine, 160);
        // Claim a slot: first unused, else extend the count.
        let count = self.entry_count(ctx, dir)?;
        let mut slot = count;
        for s in 0..count {
            let flags = self.seg_read(ctx, dir, Self::entry_base(s) + 1)?.raw();
            if flags & 1 == 0 {
                slot = s;
                break;
            }
        }
        // Touch the slot's last word first: any growth (and its possible
        // upward signal) happens before we allocate durable resources.
        self.seg_write(
            ctx,
            dir,
            Self::entry_base(slot) + ENTRY_WORDS - 1,
            Word::ZERO,
        )?;
        if slot == count {
            self.seg_write(ctx, dir, 0, Word::new(u64::from(count) + 1))?;
        }

        let uid = SegUid(self.next_uid);
        self.next_uid += 1;
        // Cluster children on the parent's pack, falling back to any
        // pack with table-of-contents room.
        let toc = ctx
            .drm
            .create_entry_anywhere(ctx.machine, b.home.pack, uid.0)?;
        let own_cell = b.child_cell;
        let entry = EntryRecord {
            uid,
            is_dir,
            quota_dir: false,
            home: toc,
            name: name.to_string(),
            acl,
            label,
            quota_limit: 0,
            own_cell,
        };
        self.write_entry(ctx, dir, slot, &entry)?;
        self.branch.insert(
            uid,
            BranchInfo {
                parent: Some(dir),
                slot,
                is_dir,
                children: 0,
                own_cell,
                child_cell: own_cell,
                quota_dir: false,
                home: toc,
                label,
            },
        );
        self.branch.get_mut(&dir).expect("parent").children += 1;
        Ok(self.real_token(uid))
    }

    /// Designates a **childless** directory as a quota directory.
    ///
    /// # Errors
    ///
    /// [`KernelError::QuotaDesignation`] if the directory has children
    /// or already is one; [`KernelError::NoAccess`] for bad tokens or
    /// missing modify permission.
    pub fn set_quota_directory(
        &mut self,
        ctx: &mut FsCtx<'_>,
        user: UserId,
        plabel: Label,
        dir_token: ObjToken,
        limit: u32,
    ) -> Result<(), KernelError> {
        let dir = self.resolve_token(dir_token).ok_or(KernelError::NoAccess)?;
        let b = *self.branch.get(&dir).ok_or(KernelError::NoAccess)?;
        if !b.is_dir {
            return Err(KernelError::NotADirectory);
        }
        let meta = self.object_meta(ctx, dir)?;
        if dir != self.root
            && !(meta.acl.permits(user, AccessRight::Write)
                && ctx
                    .monitor
                    .check(plabel, meta.label, AccessKind::Write)
                    .is_ok())
        {
            return Err(KernelError::NoAccess);
        }
        if b.children > 0 {
            return Err(KernelError::QuotaDesignation("directory has children"));
        }
        if b.quota_dir {
            return Err(KernelError::QuotaDesignation("already a quota directory"));
        }
        ctx.qcm
            .create_cell(ctx.machine, ctx.drm, dir, b.home, limit, meta.label)?;
        {
            let bi = self.branch.get_mut(&dir).expect("branch");
            bi.quota_dir = true;
            bi.child_cell = dir;
        }
        if let Some(parent) = b.parent {
            if let Some((slot, mut e)) = self.scan_slot(ctx, parent, b.slot)? {
                e.quota_dir = true;
                e.quota_limit = limit;
                self.write_entry(ctx, parent, slot, &e)?;
            }
        }
        Ok(())
    }

    /// Removes a quota designation from a **childless**, uncharged
    /// quota directory (the inverse operation, restricted identically).
    ///
    /// # Errors
    ///
    /// [`KernelError::QuotaDesignation`] if the rules are violated.
    pub fn clear_quota_directory(
        &mut self,
        ctx: &mut FsCtx<'_>,
        user: UserId,
        plabel: Label,
        dir_token: ObjToken,
    ) -> Result<(), KernelError> {
        let dir = self.resolve_token(dir_token).ok_or(KernelError::NoAccess)?;
        let b = *self.branch.get(&dir).ok_or(KernelError::NoAccess)?;
        let meta = self.object_meta(ctx, dir)?;
        if dir != self.root
            && !(meta.acl.permits(user, AccessRight::Write)
                && ctx
                    .monitor
                    .check(plabel, meta.label, AccessKind::Write)
                    .is_ok())
        {
            return Err(KernelError::NoAccess);
        }
        if b.children > 0 {
            return Err(KernelError::QuotaDesignation("directory has children"));
        }
        if !b.quota_dir {
            return Err(KernelError::QuotaDesignation("not a quota directory"));
        }
        ctx.qcm.destroy_cell(ctx.machine, ctx.drm, dir)?;
        {
            let bi = self.branch.get_mut(&dir).expect("branch");
            bi.quota_dir = false;
            bi.child_cell = bi.own_cell;
        }
        if let Some(parent) = b.parent {
            if let Some((slot, mut e)) = self.scan_slot(ctx, parent, b.slot)? {
                e.quota_dir = false;
                e.quota_limit = 0;
                self.write_entry(ctx, parent, slot, &e)?;
            }
        }
        Ok(())
    }

    /// Kernel-internal lookup (no access check): the uid behind `name`
    /// in `dir`, if any. Recovery bootload uses it to refind well-known
    /// directories.
    pub(crate) fn lookup_in(
        &self,
        ctx: &mut FsCtx<'_>,
        dir: SegUid,
        name: &str,
    ) -> Result<Option<SegUid>, KernelError> {
        Ok(self.scan(ctx, dir, name)?.map(|(_, e)| e.uid))
    }

    /// The (real) token for a known uid — recovery bootload only.
    pub(crate) fn token_for(&mut self, uid: SegUid) -> ObjToken {
        self.real_token(uid)
    }

    /// Salvager repair: clears entry `slot` of `dir` (the in-use flag
    /// goes to zero) and evicts `uid` from the branch cache if that
    /// entry was its catalogue record.
    pub(crate) fn salvage_clear_entry(
        &mut self,
        ctx: &mut FsCtx<'_>,
        dir: SegUid,
        slot: u32,
        uid: SegUid,
    ) -> Result<(), KernelError> {
        self.seg_write(ctx, dir, Self::entry_base(slot) + 1, Word::ZERO)?;
        let cached_here = self
            .branch
            .get(&uid)
            .is_some_and(|b| b.parent == Some(dir) && b.slot == slot);
        if cached_here {
            self.branch.remove(&uid);
            if let Some(t) = self.token_of.remove(&uid) {
                self.real_tokens.remove(&t);
            }
            if let Some(p) = self.branch.get_mut(&dir) {
                p.children = p.children.saturating_sub(1);
            }
        }
        Ok(())
    }

    fn scan_slot(
        &self,
        ctx: &mut FsCtx<'_>,
        dir: SegUid,
        slot: u32,
    ) -> Result<Option<(u32, EntryRecord)>, KernelError> {
        Ok(self.read_entry(ctx, dir, slot)?.map(|e| (slot, e)))
    }

    /// Deletes a leaf object named `name` in the directory behind
    /// `dir_token`.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoAccess`] (uniform), or
    /// [`KernelError::QuotaDesignation`] when deleting a still-charged
    /// quota directory.
    pub fn delete(
        &mut self,
        ctx: &mut FsCtx<'_>,
        ksm: &mut KnownSegmentManager,
        user: UserId,
        plabel: Label,
        dir_token: ObjToken,
        name: &str,
    ) -> Result<(), KernelError> {
        let dir = self.resolve_token(dir_token).ok_or(KernelError::NoAccess)?;
        let bdir = *self.branch.get(&dir).ok_or(KernelError::NoAccess)?;
        let meta = self.object_meta(ctx, dir)?;
        if dir != self.root
            && !(meta.acl.permits(user, AccessRight::Write)
                && ctx
                    .monitor
                    .check(plabel, meta.label, AccessKind::Write)
                    .is_ok())
        {
            return Err(KernelError::NoAccess);
        }
        let Some((slot, e)) = self.scan(ctx, dir, name)? else {
            return Err(KernelError::NoAccess);
        };
        let b = *self.branch.get(&e.uid).ok_or(KernelError::NoAccess)?;
        if b.children > 0 {
            return Err(KernelError::NoAccess);
        }
        if b.quota_dir {
            // The cell must go first (it must be unreferenced and empty).
            ctx.qcm.destroy_cell(ctx.machine, ctx.drm, e.uid)?;
        }
        if ctx.segm.get(e.uid).is_some() {
            ctx.segm
                .deactivate(ctx.machine, ctx.drm, ctx.qcm, ctx.pfm, e.uid)?;
        }
        // Uncharge whatever records the object still holds, then free
        // them with the TOC entry.
        let records = ctx.drm.records_used(ctx.machine, b.home).unwrap_or(0);
        if records > 0 {
            ctx.qcm.uncharge(ctx.machine, b.own_cell, records)?;
        }
        ctx.drm.delete_entry(ctx.machine, b.home)?;
        self.seg_write(ctx, dir, Self::entry_base(slot) + 1, Word::ZERO)?;
        self.branch.remove(&e.uid);
        self.branch.get_mut(&dir).expect("parent").children -= 1;
        let _ = bdir;
        if let Some(t) = self.token_of.remove(&e.uid) {
            self.real_tokens.remove(&t);
        }
        ksm.refresh_home(e.uid, b.home); // Harmless refresh; KST entries go stale naturally.
        Ok(())
    }

    /// Consumes a moved-segment signal: rewrites the directory entry of
    /// `uid` with its new home and refreshes the branch cache. Invoked
    /// by the gatekeeper trampoline.
    ///
    /// # Errors
    ///
    /// Storage errors rewriting the entry.
    pub fn record_move(
        &mut self,
        ctx: &mut FsCtx<'_>,
        uid: SegUid,
        new_home: DiskHome,
    ) -> Result<(), KernelError> {
        self.stats.moves_recorded += 1;
        let b = *self.branch.get(&uid).ok_or(KernelError::NotActive)?;
        if let Some(parent) = b.parent {
            let base = Self::entry_base(b.slot);
            self.seg_write(ctx, parent, base + 2, Word::new(u64::from(new_home.pack.0)))?;
            self.seg_write(ctx, parent, base + 3, Word::new(u64::from(new_home.toc.0)))?;
        }
        self.branch.get_mut(&uid).expect("branch").home = new_home;
        Ok(())
    }

    /// Lists the entry names of a directory the caller can read.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoAccess`] for unreadable or unreal directories.
    pub fn list(
        &mut self,
        ctx: &mut FsCtx<'_>,
        user: UserId,
        label: Label,
        dir_token: ObjToken,
    ) -> Result<Vec<String>, KernelError> {
        let dir = self.resolve_token(dir_token).ok_or(KernelError::NoAccess)?;
        if !self.branch.get(&dir).is_some_and(|b| b.is_dir) {
            return Err(KernelError::NoAccess);
        }
        if !self.can_read_dir(ctx, user, label, dir)? {
            return Err(KernelError::NoAccess);
        }
        let count = self.entry_count(ctx, dir)?;
        let mut names = Vec::new();
        for slot in 0..count {
            if let Some(e) = self.read_entry(ctx, dir, slot)? {
                names.push(e.name);
            }
        }
        Ok(names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_codec_round_trip() {
        for name in ["x", "alpha.pl1", &"q".repeat(32)] {
            assert_eq!(unpack_name(&pack_name(name)), name);
        }
    }

    #[test]
    fn label_codec_round_trip() {
        let l = Label::new(Level(3), CompartmentSet::from_bits(0b1011));
        assert_eq!(unpack_label(pack_label(l)), l);
    }

    #[test]
    fn mix_is_deterministic_and_spread() {
        assert_eq!(mix(1), mix(1));
        assert_ne!(mix(1), mix(2));
        assert_ne!(name_hash("a"), name_hash("b"));
    }
}
