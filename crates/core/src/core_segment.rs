//! The Core Segment Manager — the bottom of the lattice.
//!
//! "The core segments are allocated when the system is initialized and
//! thereafter the only available operations on them are the processor
//! read and write operations. A core segment can be used by any system
//! module to contain maps or programs and their temporary storage without
//! fear of creating a dependency loop. Use must be tempered, however, by
//! the facts that the number of core segments is fixed, the size of a
//! core segment cannot change, and core segments are permanently resident
//! in primary memory."
//!
//! The manager is "implemented by system initialization code and by the
//! processor hardware": after [`CoreSegmentManager::seal`] no further
//! allocation is possible, and the remaining interface is word read /
//! word write.

use crate::error::KernelError;
use mx_hw::{AbsAddr, FrameNo, MainMemory, Word, PAGE_WORDS};

/// Names one core segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoreSegId(pub u32);

#[derive(Debug, Clone, Copy)]
struct CoreSeg {
    base: FrameNo,
    frames: u32,
}

/// The fixed pool of permanently resident core segments.
#[derive(Debug, Clone)]
pub struct CoreSegmentManager {
    segs: Vec<CoreSeg>,
    next_frame: u32,
    limit_frame: u32,
    sealed: bool,
}

impl CoreSegmentManager {
    /// Prepares to allocate core segments out of frames
    /// `[first_frame, first_frame + frames)`.
    pub fn new(first_frame: u32, frames: u32) -> Self {
        Self {
            segs: Vec::new(),
            next_frame: first_frame,
            limit_frame: first_frame + frames,
            sealed: false,
        }
    }

    /// Allocates a core segment of `frames` frames during initialization.
    ///
    /// # Errors
    ///
    /// [`KernelError::TableFull`] once the region is exhausted or the
    /// manager is sealed.
    pub fn allocate(&mut self, frames: u32) -> Result<CoreSegId, KernelError> {
        if self.sealed || self.next_frame + frames > self.limit_frame {
            return Err(KernelError::TableFull("core segment"));
        }
        let id = CoreSegId(self.segs.len() as u32);
        self.segs.push(CoreSeg {
            base: FrameNo(self.next_frame),
            frames,
        });
        self.next_frame += frames;
        Ok(id)
    }

    /// Ends initialization: no further core segments can ever exist.
    pub fn seal(&mut self) {
        self.sealed = true;
    }

    /// Number of core segments.
    pub fn count(&self) -> usize {
        self.segs.len()
    }

    /// Size of a core segment in words.
    ///
    /// # Panics
    ///
    /// Panics on a foreign id.
    pub fn size_words(&self, id: CoreSegId) -> u64 {
        u64::from(self.segs[id.0 as usize].frames) * PAGE_WORDS as u64
    }

    /// First frame past the core-segment region (for carving the
    /// pageable pool).
    pub fn end_frame(&self) -> u32 {
        self.next_frame
    }

    /// Absolute address of a word within a core segment.
    ///
    /// # Panics
    ///
    /// Panics if `wordno` is outside the fixed size — core segments
    /// cannot change size, so an out-of-range reference is a kernel bug,
    /// not a fault.
    pub fn addr(&self, id: CoreSegId, wordno: u64) -> AbsAddr {
        let seg = self.segs[id.0 as usize];
        assert!(
            wordno < u64::from(seg.frames) * PAGE_WORDS as u64,
            "core segment {} has no word {wordno}",
            id.0
        );
        seg.base.base().add(wordno)
    }

    /// Reads a word of a core segment (the processor read operation).
    pub fn read(&self, mem: &MainMemory, id: CoreSegId, wordno: u64) -> Word {
        mem.read(self.addr(id, wordno))
    }

    /// Writes a word of a core segment (the processor write operation).
    pub fn write(&self, mem: &mut MainMemory, id: CoreSegId, wordno: u64, value: Word) {
        mem.write(self.addr(id, wordno), value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_is_contiguous_and_bounded() {
        let mut csm = CoreSegmentManager::new(2, 3);
        let a = csm.allocate(1).unwrap();
        let b = csm.allocate(2).unwrap();
        assert_eq!(csm.addr(a, 0), FrameNo(2).base());
        assert_eq!(csm.addr(b, 0), FrameNo(3).base());
        assert_eq!(csm.size_words(b), 2 * PAGE_WORDS as u64);
        assert_eq!(csm.allocate(1), Err(KernelError::TableFull("core segment")));
        assert_eq!(csm.end_frame(), 5);
    }

    #[test]
    fn sealing_forbids_further_allocation() {
        let mut csm = CoreSegmentManager::new(0, 10);
        csm.allocate(1).unwrap();
        csm.seal();
        assert!(csm.allocate(1).is_err());
        assert_eq!(csm.count(), 1);
    }

    #[test]
    fn read_write_round_trip() {
        let mut mem = MainMemory::new(4);
        let mut csm = CoreSegmentManager::new(1, 2);
        let seg = csm.allocate(2).unwrap();
        csm.write(&mut mem, seg, 1500, Word::new(0o77));
        assert_eq!(csm.read(&mem, seg, 1500), Word::new(0o77));
        // Word 1500 of a segment based at frame 1 is abs 1024 + 1500.
        assert_eq!(mem.read(AbsAddr(1024 + 1500)), Word::new(0o77));
    }

    #[test]
    #[should_panic(expected = "has no word")]
    fn fixed_size_is_enforced() {
        let mut mem = MainMemory::new(4);
        let mut csm = CoreSegmentManager::new(0, 1);
        let seg = csm.allocate(1).unwrap();
        csm.read(&mem, seg, PAGE_WORDS as u64);
        let _ = &mut mem;
    }
}
