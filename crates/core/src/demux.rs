//! The network-independent demultiplexer — the kernel residue of the
//! network extraction.
//!
//! Ciccarelli's project moved network *protocol* code to the user
//! domain; what remains in the kernel is only "the actual demultiplexing
//! of this stream … constructed, to a significant extent, in a fashion
//! independent of the particular network." Accordingly this module
//! contains **no per-network code**: a stream is attached with a
//! data-driven [`FramingSpec`] describing where the channel number and
//! payload live in a frame, and one generic routine routes every frame.
//! Adding a third network adds a spec — a few words of data — not a
//! handler. (Compare `mx_legacy::network`, where each network is its own
//! kernel handler.)

use crate::error::KernelError;
use crate::types::ProcessId;
use crate::user_process::{KernelEvent, UserProcessManager};
use crate::vproc::VirtualProcessorManager;
use std::collections::HashMap;

/// Largest frame an attached stream accepts. Anything longer than the
/// kernel's wired buffer is refused with a typed error *before* any
/// parse looks at it — an oversized frame is a caller bug (or an attack
/// on the buffer), not line noise to be silently dropped.
pub const MAX_FRAME: usize = 4096;

/// Identifies an attached multiplexed stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId(pub u32);

/// A data-driven description of a network's frame format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FramingSpec {
    /// Byte offset of the channel field.
    pub channel_offset: usize,
    /// Width of the channel field in bytes (1 or 2, big-endian).
    pub channel_bytes: usize,
    /// Byte offset of a payload-length field, if the framing has one
    /// (`None` means the payload runs to the end of the frame).
    pub length_offset: Option<usize>,
    /// Byte offset where the payload begins.
    pub payload_offset: usize,
}

impl FramingSpec {
    /// The ARPANET leader: byte 0 link, bytes 1–2 channel, payload after.
    pub const ARPANET: FramingSpec = FramingSpec {
        channel_offset: 1,
        channel_bytes: 2,
        length_offset: None,
        payload_offset: 3,
    };

    /// The local front-end processor: byte 0 channel, byte 1 length,
    /// payload after.
    pub const FRONT_END: FramingSpec = FramingSpec {
        channel_offset: 0,
        channel_bytes: 1,
        length_offset: Some(1),
        payload_offset: 2,
    };

    /// A third network — the terminal concentrator the paper
    /// hypothesizes ("if a third network were to be connected …").
    /// Its framing is deliberately quirky: the *length* comes first,
    /// then a flags byte nothing here interprets, then a two-byte
    /// channel, then the payload. In this design the quirks cost a few
    /// words of data; in `mx_legacy::network` they cost a whole new
    /// kernel handler.
    pub const THIRD_NET: FramingSpec = FramingSpec {
        channel_offset: 2,
        channel_bytes: 2,
        length_offset: Some(0),
        payload_offset: 4,
    };
}

#[derive(Debug, Default)]
struct Stream {
    spec: Option<FramingSpec>,
    channels: HashMap<u16, Vec<u8>>,
    /// Which user process has claimed each channel (for event routing).
    owners: HashMap<u16, ProcessId>,
    frames_in: u64,
    frames_bad: u64,
}

/// The generic demultiplexer.
#[derive(Debug, Default)]
pub struct DemuxManager {
    streams: Vec<Stream>,
}

impl DemuxManager {
    /// A demultiplexer with no streams attached.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a multiplexed stream described by `spec`. This is the
    /// whole cost of a new network inside the kernel.
    pub fn attach(&mut self, spec: FramingSpec) -> StreamId {
        self.streams.push(Stream {
            spec: Some(spec),
            ..Stream::default()
        });
        StreamId(self.streams.len() as u32 - 1)
    }

    /// Number of attached streams.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Claims a channel for a user process; channel input events are
    /// delivered to it through the real-memory queue.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchChannel`] for an unknown stream.
    pub fn claim_channel(
        &mut self,
        stream: StreamId,
        channel: u16,
        pid: ProcessId,
    ) -> Result<(), KernelError> {
        let s = self
            .streams
            .get_mut(stream.0 as usize)
            .ok_or(KernelError::NoSuchChannel)?;
        s.owners.insert(channel, pid);
        s.channels.entry(channel).or_default();
        Ok(())
    }

    /// Routes one raw frame with the single generic parse, appending the
    /// payload to the addressed channel and posting a
    /// [`KernelEvent::ChannelInput`] upward.
    ///
    /// Malformed frames are counted and dropped, never fatal.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchChannel`] for an unknown stream or a stream
    /// attached without a framing spec;
    /// [`KernelError::FrameTooBig`] when the frame exceeds [`MAX_FRAME`].
    pub fn receive(
        &mut self,
        upm: &mut UserProcessManager,
        vpm: &mut VirtualProcessorManager,
        stream: StreamId,
        frame: &[u8],
    ) -> Result<(), KernelError> {
        if frame.len() > MAX_FRAME {
            return Err(KernelError::FrameTooBig {
                len: frame.len(),
                max: MAX_FRAME,
            });
        }
        let s = self
            .streams
            .get_mut(stream.0 as usize)
            .ok_or(KernelError::NoSuchChannel)?;
        let spec = s.spec.ok_or(KernelError::NoSuchChannel)?;
        let parsed = Self::parse(&spec, frame);
        match parsed {
            Some((channel, payload)) => {
                s.frames_in += 1;
                s.channels
                    .entry(channel)
                    .or_default()
                    .extend_from_slice(payload);
                if s.owners.contains_key(&channel) {
                    upm.deliver(
                        vpm,
                        KernelEvent::ChannelInput {
                            stream: stream.0,
                            channel,
                        },
                    );
                }
                Ok(())
            }
            None => {
                s.frames_bad += 1;
                Ok(())
            }
        }
    }

    /// The one network-independent frame parse.
    fn parse<'f>(spec: &FramingSpec, frame: &'f [u8]) -> Option<(u16, &'f [u8])> {
        if frame.len() < spec.payload_offset {
            return None;
        }
        let channel = match spec.channel_bytes {
            1 => u16::from(*frame.get(spec.channel_offset)?),
            2 => {
                let hi = *frame.get(spec.channel_offset)?;
                let lo = *frame.get(spec.channel_offset + 1)?;
                u16::from_be_bytes([hi, lo])
            }
            _ => return None,
        };
        let payload = &frame[spec.payload_offset..];
        match spec.length_offset {
            None => Some((channel, payload)),
            Some(off) => {
                let len = usize::from(*frame.get(off)?);
                if payload.len() < len {
                    None
                } else {
                    Some((channel, &payload[..len]))
                }
            }
        }
    }

    /// Takes the buffered input of a channel (a user-domain read through
    /// the gate).
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchChannel`] for unknown stream or channel.
    pub fn read_channel(&mut self, stream: StreamId, channel: u16) -> Result<Vec<u8>, KernelError> {
        self.streams
            .get_mut(stream.0 as usize)
            .ok_or(KernelError::NoSuchChannel)?
            .channels
            .get_mut(&channel)
            .map(std::mem::take)
            .ok_or(KernelError::NoSuchChannel)
    }

    /// (frames accepted, frames dropped) for a stream.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchChannel`] for an unknown stream.
    pub fn frame_counts(&self, stream: StreamId) -> Result<(u64, u64), KernelError> {
        let s = self
            .streams
            .get(stream.0 as usize)
            .ok_or(KernelError::NoSuchChannel)?;
        Ok((s.frames_in, s.frames_bad))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core_segment::CoreSegmentManager;
    use crate::types::UserId;
    use mx_aim::Label;
    use mx_hw::Machine;

    fn rig() -> (
        Machine,
        VirtualProcessorManager,
        UserProcessManager,
        DemuxManager,
    ) {
        let machine = Machine::kernel_proposed();
        let mut csm = CoreSegmentManager::new(0, 4);
        let mut vpm = VirtualProcessorManager::new(&mut csm, 2).unwrap();
        let upm = UserProcessManager::new(&mut vpm, 8, 4, 16);
        (machine, vpm, upm, DemuxManager::new())
    }

    #[test]
    fn one_generic_parser_speaks_both_network_framings() {
        let (mut m, mut vpm, mut upm, mut dx) = rig();
        let _ = &mut m;
        let arpa = dx.attach(FramingSpec::ARPANET);
        let fe = dx.attach(FramingSpec::FRONT_END);
        dx.receive(&mut upm, &mut vpm, arpa, &[0, 0, 7, b'h', b'i'])
            .unwrap();
        dx.receive(&mut upm, &mut vpm, fe, &[3, 2, b'o', b'k', b'X'])
            .unwrap();
        dx.claim_channel(arpa, 7, crate::types::ProcessId(0))
            .unwrap();
        assert_eq!(dx.read_channel(arpa, 7).unwrap(), b"hi");
        dx.claim_channel(fe, 3, crate::types::ProcessId(0)).unwrap();
        assert_eq!(
            dx.read_channel(fe, 3).unwrap(),
            b"ok",
            "length field honoured"
        );
        assert_eq!(dx.stream_count(), 2);
    }

    #[test]
    fn owned_channels_get_upward_events() {
        let (mut m, mut vpm, mut upm, mut dx) = rig();
        let pid = upm.create(&mut m, UserId(1), Label::BOTTOM).unwrap();
        let arpa = dx.attach(FramingSpec::ARPANET);
        dx.claim_channel(arpa, 9, pid).unwrap();
        dx.receive(&mut upm, &mut vpm, arpa, &[0, 0, 9, b'x'])
            .unwrap();
        let events = upm.drain_events();
        assert_eq!(
            events,
            vec![KernelEvent::ChannelInput {
                stream: arpa.0,
                channel: 9
            }]
        );
    }

    #[test]
    fn malformed_frames_are_counted_not_fatal() {
        let (mut m, mut vpm, mut upm, mut dx) = rig();
        let _ = &mut m;
        let fe = dx.attach(FramingSpec::FRONT_END);
        dx.receive(&mut upm, &mut vpm, fe, &[1]).unwrap(); // Too short.
        dx.receive(&mut upm, &mut vpm, fe, &[1, 200, 0]).unwrap(); // Length lies.
        assert_eq!(dx.frame_counts(fe).unwrap(), (0, 2));
    }

    #[test]
    fn unknown_stream_and_channel_are_errors() {
        let (_m, _vpm, _upm, mut dx) = rig();
        assert_eq!(
            dx.read_channel(StreamId(4), 1).unwrap_err(),
            KernelError::NoSuchChannel
        );
        let s = dx.attach(FramingSpec::ARPANET);
        assert_eq!(
            dx.read_channel(s, 1).unwrap_err(),
            KernelError::NoSuchChannel
        );
    }
}
