//! The declared dependency structure of Kernel/Multics — Figure 4.
//!
//! Every edge corresponds to a parameter in a manager's function
//! signatures in this crate (the lattice is not aspirational: a manager
//! physically cannot reach a module it is not handed). The test at the
//! bottom proves the declared structure loop-free, which is the paper's
//! central claim about the new design.

use mx_deps::{DepKind, ModuleGraph, RuntimeLattice};
use mx_hw::Subsystem;

/// The Figure 4 module graph, generated from this crate's structure.
pub fn kernel_structure() -> ModuleGraph {
    let mut g = ModuleGraph::new();
    let hw = g.add_module(
        "processor+memory",
        "the hardware (with the proposed additions)",
    );
    let csm = g.add_module(
        "core-segment-manager",
        "fixed core segments, read/write only",
    );
    let vpm = g.add_module(
        "virtual-processor-manager",
        "fixed VPs, eventcounts, cheap dispatch",
    );
    let drm = g.add_module("disk-record-manager", "records and tables of contents");
    let qcm = g.add_module("quota-cell-manager", "quota cells as explicit objects");
    let pfm = g.add_module(
        "page-frame-manager",
        "frames, page tables, lock-bit service, purifier",
    );
    let segm = g.add_module(
        "segment-manager",
        "activation, growth, relocation, upward signal",
    );
    let ksm = g.add_module(
        "known-segment-manager",
        "segno maps, quota-exception service",
    );
    let dirm = g.add_module(
        "directory-manager",
        "directories, ACLs, search primitive, quota rules",
    );
    let upm = g.add_module("user-process-manager", "unbounded processes over fixed VPs");
    let dmx = g.add_module("demultiplexer", "network-independent stream routing");
    let gate = g.add_module(
        "gatekeeper",
        "gates, AIM checks, fault dispatch, signal trampoline",
    );

    // Core segment manager: implemented by initialization code and the
    // processor hardware.
    g.depend(
        csm,
        hw,
        DepKind::Component,
        "core segments are regions of primary memory",
    );
    // Virtual processors: states in core segments; interpreted by the
    // real processors.
    g.depend(
        vpm,
        csm,
        DepKind::Map,
        "VP states live in a core segment (VirtualProcessorManager::new)",
    );
    g.depend(
        vpm,
        hw,
        DepKind::Interpreter,
        "VPs are multiplexes of the real processors",
    );
    // Disk records.
    g.depend(
        drm,
        hw,
        DepKind::Component,
        "records and TOCs are pack storage",
    );
    // Quota cells: cached in a core-segment table, persisted in TOCs.
    g.depend(
        qcm,
        csm,
        DepKind::Map,
        "the cell table is a core segment (QuotaCellManager::new)",
    );
    g.depend(
        qcm,
        drm,
        DepKind::Component,
        "cells persist in TOC entries (read/write_quota_cell)",
    );
    // Page frames.
    g.depend(
        pfm,
        csm,
        DepKind::Map,
        "the page-table pool is a core segment (PageFrameManager::new)",
    );
    g.depend(
        pfm,
        drm,
        DepKind::Component,
        "pages live on disk records (service/add_page)",
    );
    g.depend(
        pfm,
        qcm,
        DepKind::Call,
        "zero reversion uncharges the bound cell (evict/purify)",
    );
    g.depend(
        pfm,
        vpm,
        DepKind::Call,
        "service completion advances the page eventcount",
    );
    g.depend(
        pfm,
        hw,
        DepKind::Component,
        "frames are primary memory; the lock bit is hardware",
    );
    // Segments.
    g.depend(
        segm,
        pfm,
        DepKind::Component,
        "segments are paged objects (activate/grow)",
    );
    g.depend(
        segm,
        qcm,
        DepKind::Call,
        "growth charges the statically bound cell",
    );
    g.depend(
        segm,
        drm,
        DepKind::Component,
        "relocation copies records and TOC entries",
    );
    // Known segments.
    g.depend(
        ksm,
        segm,
        DepKind::Call,
        "quota exceptions activate and grow via the segment manager",
    );
    // Directories.
    g.depend(
        dirm,
        segm,
        DepKind::Component,
        "directory representations are stored in segments",
    );
    g.depend(
        dirm,
        qcm,
        DepKind::Call,
        "childless designation creates/destroys cells",
    );
    g.depend(
        dirm,
        drm,
        DepKind::Component,
        "entries name pack + TOC index",
    );
    // User processes.
    g.depend(
        upm,
        vpm,
        DepKind::Call,
        "event queue pairs with an eventcount; VPs are the carriers",
    );
    g.depend(
        upm,
        segm,
        DepKind::Component,
        "process states are stored in ordinary segments",
    );
    // Demultiplexer.
    g.depend(
        dmx,
        upm,
        DepKind::Call,
        "channel input events are delivered upward via the queue",
    );
    // Gatekeeper.
    for (m, why) in [
        (dirm, "directory gates"),
        (ksm, "initiation, quota-exception routing"),
        (upm, "process gates, scheduling"),
        (segm, "segment-fault connection"),
        (pfm, "missing-page routing by descriptor identity"),
        (dmx, "demultiplexer gates"),
        (vpm, "eventcount gates"),
    ] {
        g.depend(gate, m, DepKind::Call, why);
    }

    // Program and address-space dependencies: every module's programs
    // and maps are core segments; every module executes on a virtual
    // processor — exactly the two blanket rules the paper states under
    // Figure 4.
    for m in [drm, qcm, pfm, segm, ksm, dirm, upm, dmx, gate] {
        g.depend(
            m,
            csm,
            DepKind::Program,
            "programs and temporary storage are core segments",
        );
        g.depend(
            m,
            csm,
            DepKind::AddressSpace,
            "the system address space is built of core segments",
        );
    }
    for m in [drm, qcm, pfm, segm, ksm, dirm, upm, dmx, gate] {
        g.depend(
            m,
            vpm,
            DepKind::Interpreter,
            "executes on a virtual processor",
        );
    }
    g
}

/// The runtime projection of Figure 4: which meter-subsystem pairs the
/// kernel design permits the edge ledger to observe.
///
/// The meter is coarser than the module graph — several Figure-4
/// managers execute under one scope label (the quota-cell and
/// page-frame managers both meter as `page_control`; the known-segment
/// and segment managers as `segment_control`) — so each declared pair
/// is the image of one or more Figure-4 edges under that projection.
/// Two conventions govern the invoke edges:
///
/// * **the gatekeeper executes on the caller's stack**: a gate crossing
///   charges the gatekeeper and then the gated manager from the *user's*
///   scope, so `user_domain -> gatekeeper` and `user_domain -> <manager>`
///   are the declared shape of every gate, not `gatekeeper -> <manager>`;
/// * **initialization and recovery drive the kernel from the bootstrap
///   stack**, which meters as `user_domain` — the salvager and purifier
///   are invoked from there, not from inside another manager.
///
/// The projection must itself be loop-free (pinned by a test below):
/// the observed lattice can only be as good as the declared one.
pub fn kernel_runtime_lattice() -> RuntimeLattice {
    use Subsystem as S;
    let mut l = RuntimeLattice::new("kernel/figure-4");
    l.allow(
        S::UserDomain,
        S::Gatekeeper,
        "every gate crossing charges the gatekeeper on the caller's stack",
    );
    for (to, why) in [
        (S::DirectoryControl, "directory gates"),
        (
            S::SegmentControl,
            "initiate/terminate gates, segment faults",
        ),
        (
            S::PageControl,
            "missing-page, locked-descriptor and quota faults",
        ),
        (S::ProcessControl, "process gates"),
        (S::Scheduler, "dispatch and eventcount gates"),
        (S::Purifier, "purifier steps driven from the idle loop"),
        (S::AnsweringService, "login/logout residue"),
        (S::Network, "demultiplexer gates"),
        (S::Salvager, "salvage driven from the recovery bootstrap"),
    ] {
        l.allow(S::UserDomain, to, why);
    }
    l.allow(
        S::AnsweringService,
        S::ProcessControl,
        "login creates (and logout destroys) the session's process",
    );
    l.allow(
        S::AnsweringService,
        S::Network,
        "fleet admission directives travel the inter-machine wire",
    );
    l.allow(
        S::Network,
        S::SegmentControl,
        "resident file-store service faults segments in on behalf of \
         remote machines",
    );
    l.allow(
        S::Network,
        S::PageControl,
        "resident file-store service faults pages in on behalf of \
         remote machines",
    );
    // Shared-data pairs: the witness tags at the quota-cell, page-table
    // and descriptor-word choke points fire from whichever manager holds
    // the scope. All of them point *down* to the owning manager.
    l.allow(
        S::SegmentControl,
        S::PageControl,
        "activation/growth writes page tables and charges the bound cell",
    );
    l.allow(
        S::DirectoryControl,
        S::PageControl,
        "childless designation creates/destroys quota cells; directory \
         growth materializes pages",
    );
    l.allow(
        S::DirectoryControl,
        S::SegmentControl,
        "deleting an entry deactivates its segment (descriptor cut)",
    );
    l.allow(
        S::ProcessControl,
        S::PageControl,
        "process state segments grow pages against the process cell",
    );
    l.allow(
        S::Scheduler,
        S::PageControl,
        "lock-bit service at dispatch completes pending page reads",
    );
    l.allow(
        S::Purifier,
        S::PageControl,
        "zero reversion rewrites page tables and uncharges cells",
    );
    l.allow(
        S::Salvager,
        S::PageControl,
        "quota drift repair rewrites cells through their manager",
    );
    l
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_4_is_loop_free() {
        let g = kernel_structure();
        assert!(
            g.is_loop_free(),
            "the new design must be a lattice: {:?}",
            g.loops()
        );
    }

    #[test]
    fn the_bottom_is_hardware_then_core_segments() {
        let g = kernel_structure();
        let layers = g.layers().expect("loop-free");
        let names: Vec<&str> = layers[0].iter().map(|m| g.name(*m)).collect();
        assert_eq!(names, vec!["processor+memory"]);
        let names1: Vec<&str> = layers[1].iter().map(|m| g.name(*m)).collect();
        assert!(names1.contains(&"core-segment-manager"));
    }

    #[test]
    fn vpm_depends_only_on_core_and_hardware() {
        let g = kernel_structure();
        let vpm = g.find("virtual-processor-manager").unwrap();
        let assumed = g.assumed_by(vpm);
        let names: Vec<&str> = assumed.iter().map(|m| g.name(*m)).collect();
        assert_eq!(
            names,
            vec!["processor+memory", "core-segment-manager"],
            "the bottom level provides an interpreter that depends only on \
             the primary memory and the hardware processors"
        );
    }

    #[test]
    fn every_module_has_program_addressspace_interpreter_edges() {
        let g = kernel_structure();
        for name in [
            "disk-record-manager",
            "quota-cell-manager",
            "page-frame-manager",
            "segment-manager",
            "known-segment-manager",
            "directory-manager",
            "user-process-manager",
            "demultiplexer",
            "gatekeeper",
        ] {
            let m = g.find(name).unwrap();
            for kind in [
                DepKind::Program,
                DepKind::AddressSpace,
                DepKind::Interpreter,
            ] {
                assert!(
                    g.edges().iter().any(|e| e.from == m && e.kind == kind),
                    "{name} missing a {} edge",
                    kind.label()
                );
            }
        }
    }

    #[test]
    fn no_improper_shared_data_edges_remain() {
        let g = kernel_structure();
        assert_eq!(
            g.edges()
                .iter()
                .filter(|e| e.kind == DepKind::SharedData)
                .count(),
            0,
            "the new design eliminates direct sharing of writable data"
        );
    }

    #[test]
    fn runtime_lattice_is_loop_free() {
        let g = kernel_runtime_lattice().declared_graph();
        assert!(
            g.is_loop_free(),
            "the declared runtime lattice must itself be a lattice: {:?}",
            g.loops()
        );
    }

    #[test]
    fn runtime_lattice_keeps_the_gatekeeper_on_the_callers_stack() {
        let l = kernel_runtime_lattice();
        use Subsystem as S;
        assert!(l.contains(S::UserDomain, S::Gatekeeper));
        // The gatekeeper never calls onward in its own scope: gated
        // managers are charged from the user's frame.
        assert!(!l.contains(S::Gatekeeper, S::DirectoryControl));
        assert!(!l.contains(S::Gatekeeper, S::PageControl));
    }

    #[test]
    fn audit_is_module_at_a_time() {
        let g = kernel_structure();
        // In a lattice, no module's audit set contains itself.
        for m in g.module_ids() {
            assert!(!g.assumed_by(m).contains(&m), "{} is in a loop", g.name(m));
        }
    }
}
