//! The Known Segment Manager.
//!
//! Maps each process's segment numbers to segment unique identifiers —
//! and, crucially, carries the **statically bound quota cell name** for
//! every known segment, recorded when the segment was made known. The
//! hardware quota exception "invokes the known segment manager …
//! reporting the segment number and page number"; the manager translates
//! the segment number into a uid and invokes the segment manager, which
//! finds the quota cell by name — no hierarchy search anywhere.

use crate::disk_record::DiskRecordManager;
use crate::error::KernelError;
use crate::page_frame::PageFrameManager;
use crate::quota_cell::QuotaCellManager;
use crate::segment::SegmentManager;
use crate::types::{DiskHome, ProcessId, SegUid};
use mx_aim::{FlowTracker, Label};
use mx_hw::Machine;
use std::collections::HashMap;

/// Segment numbers per process (SDWs in one descriptor-segment frame).
pub const MAX_SEGNO: u32 = mx_hw::PAGE_WORDS as u32;

/// One known segment: everything activation needs, captured at
/// initiation so no directory is ever consulted afterwards.
#[derive(Debug, Clone)]
pub struct KstEntry {
    /// The segment's uid.
    pub uid: SegUid,
    /// Its disk home as of initiation (refreshed by moved-segment
    /// signals).
    pub home: DiskHome,
    /// The statically bound quota cell (uid of the controlling quota
    /// directory).
    pub cell: SegUid,
    /// True for directories.
    pub is_dir: bool,
    /// AIM label.
    pub label: Label,
    /// Effective read permission (ACL ∩ AIM, fixed at initiation).
    pub read: bool,
    /// Effective write permission.
    pub write: bool,
    /// Effective execute permission.
    pub execute: bool,
}

/// The known-segment object manager.
#[derive(Debug, Default)]
pub struct KnownSegmentManager {
    ksts: HashMap<ProcessId, Vec<Option<KstEntry>>>,
    /// Quota exceptions serviced (experiment counter).
    pub quota_exceptions: u64,
}

impl KnownSegmentManager {
    /// A fresh manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty KST for a new process.
    pub fn create_kst(&mut self, pid: ProcessId) {
        self.ksts.insert(pid, vec![None; MAX_SEGNO as usize]);
    }

    /// Destroys a process's KST.
    pub fn destroy_kst(&mut self, pid: ProcessId) {
        self.ksts.remove(&pid);
    }

    /// Makes a segment known to a process, returning its segment number.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchProcess`] / [`KernelError::KstFull`].
    pub fn bind(&mut self, pid: ProcessId, entry: KstEntry) -> Result<u32, KernelError> {
        let kst = self.ksts.get_mut(&pid).ok_or(KernelError::NoSuchProcess)?;
        // Reuse an existing segno for an already-known uid.
        if let Some(i) = kst
            .iter()
            .position(|e| e.as_ref().is_some_and(|k| k.uid == entry.uid))
        {
            return Ok(i as u32);
        }
        let segno = kst
            .iter()
            .enumerate()
            .skip(1)
            .find(|(_, e)| e.is_none())
            .map(|(i, _)| i as u32)
            .ok_or(KernelError::KstFull)?;
        kst[segno as usize] = Some(entry);
        Ok(segno)
    }

    /// The KST entry for (process, segno).
    ///
    /// # Errors
    ///
    /// [`KernelError::NoAccess`] if the segment number is not known.
    pub fn lookup(&self, pid: ProcessId, segno: u32) -> Result<&KstEntry, KernelError> {
        self.ksts
            .get(&pid)
            .ok_or(KernelError::NoSuchProcess)?
            .get(segno as usize)
            .and_then(|e| e.as_ref())
            .ok_or(KernelError::NoAccess)
    }

    /// The segment number a uid is known by in a process, if any.
    pub fn segno_of(&self, pid: ProcessId, uid: SegUid) -> Option<u32> {
        self.ksts
            .get(&pid)?
            .iter()
            .position(|e| e.as_ref().is_some_and(|k| k.uid == uid))
            .map(|i| i as u32)
    }

    /// Unbinds a segment number.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoAccess`] if it was not bound.
    pub fn unbind(&mut self, pid: ProcessId, segno: u32) -> Result<KstEntry, KernelError> {
        self.ksts
            .get_mut(&pid)
            .ok_or(KernelError::NoSuchProcess)?
            .get_mut(segno as usize)
            .and_then(Option::take)
            .ok_or(KernelError::NoAccess)
    }

    /// Refreshes the recorded disk home of a uid everywhere it is known
    /// (applied when the moved-segment signal is consumed).
    pub fn refresh_home(&mut self, uid: SegUid, new_home: DiskHome) {
        for kst in self.ksts.values_mut() {
            for entry in kst.iter_mut().flatten() {
                if entry.uid == uid {
                    entry.home = new_home;
                }
            }
        }
    }

    /// Services the hardware **quota exception**: translates the segment
    /// number to a uid, ensures the segment is active (activation
    /// parameters all come from the KST entry), and asks the segment
    /// manager to grow it under its statically bound cell.
    ///
    /// # Errors
    ///
    /// Quota and disk errors from below, or the propagating upward
    /// signal ([`KernelError::Upward`]).
    #[allow(clippy::too_many_arguments)]
    pub fn quota_exception(
        &mut self,
        machine: &mut Machine,
        drm: &mut DiskRecordManager,
        qcm: &mut QuotaCellManager,
        pfm: &mut PageFrameManager,
        segm: &mut SegmentManager,
        flows: &mut FlowTracker,
        pid: ProcessId,
        segno: u32,
        pageno: u32,
        subject: Label,
    ) -> Result<(), KernelError> {
        self.quota_exceptions += 1;
        crate::charge_pli(machine, 25);
        let entry = self.lookup(pid, segno)?.clone();
        segm.activate(
            machine,
            drm,
            qcm,
            pfm,
            entry.uid,
            entry.home,
            entry.cell,
            entry.is_dir,
            entry.label,
        )?;
        segm.grow(machine, drm, qcm, pfm, flows, entry.uid, pageno, subject)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx_hw::{PackId, TocIndex};

    fn entry(uid: u64) -> KstEntry {
        KstEntry {
            uid: SegUid(uid),
            home: DiskHome {
                pack: PackId(0),
                toc: TocIndex(0),
            },
            cell: SegUid(1),
            is_dir: false,
            label: Label::BOTTOM,
            read: true,
            write: true,
            execute: false,
        }
    }

    #[test]
    fn bind_lookup_unbind_cycle() {
        let mut ksm = KnownSegmentManager::new();
        let pid = ProcessId(0);
        ksm.create_kst(pid);
        let segno = ksm.bind(pid, entry(9)).unwrap();
        assert!(segno >= 1, "segno 0 reserved");
        assert_eq!(ksm.lookup(pid, segno).unwrap().uid, SegUid(9));
        assert_eq!(ksm.segno_of(pid, SegUid(9)), Some(segno));
        ksm.unbind(pid, segno).unwrap();
        assert!(ksm.lookup(pid, segno).is_err());
    }

    #[test]
    fn rebinding_the_same_uid_reuses_the_segno() {
        let mut ksm = KnownSegmentManager::new();
        let pid = ProcessId(0);
        ksm.create_kst(pid);
        let a = ksm.bind(pid, entry(9)).unwrap();
        let b = ksm.bind(pid, entry(9)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn refresh_home_updates_every_kst() {
        let mut ksm = KnownSegmentManager::new();
        for p in 0..2 {
            let pid = ProcessId(p);
            ksm.create_kst(pid);
            ksm.bind(pid, entry(9)).unwrap();
        }
        let new_home = DiskHome {
            pack: PackId(1),
            toc: TocIndex(5),
        };
        ksm.refresh_home(SegUid(9), new_home);
        for p in 0..2 {
            let pid = ProcessId(p);
            let segno = ksm.segno_of(pid, SegUid(9)).unwrap();
            assert_eq!(ksm.lookup(pid, segno).unwrap().home, new_home);
        }
    }

    #[test]
    fn unknown_process_and_segno_are_errors() {
        let mut ksm = KnownSegmentManager::new();
        assert_eq!(
            ksm.bind(ProcessId(3), entry(1)),
            Err(KernelError::NoSuchProcess)
        );
        ksm.create_kst(ProcessId(3));
        assert_eq!(
            ksm.lookup(ProcessId(3), 7).unwrap_err(),
            KernelError::NoAccess,
            "unknown segno is indistinguishable from forbidden"
        );
    }
}
