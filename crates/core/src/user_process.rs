//! The User Process Manager — level two of the two-level process
//! implementation.
//!
//! "The top part implements an arbitrary number of user processes and
//! depends upon the virtual memory to store their states. A subset of
//! the virtual processors are multiplexed among the user processes as
//! needed."
//!
//! Events discovered at the virtual-processor level (page services,
//! I/O completions) reach this level through the **real-memory message
//! queue** ([`mx_sync::MessageQueue`]) paired with an eventcount: the
//! low level `put`s without blocking and without knowing any receiver,
//! advances the eventcount, and this manager drains the queue when it
//! schedules.

use crate::error::KernelError;
use crate::types::{ProcessId, SegUid, UserId};
use crate::vproc::{VirtualProcessorManager, VpId};
use mx_aim::Label;
use mx_hw::{FrameNo, Machine};
use mx_sync::sim::EcId;
use mx_sync::MessageQueue;
use std::collections::{HashMap, VecDeque};

/// An event delivered from the virtual-processor level to the
/// user-process level through the real-memory queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelEvent {
    /// A page service completed for some process.
    PageServiced {
        /// The process whose reference was being serviced.
        pid: ProcessId,
    },
    /// Input arrived on a demultiplexer channel.
    ChannelInput {
        /// The stream.
        stream: u32,
        /// The channel within the stream.
        channel: u16,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UpState {
    Ready,
    Bound(VpId),
    Dead,
}

#[derive(Debug, Clone)]
struct UserProc {
    user: UserId,
    label: Label,
    dseg_frame: FrameNo,
    state: UpState,
    /// The process's swappable state segment, stored in the virtual
    /// memory like any other segment.
    state_seg: Option<SegUid>,
    charge: u64,
}

/// The outcome of a level-2 dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dispatch {
    /// The process now running.
    pub pid: ProcessId,
    /// The virtual processor it runs on.
    pub vp: VpId,
    /// True if the process was already loaded on this VP (cheap VP
    /// switch only); false if its state had to be brought in (the
    /// caller touches the state segment, which may page).
    pub already_loaded: bool,
}

/// The user-process object manager.
#[derive(Debug)]
pub struct UserProcessManager {
    procs: Vec<Option<UserProc>>,
    dseg_base: u32,
    queue: MessageQueue<KernelEvent>,
    /// Advanced on every queue put; level 2 awaits it when idle.
    pub queue_event: EcId,
    ready: VecDeque<ProcessId>,
    bound: HashMap<VpId, ProcessId>,
    vp_rotation: VecDeque<VpId>,
    /// Level-2 dispatches performed.
    pub dispatches: u64,
    /// Dispatches that needed a state load (process switch proper).
    pub loads: u64,
}

impl UserProcessManager {
    /// Builds the manager: process slots with wired descriptor-segment
    /// frames starting at `dseg_base`, and the real-memory event queue
    /// of `queue_capacity` messages.
    pub fn new(
        vpm: &mut VirtualProcessorManager,
        dseg_base: u32,
        max_processes: u32,
        queue_capacity: usize,
    ) -> Self {
        Self {
            procs: (0..max_processes).map(|_| None).collect(),
            dseg_base,
            queue: MessageQueue::new(queue_capacity),
            queue_event: vpm.create_eventcount(),
            ready: VecDeque::new(),
            bound: HashMap::new(),
            vp_rotation: vpm.user_vps().into(),
            dispatches: 0,
            loads: 0,
        }
    }

    /// Creates a process, zeroing its descriptor segment.
    ///
    /// # Errors
    ///
    /// [`KernelError::TableFull`] when every slot is occupied.
    pub fn create(
        &mut self,
        machine: &mut Machine,
        user: UserId,
        label: Label,
    ) -> Result<ProcessId, KernelError> {
        let slot = self
            .procs
            .iter()
            .position(|p| p.is_none())
            .ok_or(KernelError::TableFull("process"))? as u32;
        let dseg_frame = FrameNo(self.dseg_base + slot);
        machine.mem.zero_frame(dseg_frame);
        // A reused slot's old translations must not survive into the new
        // process's descriptor segment.
        machine.tlb_invalidate_sdw_range(dseg_frame.base(), mx_hw::PAGE_WORDS as u64);
        self.procs[slot as usize] = Some(UserProc {
            user,
            label,
            dseg_frame,
            state: UpState::Ready,
            state_seg: None,
            charge: 0,
        });
        let pid = ProcessId(slot);
        self.ready.push_back(pid);
        Ok(pid)
    }

    /// Destroys a process and frees its slot.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchProcess`] if unknown. Returns the final
    /// accounting charge.
    pub fn destroy(&mut self, pid: ProcessId) -> Result<u64, KernelError> {
        let slot = pid.0 as usize;
        let proc = self
            .procs
            .get_mut(slot)
            .and_then(Option::take)
            .ok_or(KernelError::NoSuchProcess)?;
        self.ready.retain(|p| *p != pid);
        self.bound.retain(|_, p| *p != pid);
        Ok(proc.charge)
    }

    /// The process's user.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchProcess`] if unknown.
    pub fn user_of(&self, pid: ProcessId) -> Result<UserId, KernelError> {
        self.get(pid).map(|p| p.user)
    }

    /// The process's AIM label.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchProcess`] if unknown.
    pub fn label_of(&self, pid: ProcessId) -> Result<Label, KernelError> {
        self.get(pid).map(|p| p.label)
    }

    /// The process's descriptor-segment frame.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchProcess`] if unknown.
    pub fn dseg_frame(&self, pid: ProcessId) -> Result<FrameNo, KernelError> {
        self.get(pid).map(|p| p.dseg_frame)
    }

    /// Records the process's swappable state segment.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchProcess`] if unknown.
    pub fn set_state_seg(&mut self, pid: ProcessId, uid: SegUid) -> Result<(), KernelError> {
        self.get_mut(pid)?.state_seg = Some(uid);
        Ok(())
    }

    /// The process's state segment, if assigned.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchProcess`] if unknown.
    pub fn state_seg(&self, pid: ProcessId) -> Result<Option<SegUid>, KernelError> {
        self.get(pid).map(|p| p.state_seg)
    }

    /// Adds one accounting unit to a process.
    pub fn bill(&mut self, pid: ProcessId) {
        if let Ok(p) = self.get_mut(pid) {
            p.charge += 1;
        }
    }

    /// Accumulated accounting units.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchProcess`] if unknown.
    pub fn charge_of(&self, pid: ProcessId) -> Result<u64, KernelError> {
        self.get(pid).map(|p| p.charge)
    }

    /// Live process count.
    pub fn live(&self) -> usize {
        self.procs.iter().filter(|p| p.is_some()).count()
    }

    /// The user VP a process is currently bound to, if any — the handle
    /// the kernel uses to home a process's memory references on a real
    /// processor.
    pub fn vp_of(&self, pid: ProcessId) -> Option<VpId> {
        self.bound
            .iter()
            .find(|(_, p)| **p == pid)
            .map(|(vp, _)| *vp)
    }

    fn get(&self, pid: ProcessId) -> Result<&UserProc, KernelError> {
        self.procs
            .get(pid.0 as usize)
            .and_then(|p| p.as_ref())
            .filter(|p| p.state != UpState::Dead)
            .ok_or(KernelError::NoSuchProcess)
    }

    fn get_mut(&mut self, pid: ProcessId) -> Result<&mut UserProc, KernelError> {
        self.procs
            .get_mut(pid.0 as usize)
            .and_then(|p| p.as_mut())
            .filter(|p| p.state != UpState::Dead)
            .ok_or(KernelError::NoSuchProcess)
    }

    // ---- upward event delivery -------------------------------------------

    /// Delivers an event from the VP level: a non-blocking put into the
    /// real-memory queue plus an eventcount advance. A full queue drops
    /// the event (and counts it) — the low level must never wait on the
    /// high level.
    pub fn deliver(&mut self, vpm: &mut VirtualProcessorManager, event: KernelEvent) -> bool {
        let ok = self.queue.put(event).is_ok();
        vpm.advance(self.queue_event);
        ok
    }

    /// Drains all pending events (the level-2 scheduler does this on
    /// every pass).
    pub fn drain_events(&mut self) -> Vec<KernelEvent> {
        let mut out = Vec::new();
        while let Ok(e) = self.queue.take() {
            out.push(e);
        }
        out
    }

    /// Events dropped because the fixed queue was full.
    pub fn dropped_events(&self) -> u64 {
        self.queue.rejected()
    }

    /// Deepest the real-memory event queue ever got — how close the
    /// inter-level buffer came to filling under load.
    pub fn queue_high_watermark(&self) -> usize {
        self.queue.high_watermark()
    }

    /// Restarts the event-queue depth observation (epoch boundary).
    pub fn reset_queue_high_watermark(&mut self) {
        self.queue.reset_high_watermark();
    }

    // ---- the level-2 scheduler ---------------------------------------------

    /// Dispatches the next ready process onto a user virtual processor.
    ///
    /// If the process is still loaded on a VP, the switch is the cheap
    /// VP-level one; otherwise a VP is (re)assigned and the caller must
    /// load the process state (touching its state segment, which may
    /// page — exactly the cost the two-level design confines to genuine
    /// process switches).
    pub fn dispatch(&mut self, vpm: &mut VirtualProcessorManager) -> Option<Dispatch> {
        // Requeue whoever is bound and running so a lone process runs on.
        let pid = self.ready.pop_front()?;
        self.ready.push_back(pid);
        self.dispatches += 1;
        // Already on a VP?
        if let Some((vp, _)) = self.bound.iter().find(|(_, p)| **p == pid) {
            let vp = *vp;
            if let Ok(p) = self.get_mut(pid) {
                p.state = UpState::Bound(vp);
                p.charge += 1;
            }
            return Some(Dispatch {
                pid,
                vp,
                already_loaded: true,
            });
        }
        // Bind to the next user VP in rotation (unloading its tenant).
        let vp = self.vp_rotation.pop_front()?;
        self.vp_rotation.push_back(vp);
        if let Some(prev) = self.bound.insert(vp, pid) {
            if let Ok(p) = self.get_mut(prev) {
                if p.state == UpState::Bound(vp) {
                    p.state = UpState::Ready;
                }
            }
        }
        if let Ok(p) = self.get_mut(pid) {
            p.state = UpState::Bound(vp);
            p.charge += 1;
        }
        self.loads += 1;
        let _ = vpm;
        Some(Dispatch {
            pid,
            vp,
            already_loaded: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core_segment::CoreSegmentManager;

    fn rig(max: u32, vps: u32) -> (Machine, VirtualProcessorManager, UserProcessManager) {
        let machine = Machine::kernel_proposed();
        let mut csm = CoreSegmentManager::new(0, 4);
        let mut vpm = VirtualProcessorManager::new(&mut csm, vps).unwrap();
        // Reserve VP 0 for the kernel so user VPs are 1..vps.
        vpm.bind_kernel(VpId(0), "user-scheduler");
        let upm = UserProcessManager::new(&mut vpm, 8, max, 16);
        (machine, vpm, upm)
    }

    #[test]
    fn unbounded_feel_processes_over_few_vps() {
        let (mut m, mut vpm, mut upm) = rig(8, 3); // 2 user VPs
        let pids: Vec<_> = (0..6)
            .map(|i| upm.create(&mut m, UserId(i), Label::BOTTOM).unwrap())
            .collect();
        assert_eq!(upm.live(), 6);
        // Dispatch around: with 6 processes on 2 VPs, loads dominate.
        for _ in 0..12 {
            upm.dispatch(&mut vpm).unwrap();
        }
        assert_eq!(upm.dispatches, 12);
        assert!(upm.loads >= 6, "every process loaded at least once");
        drop(pids);
    }

    #[test]
    fn lone_process_stays_loaded_and_switches_cheaply() {
        let (mut m, mut vpm, mut upm) = rig(4, 2);
        let pid = upm.create(&mut m, UserId(1), Label::BOTTOM).unwrap();
        let first = upm.dispatch(&mut vpm).unwrap();
        assert_eq!(first.pid, pid);
        assert!(!first.already_loaded, "first dispatch loads");
        for _ in 0..5 {
            let d = upm.dispatch(&mut vpm).unwrap();
            assert!(d.already_loaded, "subsequent dispatches are cheap");
        }
        assert_eq!(upm.loads, 1);
    }

    #[test]
    fn event_queue_delivers_in_order_and_drops_when_full() {
        let (mut m, mut vpm, mut upm) = rig(2, 2);
        let pid = upm.create(&mut m, UserId(1), Label::BOTTOM).unwrap();
        for _ in 0..16 {
            assert!(upm.deliver(&mut vpm, KernelEvent::PageServiced { pid }));
        }
        assert!(
            !upm.deliver(&mut vpm, KernelEvent::PageServiced { pid }),
            "17th event hits the fixed capacity"
        );
        assert_eq!(upm.dropped_events(), 1);
        let drained = upm.drain_events();
        assert_eq!(drained.len(), 16);
        assert!(drained
            .iter()
            .all(|e| *e == KernelEvent::PageServiced { pid }));
        assert_eq!(
            vpm.read_eventcount(upm.queue_event),
            17,
            "every put advanced the count"
        );
    }

    #[test]
    fn destroy_returns_final_charge() {
        let (mut m, mut vpm, mut upm) = rig(2, 2);
        let pid = upm.create(&mut m, UserId(1), Label::BOTTOM).unwrap();
        upm.dispatch(&mut vpm);
        upm.bill(pid);
        let charge = upm.destroy(pid).unwrap();
        assert_eq!(charge, 2, "one dispatch + one bill");
        assert_eq!(upm.live(), 0);
        assert!(upm.user_of(pid).is_err());
    }

    #[test]
    fn slot_reuse_after_destroy() {
        let (mut m, _vpm, mut upm) = rig(1, 2);
        let a = upm.create(&mut m, UserId(1), Label::BOTTOM).unwrap();
        assert!(upm.create(&mut m, UserId(2), Label::BOTTOM).is_err());
        upm.destroy(a).unwrap();
        let b = upm.create(&mut m, UserId(2), Label::BOTTOM).unwrap();
        assert_eq!(a, b);
    }
}
