//! The Virtual Processor Manager — level one of the two-level process
//! implementation.
//!
//! "The bottom part implements a fixed number of virtual processors whose
//! states are always in primary memory. Thus, this part does not need to
//! use the virtual memory. … The remaining virtual processors are
//! permanently bound to the interpretation of various kernel modules,
//! including the virtual memory modules and the user process scheduler."
//!
//! Because the number is fixed, all of Brinch Hansen's simplifications
//! apply; and because VP states live in a core segment, a VP switch never
//! pages — it is the cheap switch of the two-level design. Coordination
//! uses the Reed–Kanodia eventcount primitives ([`mx_sync::sim`]), whose
//! `advance` needs no knowledge of the waiting processes' identities.

use crate::core_segment::{CoreSegId, CoreSegmentManager};
use crate::error::KernelError;
use mx_hw::{Clock, MainMemory, Word};
use mx_sync::policy::{ChoicePoint, FifoPolicy, SchedulePolicy};
use mx_sync::sim::{EcId, EventTable, WaiterId};
use std::collections::VecDeque;

/// Identifies one virtual processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VpId(pub u32);

/// What a virtual processor is permanently for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VpBinding {
    /// Permanently bound to a kernel module (named for diagnostics).
    Kernel(&'static str),
    /// Available for multiplexing among user processes.
    User,
}

/// Scheduling state of a VP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VpState {
    /// Runnable / running.
    Ready,
    /// Parked on an eventcount.
    Waiting,
}

/// Words of core-segment state per VP (registers, DBR image, flags).
const VP_STATE_WORDS: u64 = 16;

/// Cycles for a VP-to-VP switch: no paging, just a core-resident state
/// exchange. Compare [`mx_hw::CostModel::process_switch`] (120) for the
/// old single-level switch that may also page.
pub const VP_SWITCH_CYCLES: u64 = 35;

#[derive(Debug, Clone)]
struct Vp {
    binding: VpBinding,
    state: VpState,
}

/// The fixed population of virtual processors plus the eventcount table.
#[derive(Debug)]
pub struct VirtualProcessorManager {
    vps: Vec<Vp>,
    events: EventTable,
    state_seg: CoreSegId,
    run_queue: VecDeque<VpId>,
    running: Option<VpId>,
    /// Decides the manager's two choice points: which runnable VP the
    /// dispatcher picks, and the order `advance` drains met waiters.
    /// [`FifoPolicy`] by default — the historical hard-coded order.
    policy: Box<dyn SchedulePolicy>,
    /// VP switches performed (experiment counter).
    pub switches: u64,
    /// When each VP joined the run queue, stamped in VP switches — the
    /// queueing-delay probe (accounting only; never charged).
    enqueue_stamp: Vec<u64>,
    /// Total run-queue wait accumulated at dispatch, in VP-switch
    /// intervals.
    queue_wait_switches: u64,
    /// Dispatches the wait total averages over.
    queue_waits: u64,
}

impl VirtualProcessorManager {
    /// Creates `count` virtual processors whose states live in a core
    /// segment allocated from `csm`.
    ///
    /// # Errors
    ///
    /// [`KernelError::TableFull`] if the core-segment region cannot hold
    /// the state segment.
    pub fn new(csm: &mut CoreSegmentManager, count: u32) -> Result<Self, KernelError> {
        let words = u64::from(count) * VP_STATE_WORDS;
        let frames = words.div_ceil(mx_hw::PAGE_WORDS as u64) as u32;
        let state_seg = csm.allocate(frames.max(1))?;
        Ok(Self {
            vps: (0..count)
                .map(|_| Vp {
                    binding: VpBinding::User,
                    state: VpState::Ready,
                })
                .collect(),
            events: EventTable::new(),
            state_seg,
            run_queue: (0..count).map(VpId).collect(),
            running: None,
            policy: Box::new(FifoPolicy),
            switches: 0,
            enqueue_stamp: vec![0; count as usize],
            queue_wait_switches: 0,
            queue_waits: 0,
        })
    }

    /// Installs a schedule policy for the manager's choice points.
    ///
    /// The default [`FifoPolicy`] reproduces the historical dispatch and
    /// wakeup-drain order byte-for-byte; exploration harnesses install
    /// seeded or enumerating policies here.
    pub fn set_policy(&mut self, policy: Box<dyn SchedulePolicy>) {
        self.policy = policy;
    }

    /// Permanently binds a VP to a kernel module.
    ///
    /// # Panics
    ///
    /// Panics on a foreign VP id.
    pub fn bind_kernel(&mut self, vp: VpId, module: &'static str) {
        self.vps[vp.0 as usize].binding = VpBinding::Kernel(module);
    }

    /// The binding of a VP.
    ///
    /// # Panics
    ///
    /// Panics on a foreign VP id.
    pub fn binding(&self, vp: VpId) -> VpBinding {
        self.vps[vp.0 as usize].binding
    }

    /// Total virtual processors (fixed).
    pub fn count(&self) -> usize {
        self.vps.len()
    }

    /// VPs available for user-process multiplexing.
    pub fn user_vps(&self) -> Vec<VpId> {
        (0..self.vps.len() as u32)
            .map(VpId)
            .filter(|v| self.vps[v.0 as usize].binding == VpBinding::User)
            .collect()
    }

    /// Creates an eventcount.
    pub fn create_eventcount(&mut self) -> EcId {
        self.events.create()
    }

    /// Creates a sequencer.
    pub fn create_sequencer(&mut self) -> EcId {
        self.events.create_sequencer()
    }

    /// Reads an eventcount.
    pub fn read_eventcount(&self, ec: EcId) -> u64 {
        self.events.read(ec)
    }

    /// Takes a ticket.
    pub fn ticket(&mut self, seq: EcId) -> u64 {
        self.events.ticket(seq)
    }

    /// The wait primitive. Returns `true` if the condition already holds
    /// (the wakeup-waiting case: the VP must not block); otherwise parks
    /// the VP until an `advance` crosses the threshold.
    pub fn await_value(&mut self, vp: VpId, ec: EcId, threshold: u64) -> bool {
        if self.events.await_value(ec, threshold, WaiterId(vp.0)) {
            return true;
        }
        self.vps[vp.0 as usize].state = VpState::Waiting;
        self.run_queue.retain(|v| *v != vp);
        if self.running == Some(vp) {
            self.running = None;
        }
        false
    }

    /// The notify primitive: advances the eventcount and makes every VP
    /// whose threshold is now met runnable. The caller learns only how
    /// many woke — not who they are beyond the opaque scheduling effect.
    ///
    /// A VP parked at several thresholds (or on several eventcounts)
    /// becomes runnable exactly once: wakeups past the first find it
    /// already `Ready` and must not enqueue it again, or the dispatcher
    /// would run it once per registration.
    pub fn advance(&mut self, ec: EcId) -> usize {
        let woken = self.events.advance_with(ec, &mut *self.policy);
        let n = woken.len();
        for w in woken {
            self.make_runnable(VpId(w.0));
        }
        n
    }

    fn make_runnable(&mut self, vp: VpId) {
        if self.vps[vp.0 as usize].state == VpState::Waiting {
            self.vps[vp.0 as usize].state = VpState::Ready;
            self.enqueue_stamp[vp.0 as usize] = self.switches;
            self.run_queue.push_back(vp);
        }
    }

    /// A deliberately broken notify that releases every met waiter from
    /// the eventcount but forgets to make the last one runnable — the
    /// classic lost wakeup. Exists only so the `mx-explore` oracles can
    /// prove they catch and replay the violation; never call it from
    /// kernel code.
    #[doc(hidden)]
    pub fn advance_lossy_for_test(&mut self, ec: EcId) -> usize {
        let mut woken = self.events.advance_with(ec, &mut *self.policy);
        woken.pop(); // the bug: this waiter is now stranded forever
        let n = woken.len();
        for w in woken {
            self.make_runnable(VpId(w.0));
        }
        n
    }

    /// Dispatches the next runnable VP, exchanging core-resident state
    /// (cheap — no paging possible) and charging [`VP_SWITCH_CYCLES`].
    ///
    /// Which runnable VP runs is the manager's other choice point: the
    /// installed policy picks from the queue (FIFO round-robin under the
    /// default policy).
    pub fn dispatch(
        &mut self,
        csm: &CoreSegmentManager,
        mem: &mut MainMemory,
        clock: &mut Clock,
    ) -> Option<VpId> {
        if let Some(prev) = self.running.take() {
            if self.vps[prev.0 as usize].state == VpState::Ready {
                self.enqueue_stamp[prev.0 as usize] = self.switches;
                self.run_queue.push_back(prev);
            }
        }
        let next = if self.run_queue.len() > 1 {
            let ids: Vec<u32> = self.run_queue.iter().map(|v| v.0).collect();
            let idx = self
                .policy
                .choose(ChoicePoint::Dispatch, &ids)
                .min(self.run_queue.len() - 1);
            self.run_queue.remove(idx)?
        } else {
            self.run_queue.pop_front()?
        };
        self.queue_wait_switches += self.switches - self.enqueue_stamp[next.0 as usize];
        self.queue_waits += 1;
        // Exchange the state words in the core segment: always resident.
        let base = u64::from(next.0) * VP_STATE_WORDS;
        let tick = csm.read(mem, self.state_seg, base).raw();
        csm.write(mem, self.state_seg, base, Word::new(tick + 1));
        clock.charge(VP_SWITCH_CYCLES);
        self.switches += 1;
        self.running = Some(next);
        Some(next)
    }

    /// The VP currently holding a (simulated) real processor.
    pub fn running(&self) -> Option<VpId> {
        self.running
    }

    /// Number of runnable VPs.
    pub fn runnable(&self) -> usize {
        self.run_queue.len() + usize::from(self.running.is_some())
    }

    /// Lost-wakeup oracle: waiters whose threshold is already met but
    /// who are still parked. Always empty for a correct table — every
    /// `advance` must reach every eligible waiter.
    pub fn lost_wakeups(&self) -> Vec<(EcId, WaiterId, u64)> {
        self.events.eligible_parked()
    }

    /// Stranded-VP oracle: VPs in the `Waiting` state that are not
    /// registered on any eventcount. Such a VP can never be woken again;
    /// a correct manager never produces one.
    pub fn stranded(&self) -> Vec<VpId> {
        (0..self.vps.len() as u32)
            .map(VpId)
            .filter(|vp| {
                self.vps[vp.0 as usize].state == VpState::Waiting
                    && !self.events.is_registered(WaiterId(vp.0))
            })
            .collect()
    }

    /// Scheduling state of a VP (oracle/diagnostic accessor).
    ///
    /// # Panics
    ///
    /// Panics on a foreign VP id.
    pub fn state(&self, vp: VpId) -> VpState {
        self.vps[vp.0 as usize].state
    }

    /// How many times `vp` currently appears in the run queue — the
    /// duplicate-dispatch oracle. At most 1 for a correct manager.
    pub fn queued_count(&self, vp: VpId) -> usize {
        self.run_queue.iter().filter(|v| **v == vp).count()
    }

    /// Run-queue wait accumulated at dispatch: total VP-switch intervals
    /// VPs spent runnable-but-queued, and the dispatches that total
    /// averages over. Accounting only — nothing here is charged to the
    /// clock.
    pub fn queue_delay(&self) -> (u64, u64) {
        (self.queue_wait_switches, self.queue_waits)
    }

    /// Restarts the queue-delay observation at the current moment.
    ///
    /// An epoch boundary (a recovery boot, a measurement window) wants
    /// the delay accumulated *since* the boundary, not since machine
    /// start. Besides zeroing the accumulators, every enqueue stamp is
    /// moved up to the current switch count — a VP that has been sitting
    /// in the run queue across the boundary must not charge its
    /// pre-boundary wait to the new epoch.
    pub fn reset_queue_delay(&mut self) {
        self.queue_wait_switches = 0;
        self.queue_waits = 0;
        let now = self.switches;
        for stamp in &mut self.enqueue_stamp {
            *stamp = now;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(
        count: u32,
    ) -> (
        CoreSegmentManager,
        MainMemory,
        Clock,
        VirtualProcessorManager,
    ) {
        let mut csm = CoreSegmentManager::new(0, 4);
        let mem = MainMemory::new(8);
        let vpm = VirtualProcessorManager::new(&mut csm, count).unwrap();
        (csm, mem, Clock::new(), vpm)
    }

    #[test]
    fn fixed_population_with_kernel_bindings() {
        let (_csm, _mem, _clk, mut vpm) = setup(6);
        vpm.bind_kernel(VpId(0), "page-purifier");
        vpm.bind_kernel(VpId(1), "core-manager");
        vpm.bind_kernel(VpId(2), "user-scheduler");
        assert_eq!(vpm.count(), 6);
        assert_eq!(vpm.user_vps(), vec![VpId(3), VpId(4), VpId(5)]);
        assert_eq!(vpm.binding(VpId(0)), VpBinding::Kernel("page-purifier"));
    }

    #[test]
    fn await_parks_and_advance_wakes() {
        let (csm, mut mem, mut clk, mut vpm) = setup(2);
        let ec = vpm.create_eventcount();
        assert!(!vpm.await_value(VpId(1), ec, 1), "not yet satisfied: parks");
        assert_eq!(vpm.runnable(), 1);
        assert_eq!(vpm.advance(ec), 1);
        assert_eq!(vpm.runnable(), 2);
        // Both dispatchable again.
        assert!(vpm.dispatch(&csm, &mut mem, &mut clk).is_some());
        assert!(vpm.dispatch(&csm, &mut mem, &mut clk).is_some());
    }

    #[test]
    fn wakeup_waiting_returns_immediately() {
        let (_csm, _mem, _clk, mut vpm) = setup(1);
        let ec = vpm.create_eventcount();
        vpm.advance(ec);
        assert!(
            vpm.await_value(VpId(0), ec, 1),
            "already satisfied: no block"
        );
        assert_eq!(vpm.runnable(), 1);
    }

    #[test]
    fn dispatch_is_cheap_and_round_robin() {
        let (csm, mut mem, mut clk, mut vpm) = setup(3);
        let order: Vec<u32> = (0..6)
            .map(|_| vpm.dispatch(&csm, &mut mem, &mut clk).unwrap().0)
            .collect();
        assert_eq!(order, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(
            clk.now(),
            6 * VP_SWITCH_CYCLES,
            "only the cheap switch charge"
        );
        assert_eq!(vpm.switches, 6);
    }

    #[test]
    fn queue_delay_accumulates_only_while_queued() {
        let (csm, mut mem, mut clk, mut vpm) = setup(2);
        // Initial population was stamped at switch 0. First dispatch
        // happens at switch 0 too: zero wait. The second VP has then
        // waited one switch interval.
        vpm.dispatch(&csm, &mut mem, &mut clk).unwrap();
        vpm.dispatch(&csm, &mut mem, &mut clk).unwrap();
        let (wait, samples) = vpm.queue_delay();
        assert_eq!(samples, 2);
        assert_eq!(wait, 1, "VP 1 sat out exactly one switch");
        // A lone runnable VP re-dispatched back-to-back never waits.
        let ec = vpm.create_eventcount();
        vpm.await_value(VpId(0), ec, 1);
        let before = vpm.queue_delay().0;
        vpm.dispatch(&csm, &mut mem, &mut clk).unwrap();
        vpm.dispatch(&csm, &mut mem, &mut clk).unwrap();
        assert_eq!(
            vpm.queue_delay().0,
            before,
            "sole runnable VP accrues no queueing delay"
        );
        // Accounting only: the clock still sees nothing but switches.
        assert_eq!(clk.now(), 4 * VP_SWITCH_CYCLES);
    }

    #[test]
    fn queue_delay_reset_forgives_pre_boundary_waits() {
        let (csm, mut mem, mut clk, mut vpm) = setup(3);
        // Accumulate some real waiting.
        for _ in 0..5 {
            vpm.dispatch(&csm, &mut mem, &mut clk).unwrap();
        }
        let (wait, samples) = vpm.queue_delay();
        assert!(wait > 0 && samples == 5, "pre-boundary delay accrued");
        vpm.reset_queue_delay();
        assert_eq!(vpm.queue_delay(), (0, 0), "epoch starts clean");
        // The queued VPs were re-stamped at the boundary: the next
        // dispatch must not charge their pre-boundary queue time.
        vpm.dispatch(&csm, &mut mem, &mut clk).unwrap();
        assert_eq!(
            vpm.queue_delay(),
            (0, 1),
            "first post-reset dispatch waited zero switches"
        );
        // From here the new epoch accumulates normally.
        vpm.dispatch(&csm, &mut mem, &mut clk).unwrap();
        let (wait2, samples2) = vpm.queue_delay();
        assert_eq!(samples2, 2);
        assert!(wait2 > 0, "post-boundary waits still count");
    }

    #[test]
    fn waiting_vp_is_never_dispatched() {
        let (csm, mut mem, mut clk, mut vpm) = setup(2);
        let ec = vpm.create_eventcount();
        vpm.await_value(VpId(0), ec, 5);
        for _ in 0..4 {
            assert_eq!(vpm.dispatch(&csm, &mut mem, &mut clk), Some(VpId(1)));
        }
    }

    #[test]
    fn double_registration_is_enqueued_exactly_once() {
        // A VP parked on two eventcounts (an OR-wait) must become
        // runnable exactly once when both advances arrive. Before the
        // wakeup guard, `advance` enqueued it once per registration and
        // the dispatcher ran it twice — the duplicate-dispatch bug the
        // schedule explorer's adversarial schedules flush out.
        let (csm, mut mem, mut clk, mut vpm) = setup(2);
        let a = vpm.create_eventcount();
        let b = vpm.create_eventcount();
        vpm.await_value(VpId(1), a, 1);
        vpm.await_value(VpId(1), b, 1);
        assert_eq!(vpm.advance(a), 1);
        assert_eq!(vpm.advance(b), 1, "released from b's table too");
        assert_eq!(vpm.queued_count(VpId(1)), 1, "but enqueued only once");
        assert_eq!(vpm.dispatch(&csm, &mut mem, &mut clk), Some(VpId(0)));
        assert_eq!(vpm.dispatch(&csm, &mut mem, &mut clk), Some(VpId(1)));
        assert_eq!(vpm.dispatch(&csm, &mut mem, &mut clk), Some(VpId(0)));
    }

    #[test]
    fn two_thresholds_on_one_eventcount_wake_once() {
        let (_csm, _mem, _clk, mut vpm) = setup(2);
        let ec = vpm.create_eventcount();
        vpm.await_value(VpId(1), ec, 1);
        vpm.await_value(VpId(1), ec, 2);
        vpm.advance(ec);
        vpm.advance(ec);
        assert_eq!(vpm.queued_count(VpId(1)), 1);
        assert!(vpm.lost_wakeups().is_empty());
        assert!(vpm.stranded().is_empty());
    }

    #[test]
    fn policy_reorders_dispatch_without_changing_cost() {
        #[derive(Debug)]
        struct Last;
        impl SchedulePolicy for Last {
            fn choose(&mut self, _: ChoicePoint, c: &[u32]) -> usize {
                c.len() - 1
            }
        }
        let (csm, mut mem, mut clk, mut vpm) = setup(3);
        vpm.set_policy(Box::new(Last));
        let order: Vec<u32> = (0..3)
            .map(|_| vpm.dispatch(&csm, &mut mem, &mut clk).unwrap().0)
            .collect();
        // The previous VP is requeued at the back before the choice, so
        // a pick-last policy keeps re-electing it: a starvation schedule
        // FIFO round-robin can never produce.
        assert_eq!(order, vec![2, 2, 2], "the policy owns the order");
        assert_eq!(clk.now(), 3 * VP_SWITCH_CYCLES, "but never the cost");
    }

    #[test]
    fn lossy_advance_strands_a_waiter_and_the_oracle_sees_it() {
        let (_csm, _mem, _clk, mut vpm) = setup(3);
        let ec = vpm.create_eventcount();
        vpm.await_value(VpId(1), ec, 1);
        vpm.await_value(VpId(2), ec, 1);
        vpm.advance_lossy_for_test(ec);
        assert!(vpm.lost_wakeups().is_empty(), "drained from the table...");
        assert_eq!(
            vpm.stranded().len(),
            1,
            "...but one VP is waiting with no registration: lost forever"
        );
    }

    #[test]
    fn sequencer_tickets_via_vpm() {
        let (_csm, _mem, _clk, mut vpm) = setup(1);
        let seq = vpm.create_sequencer();
        assert_eq!(vpm.ticket(seq), 0);
        assert_eq!(vpm.ticket(seq), 1);
    }
}
