//! The Virtual Processor Manager — level one of the two-level process
//! implementation.
//!
//! "The bottom part implements a fixed number of virtual processors whose
//! states are always in primary memory. Thus, this part does not need to
//! use the virtual memory. … The remaining virtual processors are
//! permanently bound to the interpretation of various kernel modules,
//! including the virtual memory modules and the user process scheduler."
//!
//! Because the number is fixed, all of Brinch Hansen's simplifications
//! apply; and because VP states live in a core segment, a VP switch never
//! pages — it is the cheap switch of the two-level design. Coordination
//! uses the Reed–Kanodia eventcount primitives ([`mx_sync::sim`]), whose
//! `advance` needs no knowledge of the waiting processes' identities.

use crate::core_segment::{CoreSegId, CoreSegmentManager};
use crate::error::KernelError;
use mx_hw::{Clock, MainMemory, Word};
use mx_sync::sim::{EcId, EventTable, WaiterId};
use std::collections::VecDeque;

/// Identifies one virtual processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VpId(pub u32);

/// What a virtual processor is permanently for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VpBinding {
    /// Permanently bound to a kernel module (named for diagnostics).
    Kernel(&'static str),
    /// Available for multiplexing among user processes.
    User,
}

/// Scheduling state of a VP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VpState {
    /// Runnable / running.
    Ready,
    /// Parked on an eventcount.
    Waiting,
}

/// Words of core-segment state per VP (registers, DBR image, flags).
const VP_STATE_WORDS: u64 = 16;

/// Cycles for a VP-to-VP switch: no paging, just a core-resident state
/// exchange. Compare [`mx_hw::CostModel::process_switch`] (120) for the
/// old single-level switch that may also page.
pub const VP_SWITCH_CYCLES: u64 = 35;

#[derive(Debug, Clone)]
struct Vp {
    binding: VpBinding,
    state: VpState,
}

/// The fixed population of virtual processors plus the eventcount table.
#[derive(Debug)]
pub struct VirtualProcessorManager {
    vps: Vec<Vp>,
    events: EventTable,
    state_seg: CoreSegId,
    run_queue: VecDeque<VpId>,
    running: Option<VpId>,
    /// VP switches performed (experiment counter).
    pub switches: u64,
}

impl VirtualProcessorManager {
    /// Creates `count` virtual processors whose states live in a core
    /// segment allocated from `csm`.
    ///
    /// # Errors
    ///
    /// [`KernelError::TableFull`] if the core-segment region cannot hold
    /// the state segment.
    pub fn new(csm: &mut CoreSegmentManager, count: u32) -> Result<Self, KernelError> {
        let words = u64::from(count) * VP_STATE_WORDS;
        let frames = words.div_ceil(mx_hw::PAGE_WORDS as u64) as u32;
        let state_seg = csm.allocate(frames.max(1))?;
        Ok(Self {
            vps: (0..count)
                .map(|_| Vp {
                    binding: VpBinding::User,
                    state: VpState::Ready,
                })
                .collect(),
            events: EventTable::new(),
            state_seg,
            run_queue: (0..count).map(VpId).collect(),
            running: None,
            switches: 0,
        })
    }

    /// Permanently binds a VP to a kernel module.
    ///
    /// # Panics
    ///
    /// Panics on a foreign VP id.
    pub fn bind_kernel(&mut self, vp: VpId, module: &'static str) {
        self.vps[vp.0 as usize].binding = VpBinding::Kernel(module);
    }

    /// The binding of a VP.
    ///
    /// # Panics
    ///
    /// Panics on a foreign VP id.
    pub fn binding(&self, vp: VpId) -> VpBinding {
        self.vps[vp.0 as usize].binding
    }

    /// Total virtual processors (fixed).
    pub fn count(&self) -> usize {
        self.vps.len()
    }

    /// VPs available for user-process multiplexing.
    pub fn user_vps(&self) -> Vec<VpId> {
        (0..self.vps.len() as u32)
            .map(VpId)
            .filter(|v| self.vps[v.0 as usize].binding == VpBinding::User)
            .collect()
    }

    /// Creates an eventcount.
    pub fn create_eventcount(&mut self) -> EcId {
        self.events.create()
    }

    /// Creates a sequencer.
    pub fn create_sequencer(&mut self) -> EcId {
        self.events.create_sequencer()
    }

    /// Reads an eventcount.
    pub fn read_eventcount(&self, ec: EcId) -> u64 {
        self.events.read(ec)
    }

    /// Takes a ticket.
    pub fn ticket(&mut self, seq: EcId) -> u64 {
        self.events.ticket(seq)
    }

    /// The wait primitive. Returns `true` if the condition already holds
    /// (the wakeup-waiting case: the VP must not block); otherwise parks
    /// the VP until an `advance` crosses the threshold.
    pub fn await_value(&mut self, vp: VpId, ec: EcId, threshold: u64) -> bool {
        if self.events.await_value(ec, threshold, WaiterId(vp.0)) {
            return true;
        }
        self.vps[vp.0 as usize].state = VpState::Waiting;
        self.run_queue.retain(|v| *v != vp);
        if self.running == Some(vp) {
            self.running = None;
        }
        false
    }

    /// The notify primitive: advances the eventcount and makes every VP
    /// whose threshold is now met runnable. The caller learns only how
    /// many woke — not who they are beyond the opaque scheduling effect.
    pub fn advance(&mut self, ec: EcId) -> usize {
        let woken = self.events.advance(ec);
        let n = woken.len();
        for w in woken {
            let vp = VpId(w.0);
            self.vps[vp.0 as usize].state = VpState::Ready;
            self.run_queue.push_back(vp);
        }
        n
    }

    /// Dispatches the next runnable VP, exchanging core-resident state
    /// (cheap — no paging possible) and charging [`VP_SWITCH_CYCLES`].
    pub fn dispatch(
        &mut self,
        csm: &CoreSegmentManager,
        mem: &mut MainMemory,
        clock: &mut Clock,
    ) -> Option<VpId> {
        if let Some(prev) = self.running.take() {
            if self.vps[prev.0 as usize].state == VpState::Ready {
                self.run_queue.push_back(prev);
            }
        }
        let next = self.run_queue.pop_front()?;
        // Exchange the state words in the core segment: always resident.
        let base = u64::from(next.0) * VP_STATE_WORDS;
        let tick = csm.read(mem, self.state_seg, base).raw();
        csm.write(mem, self.state_seg, base, Word::new(tick + 1));
        clock.charge(VP_SWITCH_CYCLES);
        self.switches += 1;
        self.running = Some(next);
        Some(next)
    }

    /// The VP currently holding a (simulated) real processor.
    pub fn running(&self) -> Option<VpId> {
        self.running
    }

    /// Number of runnable VPs.
    pub fn runnable(&self) -> usize {
        self.run_queue.len() + usize::from(self.running.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(
        count: u32,
    ) -> (
        CoreSegmentManager,
        MainMemory,
        Clock,
        VirtualProcessorManager,
    ) {
        let mut csm = CoreSegmentManager::new(0, 4);
        let mem = MainMemory::new(8);
        let vpm = VirtualProcessorManager::new(&mut csm, count).unwrap();
        (csm, mem, Clock::new(), vpm)
    }

    #[test]
    fn fixed_population_with_kernel_bindings() {
        let (_csm, _mem, _clk, mut vpm) = setup(6);
        vpm.bind_kernel(VpId(0), "page-purifier");
        vpm.bind_kernel(VpId(1), "core-manager");
        vpm.bind_kernel(VpId(2), "user-scheduler");
        assert_eq!(vpm.count(), 6);
        assert_eq!(vpm.user_vps(), vec![VpId(3), VpId(4), VpId(5)]);
        assert_eq!(vpm.binding(VpId(0)), VpBinding::Kernel("page-purifier"));
    }

    #[test]
    fn await_parks_and_advance_wakes() {
        let (csm, mut mem, mut clk, mut vpm) = setup(2);
        let ec = vpm.create_eventcount();
        assert!(!vpm.await_value(VpId(1), ec, 1), "not yet satisfied: parks");
        assert_eq!(vpm.runnable(), 1);
        assert_eq!(vpm.advance(ec), 1);
        assert_eq!(vpm.runnable(), 2);
        // Both dispatchable again.
        assert!(vpm.dispatch(&csm, &mut mem, &mut clk).is_some());
        assert!(vpm.dispatch(&csm, &mut mem, &mut clk).is_some());
    }

    #[test]
    fn wakeup_waiting_returns_immediately() {
        let (_csm, _mem, _clk, mut vpm) = setup(1);
        let ec = vpm.create_eventcount();
        vpm.advance(ec);
        assert!(
            vpm.await_value(VpId(0), ec, 1),
            "already satisfied: no block"
        );
        assert_eq!(vpm.runnable(), 1);
    }

    #[test]
    fn dispatch_is_cheap_and_round_robin() {
        let (csm, mut mem, mut clk, mut vpm) = setup(3);
        let order: Vec<u32> = (0..6)
            .map(|_| vpm.dispatch(&csm, &mut mem, &mut clk).unwrap().0)
            .collect();
        assert_eq!(order, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(
            clk.now(),
            6 * VP_SWITCH_CYCLES,
            "only the cheap switch charge"
        );
        assert_eq!(vpm.switches, 6);
    }

    #[test]
    fn waiting_vp_is_never_dispatched() {
        let (csm, mut mem, mut clk, mut vpm) = setup(2);
        let ec = vpm.create_eventcount();
        vpm.await_value(VpId(0), ec, 5);
        for _ in 0..4 {
            assert_eq!(vpm.dispatch(&csm, &mut mem, &mut clk), Some(VpId(1)));
        }
    }

    #[test]
    fn sequencer_tickets_via_vpm() {
        let (_csm, _mem, _clk, mut vpm) = setup(1);
        let seq = vpm.create_sequencer();
        assert_eq!(vpm.ticket(seq), 0);
        assert_eq!(vpm.ticket(seq), 1);
    }
}
