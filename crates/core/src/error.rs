//! Kernel errors and the upward-signal mechanism.
//!
//! The paper's second loop-breaking device is "software that transfers
//! control and arguments to a higher level module without leaving behind
//! any procedure activation records or other unfinished business in
//! expectation of a subsequent return of control". In this implementation
//! that is [`Signal`]: a value that propagates *out* of the dependency
//! structure through ordinary `Result` returns — each frame it unwinds
//! through really does finish (no activation record left waiting) — until
//! the gatekeeper trampoline catches it and invokes the higher-level
//! module (the directory manager) with the saved machine state.

use crate::types::{DiskHome, SegUid};
use mx_hw::{DiskError, Fault};

/// An upward signal: a condition discovered low in the dependency
/// structure that a higher-level module must finish handling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Signal {
    /// A full pack forced a whole-segment relocation; the directory
    /// manager must record the new home in the directory entry and then
    /// the original reference re-executes. The quota charge and page
    /// creation the reference needed are already done ("control finally
    /// returns … with both the quota and the unsuspected full disk pack
    /// exceptions taken care of").
    SegmentMoved {
        /// The segment that moved.
        uid: SegUid,
        /// Its new pack and table-of-contents index.
        new_home: DiskHome,
    },
}

/// Everything the kernel can report as going wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// The uniform no-information answer.
    NoAccess,
    /// The honest "no such name" answer — issued only where the caller
    /// could have discovered the fact anyway (searching a directory it
    /// can read).
    NoEntry,
    /// Growing the segment would exceed its statically bound quota cell.
    QuotaExceeded {
        /// The controlling cell's limit.
        limit: u32,
        /// Pages currently charged.
        used: u32,
    },
    /// No pack in the system can hold the segment.
    AllPacksFull,
    /// A fixed table (AST, page-table pool, cell table, VP table) is out
    /// of slots.
    TableFull(&'static str),
    /// The named object must be active for this operation.
    NotActive,
    /// A name already exists in the target directory.
    NameDuplicated,
    /// The operation requires a directory.
    NotADirectory,
    /// Quota (un)designation rules violated: the directory has children
    /// or is (not) already a quota directory.
    QuotaDesignation(&'static str),
    /// The referenced process does not exist.
    NoSuchProcess,
    /// The per-process KST is full.
    KstFull,
    /// Offset beyond the maximum segment size.
    SegmentTooBig,
    /// Mandatory access control (AIM) forbade the flow.
    AimViolation,
    /// Authentication failed at the login residue gate.
    BadCredentials,
    /// The demultiplexer has no such stream or channel.
    NoSuchChannel,
    /// A wire frame exceeds the demultiplexer's buffer bound.
    FrameTooBig {
        /// Bytes in the offending frame.
        len: usize,
        /// The largest frame the stream accepts.
        max: usize,
    },
    /// An upward signal is propagating; only the gatekeeper trampoline
    /// should observe and consume this variant.
    Upward(Signal),
    /// A hardware fault no handler claimed.
    UnhandledFault(Fault),
    /// A disk operation failed past the kernel's retry budget (transient
    /// read exhausted), or unrecoverably (pack offline, power failed) —
    /// the typed upward surface of a hardware fault, never a panic.
    Disk(DiskError),
    /// The referenced directory is quarantined by the online salvager
    /// (not yet proven clean after a crash). Transient: retry after the
    /// salvager releases the directory.
    SalvageBusy,
    /// The salvager itself hit an internal inconsistency it cannot
    /// express as a repairable [`crate::salvager::Problem`].
    Salvage(&'static str),
}

impl core::fmt::Display for KernelError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            KernelError::NoAccess => write!(f, "no access"),
            KernelError::NoEntry => write!(f, "no such entry"),
            KernelError::QuotaExceeded { limit, used } => {
                write!(f, "quota exceeded ({used}/{limit} pages)")
            }
            KernelError::AllPacksFull => write!(f, "all packs full"),
            KernelError::TableFull(which) => write!(f, "{which} table full"),
            KernelError::NotActive => write!(f, "segment not active"),
            KernelError::NameDuplicated => write!(f, "name duplicated"),
            KernelError::NotADirectory => write!(f, "not a directory"),
            KernelError::QuotaDesignation(why) => write!(f, "quota designation: {why}"),
            KernelError::NoSuchProcess => write!(f, "no such process"),
            KernelError::KstFull => write!(f, "known segment table full"),
            KernelError::SegmentTooBig => write!(f, "segment too big"),
            KernelError::AimViolation => write!(f, "AIM flow violation"),
            KernelError::BadCredentials => write!(f, "bad credentials"),
            KernelError::NoSuchChannel => write!(f, "no such stream or channel"),
            KernelError::FrameTooBig { len, max } => {
                write!(f, "frame too big ({len} bytes, max {max})")
            }
            KernelError::Upward(s) => write!(f, "unconsumed upward signal {s:?}"),
            KernelError::UnhandledFault(fault) => write!(f, "unhandled fault: {fault}"),
            KernelError::Disk(e) => write!(f, "disk failure: {e}"),
            KernelError::SalvageBusy => write!(f, "directory quarantined by online salvage"),
            KernelError::Salvage(why) => write!(f, "salvage error: {why}"),
        }
    }
}

impl std::error::Error for KernelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        assert_eq!(format!("{}", KernelError::NoAccess), "no access");
        assert_eq!(
            format!("{}", KernelError::QuotaExceeded { limit: 4, used: 4 }),
            "quota exceeded (4/4 pages)"
        );
        assert_eq!(
            format!("{}", KernelError::SalvageBusy),
            "directory quarantined by online salvage"
        );
        assert_eq!(
            format!("{}", KernelError::Salvage("frontier empty")),
            "salvage error: frontier empty"
        );
        assert!(format!(
            "{}",
            KernelError::Upward(Signal::SegmentMoved {
                uid: SegUid(1),
                new_home: DiskHome {
                    pack: mx_hw::PackId(1),
                    toc: mx_hw::TocIndex(0)
                },
            })
        )
        .contains("SegmentMoved"));
    }
}
