//! Common identifiers, access control, and the supervisor error type.

use mx_hw::{DiskError, Fault, PackId, TocIndex};

/// A segment's system-wide unique identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SegUid(pub u64);

/// A user known to the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UserId(pub u32);

/// A process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcessId(pub u32);

/// A discretionary access right on a file or directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessRight {
    /// Read (for a directory: list / search).
    Read,
    /// Write (for a directory: add and remove entries).
    Write,
    /// Execute.
    Execute,
}

/// An access control list: `(user, rights)` terms. "Every file and
/// directory has its own access control list … access to a file is
/// determined entirely by the access control list for that file."
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Acl {
    terms: Vec<(UserId, [bool; 3])>,
}

impl Acl {
    /// An empty ACL (nobody has access).
    pub fn new() -> Self {
        Self::default()
    }

    /// An ACL granting one user full access.
    pub fn owner(user: UserId) -> Self {
        let mut acl = Self::new();
        acl.grant(
            user,
            &[AccessRight::Read, AccessRight::Write, AccessRight::Execute],
        );
        acl
    }

    /// Grants rights to a user (adds to any existing term).
    pub fn grant(&mut self, user: UserId, rights: &[AccessRight]) {
        let idx = rights_index_set(rights);
        if let Some(term) = self.terms.iter_mut().find(|(u, _)| *u == user) {
            for (have, add) in term.1.iter_mut().zip(idx) {
                *have |= add;
            }
        } else {
            self.terms.push((user, idx));
        }
    }

    /// Revokes all rights from a user.
    pub fn revoke(&mut self, user: UserId) {
        self.terms.retain(|(u, _)| *u != user);
    }

    /// True if the user holds the right.
    pub fn permits(&self, user: UserId, right: AccessRight) -> bool {
        self.terms
            .iter()
            .find(|(u, _)| *u == user)
            .map(|(_, r)| r[right_slot(right)])
            .unwrap_or(false)
    }

    /// Packs the ACL into two 36-bit words for the directory-entry
    /// record: word 0 holds up to four user ids (9 bits each), word 1
    /// the corresponding right triples (3 bits each). A real system
    /// stores ACLs of arbitrary length; four terms suffice for the
    /// experiments and keep the record fixed-size.
    pub fn pack(&self) -> (u64, u64) {
        let mut users = 0u64;
        let mut rights = 0u64;
        for (i, (u, r)) in self.terms.iter().take(4).enumerate() {
            users |= (u.0 as u64 & 0xFF) << (i * 9);
            let bits = (r[0] as u64) | (r[1] as u64) << 1 | (r[2] as u64) << 2 | 0b1000;
            rights |= bits << (i * 4);
        }
        (users & ((1 << 36) - 1), rights & ((1 << 36) - 1))
    }

    /// Unpacks an ACL packed by [`Acl::pack`].
    pub fn unpack(users: u64, rights: u64) -> Self {
        let mut acl = Self::new();
        for i in 0..4 {
            let bits = (rights >> (i * 4)) & 0xF;
            if bits & 0b1000 == 0 {
                continue;
            }
            let user = UserId(((users >> (i * 9)) & 0xFF) as u32);
            let mut list = Vec::new();
            if bits & 0b001 != 0 {
                list.push(AccessRight::Read);
            }
            if bits & 0b010 != 0 {
                list.push(AccessRight::Write);
            }
            if bits & 0b100 != 0 {
                list.push(AccessRight::Execute);
            }
            acl.grant(user, &list);
        }
        acl
    }
}

fn right_slot(r: AccessRight) -> usize {
    match r {
        AccessRight::Read => 0,
        AccessRight::Write => 1,
        AccessRight::Execute => 2,
    }
}

fn rights_index_set(rights: &[AccessRight]) -> [bool; 3] {
    let mut out = [false; 3];
    for r in rights {
        out[right_slot(*r)] = true;
    }
    out
}

/// Where a segment lives on disk: the naming a directory entry uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DiskHome {
    /// The containing pack.
    pub pack: PackId,
    /// Index into that pack's table of contents.
    pub toc: TocIndex,
}

/// Everything the old supervisor can report as going wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LegacyError {
    /// The uniform no-information answer: the object does not exist *or*
    /// the caller lacks access — deliberately indistinguishable.
    NoAccess,
    /// A pathname component was not a directory.
    NotADirectory,
    /// The referenced name already exists in the directory.
    NameDuplicated,
    /// Growing the segment would exceed the controlling quota.
    QuotaExceeded { limit: u32, used: u32 },
    /// No pack in the system has room for the segment.
    AllPacksFull,
    /// The active segment table is full.
    AstFull,
    /// The page-table pool is exhausted.
    PageTablePoolFull,
    /// No such process.
    NoSuchProcess,
    /// The per-process known-segment table is full.
    KstFull,
    /// A quota directory cannot be un-designated while charged, or
    /// designated twice.
    QuotaCellBusy,
    /// Authentication failed (answering service).
    BadPassword,
    /// The named user is unknown (answering service).
    UnknownUser,
    /// Mandatory access (AIM) forbade the flow.
    AimViolation,
    /// An unexpected hardware fault escaped the fault handlers.
    UnhandledFault(Fault),
    /// Segment offset beyond the maximum segment size.
    SegmentTooBig,
    /// An undefined symbol was presented to the linker.
    UndefinedSymbol,
    /// A network handler was given a channel it does not know.
    NoSuchChannel,
    /// A wire frame exceeds the handler's buffer bound.
    FrameTooBig {
        /// Bytes in the offending frame.
        len: usize,
        /// The largest frame the handler accepts.
        max: usize,
    },
    /// An operation needed the segment active but activation failed.
    NotActive,
    /// A disk operation failed past the supervisor's retry budget
    /// (transient read exhausted), or unrecoverably (pack offline, power
    /// failed) — surfaced typed, never a panic.
    Disk(DiskError),
    /// The referenced directory is quarantined by the online salvager
    /// (not yet proven clean after a crash). Transient: retry after the
    /// salvager releases the directory.
    SalvageBusy,
    /// The salvager itself hit an internal inconsistency it cannot
    /// repair in place.
    Salvage(&'static str),
}

impl core::fmt::Display for LegacyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LegacyError::NoAccess => write!(f, "no access"),
            LegacyError::NotADirectory => write!(f, "not a directory"),
            LegacyError::NameDuplicated => write!(f, "name duplicated"),
            LegacyError::QuotaExceeded { limit, used } => {
                write!(f, "quota exceeded ({used}/{limit} pages)")
            }
            LegacyError::AllPacksFull => write!(f, "all packs full"),
            LegacyError::AstFull => write!(f, "active segment table full"),
            LegacyError::PageTablePoolFull => write!(f, "page table pool full"),
            LegacyError::NoSuchProcess => write!(f, "no such process"),
            LegacyError::KstFull => write!(f, "known segment table full"),
            LegacyError::QuotaCellBusy => write!(f, "quota cell busy"),
            LegacyError::BadPassword => write!(f, "bad password"),
            LegacyError::UnknownUser => write!(f, "unknown user"),
            LegacyError::AimViolation => write!(f, "AIM flow violation"),
            LegacyError::UnhandledFault(fault) => write!(f, "unhandled fault: {fault}"),
            LegacyError::SegmentTooBig => write!(f, "segment too big"),
            LegacyError::UndefinedSymbol => write!(f, "undefined symbol"),
            LegacyError::NoSuchChannel => write!(f, "no such channel"),
            LegacyError::FrameTooBig { len, max } => {
                write!(f, "frame too big ({len} bytes, max {max})")
            }
            LegacyError::NotActive => write!(f, "segment not active"),
            LegacyError::Disk(e) => write!(f, "disk failure: {e}"),
            LegacyError::SalvageBusy => write!(f, "directory quarantined by online salvage"),
            LegacyError::Salvage(why) => write!(f, "salvage error: {why}"),
        }
    }
}

impl std::error::Error for LegacyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acl_grant_permit_revoke() {
        let mut acl = Acl::new();
        let u = UserId(3);
        assert!(!acl.permits(u, AccessRight::Read));
        acl.grant(u, &[AccessRight::Read, AccessRight::Execute]);
        assert!(acl.permits(u, AccessRight::Read));
        assert!(!acl.permits(u, AccessRight::Write));
        acl.grant(u, &[AccessRight::Write]);
        assert!(acl.permits(u, AccessRight::Write), "grants accumulate");
        acl.revoke(u);
        assert!(!acl.permits(u, AccessRight::Read));
    }

    #[test]
    fn owner_acl_has_full_access() {
        let acl = Acl::owner(UserId(1));
        for r in [AccessRight::Read, AccessRight::Write, AccessRight::Execute] {
            assert!(acl.permits(UserId(1), r));
            assert!(!acl.permits(UserId(2), r));
        }
    }

    #[test]
    fn acl_pack_unpack_round_trip() {
        let mut acl = Acl::new();
        acl.grant(UserId(0), &[AccessRight::Read]);
        acl.grant(UserId(7), &[AccessRight::Read, AccessRight::Write]);
        acl.grant(UserId(200), &[AccessRight::Execute]);
        let (u, r) = acl.pack();
        let back = Acl::unpack(u, r);
        assert!(back.permits(UserId(0), AccessRight::Read));
        assert!(!back.permits(UserId(0), AccessRight::Write));
        assert!(back.permits(UserId(7), AccessRight::Write));
        assert!(back.permits(UserId(200), AccessRight::Execute));
        assert!(!back.permits(UserId(5), AccessRight::Read));
    }

    #[test]
    fn user_zero_with_rights_survives_packing() {
        // UserId(0) must be distinguishable from an empty slot.
        let mut acl = Acl::new();
        acl.grant(UserId(0), &[AccessRight::Write]);
        let (u, r) = acl.pack();
        let back = Acl::unpack(u, r);
        assert!(back.permits(UserId(0), AccessRight::Write));
    }

    #[test]
    fn errors_display() {
        assert_eq!(format!("{}", LegacyError::NoAccess), "no access");
        assert_eq!(
            format!(
                "{}",
                LegacyError::QuotaExceeded {
                    limit: 10,
                    used: 10
                }
            ),
            "quota exceeded (10/10 pages)"
        );
    }
}
