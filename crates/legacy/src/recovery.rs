//! Crash recovery for the old supervisor: re-bootload from a surviving
//! disk image, plus the legacy salvager.
//!
//! The 1974 supervisor kept no redundancy beyond the disk structures
//! themselves, so recovery is a raw walk of those structures: find the
//! root's TOC entry, rebuild the branch table from the on-disk
//! hierarchy, recompute the root quota cell (which is never persisted —
//! the root never deactivates), and then let [`Supervisor::salvage`]
//! cross-check the same invariants the new design's salvager checks:
//!
//! 1. every directory entry names a live TOC entry with a matching uid;
//! 2. every TOC entry is claimed by exactly one directory entry (or is
//!    the root's);
//! 3. every quota cell's used count equals the records mapped by the
//!    objects charged to it;
//! 4. every allocated record is referenced by some file map.
//!
//! The salvager works on the disk image directly (flushing core first),
//! because after a crash the AST is empty and the directory segments
//! may themselves be damaged in ways the paging path cannot tolerate.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::ast::{Aste, QuotaCell};
use crate::directory_control::{unpack_name, ENTRY_WORDS};
use crate::supervisor::{Branch, Supervisor, SupervisorConfig};
use crate::types::{DiskHome, LegacyError, SegUid};
use mx_aim::Label;
use mx_hw::meter::Subsystem;
use mx_hw::{Language, PackId, RecordNo, TocIndex, Word, PAGE_WORDS};

/// PL/I instructions charged per word the raw walk touches — the old
/// salvager interpreted the disk structures in software.
const RAW_WALK_INSTR: u64 = 10;

/// The legacy salvager's findings (and actions, when repairing).
#[derive(Debug, Clone, Default)]
pub struct LegacySalvageReport {
    /// Objects examined.
    pub objects_checked: u32,
    /// Quota cells examined.
    pub cells_checked: u32,
    /// Everything found wrong, as human-readable descriptions.
    pub problems: Vec<String>,
    /// Repairs performed.
    pub repairs: Vec<String>,
}

impl LegacySalvageReport {
    /// True if the file system was fully consistent.
    pub fn clean(&self) -> bool {
        self.problems.is_empty()
    }
}

/// A directory entry as the raw disk walk decodes it.
struct RawEntry {
    uid: SegUid,
    is_dir: bool,
    quota_dir: bool,
    home: DiskHome,
    name: String,
    quota_used: u32,
}

/// A deliberately broken online salvager, for the self-check harness:
/// proves the per-release recheck actually catches a salvager that
/// releases a directory without finishing its repairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LegacyOnlineCheat {
    /// Skip quota-cell repair but release the directory anyway.
    ReleaseBeforeCellRepair,
}

/// What one [`Supervisor::online_salvage_step`] accomplished.
#[derive(Debug, Clone)]
pub enum LegacyOnlineProgress {
    /// A directory was claimed, repaired, recheck-verified and released.
    Released {
        /// The directory now open to service.
        dir: SegUid,
        /// False if the post-repair recheck still found problems — a
        /// salvager bug (or a planted [`LegacyOnlineCheat`]); never
        /// expected in honest runs.
        recheck_clean: bool,
        /// Problems recorded while claiming this directory.
        problems_found: u32,
        /// Repairs recorded while claiming this directory.
        repairs_made: u32,
    },
    /// A whole-pack finalize sweep ran after the frontier drained.
    Finalized {
        /// The pack swept.
        pack: PackId,
        /// False for the orphan sweep, true for the leak sweep.
        leaks: bool,
    },
    /// The salvage completed; the quarantine is fully lifted.
    Done {
        /// Everything found and repaired across the whole run.
        report: LegacySalvageReport,
    },
    /// No salvage is running.
    Idle,
}

/// One deferred whole-pack step after the directory frontier drains.
#[derive(Debug, Clone, Copy)]
enum LegacyFinalizeStep {
    Orphans(PackId),
    Leaks(PackId),
}

/// The state of an in-progress online salvage (see
/// [`Supervisor::begin_online_salvage`]).
#[derive(Debug)]
pub(crate) struct LegacyOnlineSalvage {
    /// Directories proven clean and open to service.
    pub(crate) released: HashSet<SegUid>,
    /// Directories discovered but not yet claimed, with the homes their
    /// parents' entries recorded. The home is stable: a quarantined
    /// directory cannot be activated, so it cannot relocate.
    frontier: VecDeque<(SegUid, DiskHome)>,
    /// TOC entries claimed by a walked directory entry (or noted as
    /// service-created); the finalize orphan sweep keeps exactly these.
    claimed: HashSet<(u32, u32)>,
    /// Per quota cell, the frozen-truth used count established when the
    /// cell was checked at its parent's claim (or the root's own claim);
    /// the owning directory's recheck re-verifies the recorded value
    /// against it before release.
    cell_expect: HashMap<SegUid, u32>,
    finalize: VecDeque<LegacyFinalizeStep>,
    finalize_built: bool,
    report: LegacySalvageReport,
    cheat: Option<LegacyOnlineCheat>,
    dirs_released: u32,
}

impl Supervisor {
    /// Flushes every active segment's pages to disk and persists every
    /// quota cell, deactivating everything but the root — the clean-
    /// shutdown point after which the disk image alone describes the
    /// system.
    ///
    /// Deactivation proceeds leaves-first in uid order, so the disk
    /// write sequence is deterministic for a given hierarchy.
    ///
    /// # Errors
    ///
    /// Disk errors from the flushes.
    pub fn sync_to_disk(&mut self) -> Result<(), LegacyError> {
        loop {
            let mut leaves: Vec<SegUid> = self
                .ast
                .iter()
                .filter(|(_, a)| a.inferiors == 0 && a.uid != self.root_uid)
                .map(|(_, a)| a.uid)
                .collect();
            if leaves.is_empty() {
                break;
            }
            leaves.sort();
            for uid in leaves {
                self.deactivate_segment(uid)?;
            }
        }
        let root_astx = self.ast.find(self.root_uid).ok_or(LegacyError::NotActive)?;
        self.flush_segment(root_astx)
    }

    /// Re-bootloads the supervisor from a surviving disk image, as after
    /// a crash: finds the root's TOC entry (the bootload gives the root
    /// uid 1 on pack 0), rebuilds the branch table by walking the
    /// on-disk hierarchy, and recomputes the root quota cell.
    ///
    /// Entries damaged by the crash — dangling, or claiming a TOC entry
    /// twice — are skipped here; clearing them is the salvager's job.
    ///
    /// # Errors
    ///
    /// [`LegacyError::NoAccess`] if the image holds no root;
    /// disk errors reading the image.
    pub fn boot_from_image(
        config: SupervisorConfig,
        image: mx_hw::DiskSystem,
    ) -> Result<Self, LegacyError> {
        let mut sup = Self::assemble(&config);
        sup.machine.disks = image;
        let root_toc = sup
            .machine
            .disks
            .pack(PackId(0))
            .map_err(LegacyError::Disk)?
            .entries()
            .find(|(_, e)| e.uid == 1)
            .map(|(i, _)| i)
            .ok_or(LegacyError::NoAccess)?;
        let root_home = DiskHome {
            pack: PackId(0),
            toc: root_toc,
        };
        let len_pages = sup
            .machine
            .disks
            .pack(PackId(0))
            .map_err(LegacyError::Disk)?
            .entry(root_toc)
            .map_err(LegacyError::Disk)?
            .len_pages();
        let root_uid = SegUid(1);
        let aste = Aste {
            uid: root_uid,
            home: root_home,
            pt_slot: 0,
            len_pages,
            is_dir: true,
            parent: None,
            inferiors: 0,
            quota: Some(QuotaCell {
                limit: config.root_quota_pages,
                used: 0,
            }),
            dir_home: None,
            connections: Vec::new(),
            label: Label::BOTTOM,
        };
        sup.ast.activate(aste).ok_or(LegacyError::AstFull)?;
        sup.root_uid = root_uid;
        sup.root_home = root_home;
        sup.branch_table.insert(
            root_uid,
            Branch {
                parent: None,
                slot: 0,
                is_dir: true,
            },
        );

        // Rebuild the branch table from the on-disk hierarchy.
        let mut max_uid = 1u64;
        let mut queue = VecDeque::from([(root_uid, root_home)]);
        while let Some((dir, home)) = queue.pop_front() {
            let count = sup.raw_seg_read(home, 0).raw() as u32;
            for slot in 0..count {
                let Some(e) = sup.raw_entry(home, slot) else {
                    continue;
                };
                let live = sup
                    .machine
                    .disks
                    .pack(e.home.pack)
                    .ok()
                    .and_then(|p| p.entry(e.home.toc).ok())
                    .map(|t| t.uid == e.uid.0)
                    .unwrap_or(false);
                if !live || sup.branch_table.contains_key(&e.uid) {
                    continue;
                }
                sup.branch_table.insert(
                    e.uid,
                    Branch {
                        parent: Some(dir),
                        slot,
                        is_dir: e.is_dir,
                    },
                );
                max_uid = max_uid.max(e.uid.0);
                if e.is_dir {
                    queue.push_back((e.uid, e.home));
                }
            }
        }
        sup.next_uid = max_uid + 1;

        // The root cell's used count is never persisted; recompute it
        // from what the image actually stores.
        let usage = sup.raw_cell_usage();
        let root_astx = sup.ast.find(root_uid).ok_or(LegacyError::NotActive)?;
        if let Some(cell) = sup.ast.get_mut(root_astx).and_then(|a| a.quota.as_mut()) {
            cell.used = usage.get(&root_uid).copied().unwrap_or(0);
        }
        Ok(sup)
    }

    /// Runs the legacy salvager over the disk image.
    ///
    /// Core is flushed first so the image is current; the walk then
    /// operates on raw records. With `repair` set, dangling and
    /// doubly-claimed entries are cleared, orphan TOC entries and leaked
    /// records are reclaimed, and drifted quota cells are reset — enough
    /// for a second pass to come back clean from any crash state.
    ///
    /// # Errors
    ///
    /// Disk errors from the initial flush or the repairs.
    pub fn salvage(&mut self, repair: bool) -> Result<LegacySalvageReport, LegacyError> {
        let guard = self.machine.clock.enter(Subsystem::Salvager);
        let result = self.salvage_walk(repair);
        self.machine.clock.exit(guard);
        result
    }

    fn salvage_walk(&mut self, repair: bool) -> Result<LegacySalvageReport, LegacyError> {
        let mut report = LegacySalvageReport::default();
        // Flush core so the disk image is the whole truth.
        let mut active: Vec<usize> = self.ast.iter().map(|(i, _)| i).collect();
        active.sort_unstable();
        for astx in active {
            self.flush_segment(astx)?;
        }

        // Walk the hierarchy raw, checking invariants 1 and 2 and
        // collecting each object's governing quota cell along the way.
        let root_uid = self.root_uid;
        let root_home = self.root_home;
        let mut claimed: HashSet<(u32, u32)> = HashSet::new();
        claimed.insert((root_home.pack.0, root_home.toc.0));
        let mut quota_dirs: Vec<(SegUid, DiskHome, u32)> = Vec::new(); // (uid, parent dir home, slot)
        let mut queue = VecDeque::from([(root_uid, root_home)]);
        let mut bad: Vec<(DiskHome, u32, String)> = Vec::new(); // (dir home, slot, problem)
        while let Some((_dir, home)) = queue.pop_front() {
            let count = self.raw_seg_read(home, 0).raw() as u32;
            for slot in 0..count {
                let Some(e) = self.raw_entry(home, slot) else {
                    continue;
                };
                report.objects_checked += 1;
                // Invariant 1: the home must exist and agree on the uid.
                let toc_uid = self
                    .machine
                    .disks
                    .pack(e.home.pack)
                    .ok()
                    .and_then(|p| p.entry(e.home.toc).ok())
                    .map(|t| t.uid);
                if toc_uid != Some(e.uid.0) {
                    bad.push((
                        home,
                        slot,
                        format!("dangling entry '{}' (uid {})", e.name, e.uid.0),
                    ));
                    continue;
                }
                // Invariant 2, first half: one claim per TOC entry.
                if !claimed.insert((e.home.pack.0, e.home.toc.0)) {
                    bad.push((
                        home,
                        slot,
                        format!("duplicate claim '{}' on uid {}", e.name, e.uid.0),
                    ));
                    continue;
                }
                if e.quota_dir {
                    quota_dirs.push((e.uid, home, slot));
                }
                if e.is_dir {
                    queue.push_back((e.uid, e.home));
                }
            }
        }
        for (dir_home, slot, what) in &bad {
            report.problems.push(what.clone());
            if repair {
                // Clear the in-use flag; drop any branch the recovery
                // walk may have catalogued from this entry.
                let base = 1 + slot * ENTRY_WORDS;
                let uid = SegUid(self.raw_seg_read(*dir_home, base).raw());
                self.raw_seg_write(*dir_home, base + 1, Word::ZERO)?;
                if self
                    .branch_table
                    .get(&uid)
                    .is_some_and(|b| b.slot == *slot && b.parent.is_some())
                {
                    self.branch_table.remove(&uid);
                }
                report.repairs.push(format!("cleared {what}"));
            }
        }

        // Invariant 2, second half: orphan TOC entries.
        let mut orphans: Vec<(PackId, TocIndex, u64)> = Vec::new();
        for pack in self.machine.disks.packs() {
            for (toc, entry) in pack.entries() {
                if !claimed.contains(&(pack.id.0, toc.0)) {
                    orphans.push((pack.id, toc, entry.uid));
                }
            }
        }
        for (pack, toc, uid) in orphans {
            report
                .problems
                .push(format!("orphan TOC entry {}:{} (uid {uid})", pack.0, toc.0));
            if repair {
                if let Ok(p) = self.machine.disks.pack_mut(pack) {
                    let _ = p.delete_entry(toc);
                }
                report
                    .repairs
                    .push(format!("reclaimed orphan TOC entry {}:{}", pack.0, toc.0));
            }
        }

        // Invariant 4: every allocated record is referenced by some file
        // map (after the orphan sweep returned reclaimed records).
        let mut leaked: Vec<(PackId, RecordNo)> = Vec::new();
        for pack in self.machine.disks.packs() {
            let mut referenced: HashSet<u32> = HashSet::new();
            for (_, entry) in pack.entries() {
                for rec in entry.file_map.iter().flatten() {
                    referenced.insert(rec.0);
                }
            }
            for rec in pack.allocated_record_nos() {
                if !referenced.contains(&rec.0) {
                    leaked.push((pack.id, rec));
                }
            }
        }
        for (pack, rec) in leaked {
            report
                .problems
                .push(format!("leaked record {} on pack {}", rec.0, pack.0));
            if repair {
                if let Ok(p) = self.machine.disks.pack_mut(pack) {
                    let _ = p.free_record(rec);
                }
                report
                    .repairs
                    .push(format!("freed leaked record {} on pack {}", rec.0, pack.0));
            }
        }

        // Invariant 3: cell drift. The root cell lives in the AST; other
        // cells live in their directory's entry (or the AST if active).
        let actual = self.raw_cell_usage();
        report.cells_checked += 1;
        let root_astx = self.ast.find(root_uid).ok_or(LegacyError::NotActive)?;
        let recorded = self
            .ast
            .get(root_astx)
            .and_then(|a| a.quota.map(|q| q.used))
            .unwrap_or(0);
        let want = actual.get(&root_uid).copied().unwrap_or(0);
        if recorded != want {
            report.problems.push(format!(
                "root cell drift: recorded {recorded}, actual {want}"
            ));
            if repair {
                if let Some(cell) = self.ast.get_mut(root_astx).and_then(|a| a.quota.as_mut()) {
                    cell.used = want;
                }
                report
                    .repairs
                    .push(format!("reset root cell used {recorded} -> {want}"));
            }
        }
        for (uid, dir_home, slot) in quota_dirs {
            report.cells_checked += 1;
            let want = actual.get(&uid).copied().unwrap_or(0);
            let recorded = match self.ast.find(uid) {
                Some(astx) => self
                    .ast
                    .get(astx)
                    .and_then(|a| a.quota.map(|q| q.used))
                    .unwrap_or(0),
                None => self
                    .raw_seg_read(dir_home, 1 + slot * ENTRY_WORDS + 15)
                    .raw() as u32,
            };
            if recorded != want {
                report.problems.push(format!(
                    "cell {} drift: recorded {recorded}, actual {want}",
                    uid.0
                ));
                if repair {
                    if let Some(cell) = self
                        .ast
                        .find(uid)
                        .and_then(|astx| self.ast.get_mut(astx))
                        .and_then(|a| a.quota.as_mut())
                    {
                        cell.used = want;
                    }
                    self.raw_seg_write(
                        dir_home,
                        1 + slot * ENTRY_WORDS + 15,
                        Word::new(u64::from(want)),
                    )?;
                    report
                        .repairs
                        .push(format!("reset cell {} used {recorded} -> {want}", uid.0));
                }
            }
        }
        Ok(report)
    }

    // ----- online salvage -------------------------------------------------

    /// Starts an online salvage: the whole recovered hierarchy is
    /// quarantined — every reference to an unreleased directory answers
    /// [`LegacyError::SalvageBusy`] — and each call to
    /// [`Supervisor::online_salvage_step`] claims, repairs, rechecks and
    /// releases one directory, so service resumes behind the repair
    /// frontier instead of waiting for a stop-the-world pass.
    pub fn begin_online_salvage(&mut self) {
        self.begin_online_salvage_with_cheat(None);
    }

    /// [`Supervisor::begin_online_salvage`] with a planted defect, for
    /// the self-check harness only.
    #[doc(hidden)]
    pub fn begin_online_salvage_with_cheat(&mut self, cheat: Option<LegacyOnlineCheat>) {
        let mut claimed = HashSet::new();
        claimed.insert((self.root_home.pack.0, self.root_home.toc.0));
        self.online = Some(LegacyOnlineSalvage {
            released: HashSet::new(),
            frontier: VecDeque::from([(self.root_uid, self.root_home)]),
            claimed,
            cell_expect: HashMap::new(),
            finalize: VecDeque::new(),
            finalize_built: false,
            report: LegacySalvageReport::default(),
            cheat,
            dirs_released: 0,
        });
    }

    /// True while an online salvage is in progress.
    pub fn online_salvage_active(&self) -> bool {
        self.online.is_some()
    }

    /// Directories released so far by the running online salvage.
    pub fn online_salvage_dirs_released(&self) -> u32 {
        self.online.as_ref().map(|o| o.dirs_released).unwrap_or(0)
    }

    /// Performs one unit of online salvage work: releases the next
    /// frontier directory, or runs one whole-pack finalize sweep, or
    /// completes the salvage and lifts the quarantine.
    ///
    /// # Errors
    ///
    /// Disk errors from the walk or the repairs;
    /// [`LegacyError::Salvage`] on internal inconsistencies.
    pub fn online_salvage_step(&mut self) -> Result<LegacyOnlineProgress, LegacyError> {
        let Some(mut st) = self.online.take() else {
            return Ok(LegacyOnlineProgress::Idle);
        };
        let guard = self.machine.clock.enter(Subsystem::Salvager);
        let result = self.online_step_inner(&mut st);
        self.machine.clock.exit(guard);
        match &result {
            Ok(LegacyOnlineProgress::Done { .. }) => {}
            _ => self.online = Some(st),
        }
        result
    }

    fn online_step_inner(
        &mut self,
        st: &mut LegacyOnlineSalvage,
    ) -> Result<LegacyOnlineProgress, LegacyError> {
        if let Some((dir, home)) = st.frontier.pop_front() {
            return self.online_claim_dir(st, dir, home);
        }
        if !st.finalize_built {
            st.finalize_built = true;
            let packs: Vec<PackId> = self.machine.disks.packs().map(|p| p.id).collect();
            for p in &packs {
                st.finalize.push_back(LegacyFinalizeStep::Orphans(*p));
            }
            for p in &packs {
                st.finalize.push_back(LegacyFinalizeStep::Leaks(*p));
            }
        }
        match st.finalize.pop_front() {
            Some(LegacyFinalizeStep::Orphans(pack)) => {
                self.online_orphan_sweep(st, pack);
                Ok(LegacyOnlineProgress::Finalized { pack, leaks: false })
            }
            Some(LegacyFinalizeStep::Leaks(pack)) => {
                self.online_leak_sweep(st, pack);
                Ok(LegacyOnlineProgress::Finalized { pack, leaks: true })
            }
            None => Ok(LegacyOnlineProgress::Done {
                report: std::mem::take(&mut st.report),
            }),
        }
    }

    fn online_claim_dir(
        &mut self,
        st: &mut LegacyOnlineSalvage,
        dir: SegUid,
        home: DiskHome,
    ) -> Result<LegacyOnlineProgress, LegacyError> {
        let problems_before = st.report.problems.len();
        let repairs_before = st.report.repairs.len();
        // An active quarantined directory (only the root in practice)
        // may hold dirty pages; flush so the raw reads see the truth.
        if let Some(astx) = self.ast.find(dir) {
            self.flush_segment(astx)?;
        }
        let count = self.raw_seg_read(home, 0).raw() as u32;
        let mut bad: Vec<(u32, String)> = Vec::new();
        // (child uid, slot, recorded used, child home)
        let mut quota_children: Vec<(SegUid, u32, u32, DiskHome)> = Vec::new();
        for slot in 0..count {
            let Some(e) = self.raw_entry(home, slot) else {
                continue;
            };
            st.report.objects_checked += 1;
            let toc_uid = self
                .machine
                .disks
                .pack(e.home.pack)
                .ok()
                .and_then(|p| p.entry(e.home.toc).ok())
                .map(|t| t.uid);
            if toc_uid != Some(e.uid.0) {
                bad.push((
                    slot,
                    format!("dangling entry '{}' (uid {})", e.name, e.uid.0),
                ));
                continue;
            }
            if !st.claimed.insert((e.home.pack.0, e.home.toc.0)) {
                bad.push((
                    slot,
                    format!("duplicate claim '{}' on uid {}", e.name, e.uid.0),
                ));
                continue;
            }
            if e.quota_dir {
                quota_children.push((e.uid, slot, e.quota_used, e.home));
            }
            if e.is_dir {
                st.frontier.push_back((e.uid, e.home));
            }
        }
        for (slot, what) in &bad {
            st.report.problems.push(what.clone());
            let base = 1 + slot * ENTRY_WORDS;
            let uid = SegUid(self.raw_seg_read(home, base).raw());
            self.online_dir_write(dir, home, base + 1, Word::ZERO)?;
            if self
                .branch_table
                .get(&uid)
                .is_some_and(|b| b.slot == *slot && b.parent == Some(dir))
            {
                self.branch_table.remove(&uid);
            }
            st.report.repairs.push(format!("cleared {what}"));
        }
        for (quid, slot, recorded, child_home) in quota_children {
            st.report.cells_checked += 1;
            // The child's subtree is frozen (quarantined until its own
            // claim), so its true usage is computable now, while the
            // cell word in this directory is still the salvager's.
            let actual = self.online_cell_actual(child_home, &st.claimed);
            st.cell_expect.insert(quid, actual);
            if recorded != actual && st.cheat != Some(LegacyOnlineCheat::ReleaseBeforeCellRepair) {
                st.report.problems.push(format!(
                    "cell {} drift: recorded {recorded}, actual {actual}",
                    quid.0
                ));
                self.online_dir_write(
                    dir,
                    home,
                    1 + slot * ENTRY_WORDS + 15,
                    Word::new(u64::from(actual)),
                )?;
                st.report
                    .repairs
                    .push(format!("reset cell {} used {recorded} -> {actual}", quid.0));
            }
        }
        if dir == self.root_uid {
            st.report.cells_checked += 1;
            // The whole tree is still frozen at the root's claim (it is
            // the first), so the root cell's truth is computable here.
            let usage = self.raw_cell_usage();
            let want = usage.get(&self.root_uid).copied().unwrap_or(0);
            st.cell_expect.insert(dir, want);
            let root_astx = self.ast.find(dir).ok_or(LegacyError::NotActive)?;
            let recorded = self
                .ast
                .get(root_astx)
                .and_then(|a| a.quota.map(|q| q.used))
                .unwrap_or(0);
            if recorded != want && st.cheat != Some(LegacyOnlineCheat::ReleaseBeforeCellRepair) {
                st.report.problems.push(format!(
                    "root cell drift: recorded {recorded}, actual {want}"
                ));
                if let Some(cell) = self.ast.get_mut(root_astx).and_then(|a| a.quota.as_mut()) {
                    cell.used = want;
                }
                st.report
                    .repairs
                    .push(format!("reset root cell used {recorded} -> {want}"));
            }
        }
        // Repairs to an active directory went through the paging path;
        // flush again so the raw recheck reads current data.
        if let Some(astx) = self.ast.find(dir) {
            self.flush_segment(astx)?;
        }
        let recheck_clean = self.online_recheck(st, dir, home)?;
        st.released.insert(dir);
        st.dirs_released += 1;
        Ok(LegacyOnlineProgress::Released {
            dir,
            recheck_clean,
            problems_found: (st.report.problems.len() - problems_before) as u32,
            repairs_made: (st.report.repairs.len() - repairs_before) as u32,
        })
    }

    /// Honest recheck before release: re-reads the directory raw and
    /// re-verifies invariants 1 and 2 locally, and — if this directory
    /// owns a quota cell — that the recorded used count equals the
    /// frozen truth captured when the cell was checked.
    fn online_recheck(
        &mut self,
        st: &mut LegacyOnlineSalvage,
        dir: SegUid,
        home: DiskHome,
    ) -> Result<bool, LegacyError> {
        let mut clean = true;
        let count = self.raw_seg_read(home, 0).raw() as u32;
        let mut local: HashSet<(u32, u32)> = HashSet::new();
        for slot in 0..count {
            let Some(e) = self.raw_entry(home, slot) else {
                continue;
            };
            let toc_uid = self
                .machine
                .disks
                .pack(e.home.pack)
                .ok()
                .and_then(|p| p.entry(e.home.toc).ok())
                .map(|t| t.uid);
            if toc_uid != Some(e.uid.0) {
                clean = false;
                st.report
                    .problems
                    .push(format!("dangling entry '{}' (uid {})", e.name, e.uid.0));
                continue;
            }
            if !local.insert((e.home.pack.0, e.home.toc.0)) {
                clean = false;
                st.report
                    .problems
                    .push(format!("duplicate claim '{}' on uid {}", e.name, e.uid.0));
            }
        }
        if let Some(expect) = st.cell_expect.get(&dir).copied() {
            let recorded = if dir == self.root_uid {
                let root_astx = self.ast.find(dir).ok_or(LegacyError::NotActive)?;
                self.ast
                    .get(root_astx)
                    .and_then(|a| a.quota.map(|q| q.used))
                    .unwrap_or(0)
            } else {
                let branch = self
                    .branch_table
                    .get(&dir)
                    .copied()
                    .ok_or(LegacyError::Salvage("claimed directory lost its branch"))?;
                let parent = branch
                    .parent
                    .ok_or(LegacyError::Salvage("non-root directory without a parent"))?;
                match self.ast.find(parent) {
                    Some(pastx) => self.read_entry(pastx, branch.slot)?.quota_used,
                    None => {
                        let phome = self.online_home_of(parent)?;
                        self.raw_seg_read(phome, 1 + branch.slot * ENTRY_WORDS + 15)
                            .raw() as u32
                    }
                }
            };
            if recorded != expect {
                clean = false;
                st.report.problems.push(format!(
                    "cell {} drift: recorded {recorded}, actual {expect}",
                    dir.0
                ));
            }
        }
        Ok(clean)
    }

    /// Writes one word of a claimed directory: through the paging path
    /// if the directory is active (keeping core coherent), raw if not.
    fn online_dir_write(
        &mut self,
        dir: SegUid,
        home: DiskHome,
        wordno: u32,
        value: Word,
    ) -> Result<(), LegacyError> {
        match self.ast.find(dir) {
            Some(astx) => self.sup_write(astx, wordno, value),
            None => self.raw_seg_write(home, wordno, value),
        }
    }

    /// The disk home of an object, found without activating anything:
    /// the root's home is pinned; anyone else's lives in the parent's
    /// entry (read buffered if the parent is active, raw otherwise).
    fn online_home_of(&mut self, uid: SegUid) -> Result<DiskHome, LegacyError> {
        if uid == self.root_uid {
            return Ok(self.root_home);
        }
        let branch = self
            .branch_table
            .get(&uid)
            .copied()
            .ok_or(LegacyError::Salvage("object has no branch"))?;
        let parent = branch
            .parent
            .ok_or(LegacyError::Salvage("non-root object without a parent"))?;
        match self.ast.find(parent) {
            Some(pastx) => {
                let e = self.read_entry(pastx, branch.slot)?;
                Ok(DiskHome {
                    pack: e.pack,
                    toc: e.toc,
                })
            }
            None => {
                let phome = self.online_home_of(parent)?;
                let base = 1 + branch.slot * ENTRY_WORDS;
                Ok(DiskHome {
                    pack: PackId(self.raw_seg_read(phome, base + 2).raw() as u32),
                    toc: TocIndex(self.raw_seg_read(phome, base + 3).raw() as u32),
                })
            }
        }
    }

    /// Frozen-subtree usage of the cell owned by the quota directory at
    /// `qdir_home`: the records of everything below it, pruning at
    /// deeper quota directories (whose subtrees charge their own cells)
    /// but counting those directories' own pages here — the same
    /// nearest-superior attribution as [`Supervisor::raw_cell_usage`].
    /// Entries whose TOC home is already claimed elsewhere are excluded,
    /// matching the claim winner the walk keeps.
    fn online_cell_actual(&mut self, qdir_home: DiskHome, claimed: &HashSet<(u32, u32)>) -> u32 {
        fn records_of(disks: &mx_hw::DiskSystem, home: DiskHome) -> u32 {
            disks
                .pack(home.pack)
                .ok()
                .and_then(|p| p.entry(home.toc).ok())
                .map(|e| e.records_used())
                .unwrap_or(0)
        }
        let mut seen = claimed.clone();
        let mut used = 0u32;
        let mut queue = VecDeque::from([qdir_home]);
        while let Some(home) = queue.pop_front() {
            let count = self.raw_seg_read(home, 0).raw() as u32;
            for slot in 0..count {
                let Some(e) = self.raw_entry(home, slot) else {
                    continue;
                };
                let live = self
                    .machine
                    .disks
                    .pack(e.home.pack)
                    .ok()
                    .and_then(|p| p.entry(e.home.toc).ok())
                    .map(|t| t.uid == e.uid.0)
                    .unwrap_or(false);
                if !live || !seen.insert((e.home.pack.0, e.home.toc.0)) {
                    continue;
                }
                used += records_of(&self.machine.disks, e.home);
                if e.is_dir && !e.quota_dir {
                    queue.push_back(e.home);
                }
            }
        }
        used
    }

    /// Finalize: reclaims TOC entries on `pack` that no claimed
    /// directory entry references. Service-created objects were noted
    /// into the claim set at birth, so only crash debris qualifies; an
    /// active segment's home is additionally never touched.
    fn online_orphan_sweep(&mut self, st: &mut LegacyOnlineSalvage, pack: PackId) {
        let mut orphans: Vec<(TocIndex, u64)> = Vec::new();
        if let Ok(p) = self.machine.disks.pack(pack) {
            for (toc, entry) in p.entries() {
                if !st.claimed.contains(&(pack.0, toc.0)) {
                    orphans.push((toc, entry.uid));
                }
            }
        }
        for (toc, uid) in orphans {
            let active = self
                .ast
                .iter()
                .any(|(_, a)| a.home.pack == pack && a.home.toc == toc);
            if active {
                continue;
            }
            st.report
                .problems
                .push(format!("orphan TOC entry {}:{} (uid {uid})", pack.0, toc.0));
            if let Ok(p) = self.machine.disks.pack_mut(pack) {
                let _ = p.delete_entry(toc);
            }
            st.report
                .repairs
                .push(format!("reclaimed orphan TOC entry {}:{}", pack.0, toc.0));
        }
    }

    /// Finalize: frees allocated records on `pack` no file map
    /// references (run after the orphan sweep returned its records).
    fn online_leak_sweep(&mut self, st: &mut LegacyOnlineSalvage, pack: PackId) {
        let mut leaked: Vec<RecordNo> = Vec::new();
        if let Ok(p) = self.machine.disks.pack(pack) {
            let mut referenced: HashSet<u32> = HashSet::new();
            for (_, entry) in p.entries() {
                for rec in entry.file_map.iter().flatten() {
                    referenced.insert(rec.0);
                }
            }
            for rec in p.allocated_record_nos() {
                if !referenced.contains(&rec.0) {
                    leaked.push(rec);
                }
            }
        }
        for rec in leaked {
            st.report
                .problems
                .push(format!("leaked record {} on pack {}", rec.0, pack.0));
            if let Ok(p) = self.machine.disks.pack_mut(pack) {
                let _ = p.free_record(rec);
            }
            st.report
                .repairs
                .push(format!("freed leaked record {} on pack {}", rec.0, pack.0));
        }
    }

    /// The quarantine barrier: while an online salvage runs, any
    /// reference to a directory the salvager has not yet released
    /// answers [`LegacyError::SalvageBusy`]. Files pass — they are
    /// reachable only through directories that already passed.
    pub(crate) fn salvage_barrier_uid(&self, uid: SegUid) -> Result<(), LegacyError> {
        if let Some(o) = &self.online {
            let is_dir = self
                .branch_table
                .get(&uid)
                .map(|b| b.is_dir)
                .unwrap_or(false);
            if is_dir && !o.released.contains(&uid) {
                return Err(LegacyError::SalvageBusy);
            }
        }
        Ok(())
    }

    /// Tells a running salvage about a service-created object so the
    /// finalize sweeps keep it: its TOC entry joins the claim set, and
    /// a new directory is born released (it cannot be crash debris).
    pub(crate) fn salvage_note_created(&mut self, uid: SegUid, home: DiskHome, is_dir: bool) {
        if let Some(o) = &mut self.online {
            o.claimed.insert((home.pack.0, home.toc.0));
            if is_dir {
                o.released.insert(uid);
            }
        }
    }

    /// Tells a running salvage that a segment relocated to a new TOC
    /// entry, so the orphan sweep keeps the new home.
    pub(crate) fn salvage_note_relocated(&mut self, new_home: DiskHome) {
        if let Some(o) = &mut self.online {
            o.claimed.insert((new_home.pack.0, new_home.toc.0));
        }
    }

    // ----- raw disk-image access -----------------------------------------

    /// Reads one word of a segment straight from its disk records (zero
    /// pages and unreadable structures read as zero).
    ///
    /// The walk is unbuffered — every word costs a full record transfer,
    /// which is exactly how expensive the old salvager's raw disk pass
    /// was — and the transfer is charged to the clock so recovery time
    /// is measurable.
    fn raw_seg_read(&mut self, home: DiskHome, wordno: u32) -> Word {
        let page = wordno as usize / PAGE_WORDS;
        let off = wordno as usize % PAGE_WORDS;
        self.charge(RAW_WALK_INSTR, Language::Pli);
        let record = self
            .machine
            .disks
            .pack(home.pack)
            .ok()
            .and_then(|p| p.entry(home.toc).ok())
            .and_then(|e| e.file_map.get(page).copied().flatten());
        record
            .and_then(|r| self.machine.disk_read_record(home.pack, r).ok())
            .map(|buf| buf[off])
            .unwrap_or(Word::ZERO)
    }

    /// Writes one word of a segment straight into its disk records,
    /// materializing the page if the word lands on a zero page.
    fn raw_seg_write(
        &mut self,
        home: DiskHome,
        wordno: u32,
        value: Word,
    ) -> Result<(), LegacyError> {
        let page = wordno as usize / PAGE_WORDS;
        let off = wordno as usize % PAGE_WORDS;
        self.charge(RAW_WALK_INSTR, Language::Pli);
        let record = {
            let pack = self
                .machine
                .disks
                .pack_mut(home.pack)
                .map_err(LegacyError::Disk)?;
            let record = pack
                .entry(home.toc)
                .map_err(LegacyError::Disk)?
                .file_map
                .get(page)
                .copied()
                .flatten();
            match record {
                Some(r) => r,
                None => {
                    let r = pack
                        .allocate_record()
                        .map_err(|_| LegacyError::AllPacksFull)?;
                    let entry = pack.entry_mut(home.toc).map_err(LegacyError::Disk)?;
                    if entry.file_map.len() <= page {
                        entry.file_map.resize(page + 1, None);
                    }
                    entry.file_map[page] = Some(r);
                    r
                }
            }
        };
        let mut buf = self
            .machine
            .disk_read_record(home.pack, record)
            .map_err(LegacyError::Disk)?;
        buf[off] = value;
        self.machine
            .disk_write_record(home.pack, record, buf.as_ref())
            .map_err(LegacyError::Disk)?;
        Ok(())
    }

    /// Decodes entry `slot` of the directory stored at `home`, raw.
    /// `None` if the in-use flag is clear.
    fn raw_entry(&mut self, home: DiskHome, slot: u32) -> Option<RawEntry> {
        let base = 1 + slot * ENTRY_WORDS;
        let flags = self.raw_seg_read(home, base + 1).raw();
        if flags & 1 == 0 {
            return None;
        }
        let mut name_words = [Word::ZERO; 8];
        for (i, w) in name_words.iter_mut().enumerate() {
            *w = self.raw_seg_read(home, base + 4 + i as u32);
        }
        Some(RawEntry {
            uid: SegUid(self.raw_seg_read(home, base).raw()),
            is_dir: flags & 2 != 0,
            quota_dir: flags & 4 != 0,
            home: DiskHome {
                pack: PackId(self.raw_seg_read(home, base + 2).raw() as u32),
                toc: TocIndex(self.raw_seg_read(home, base + 3).raw() as u32),
            },
            name: unpack_name(&name_words),
            quota_used: self.raw_seg_read(home, base + 15).raw() as u32,
        })
    }

    /// Computes, from the disk image alone, the pages actually charged
    /// to each quota cell: an object charges the nearest superior quota
    /// directory; a quota directory's own pages charge its superior's
    /// cell; the root charges itself.
    fn raw_cell_usage(&mut self) -> HashMap<SegUid, u32> {
        let mut usage: HashMap<SegUid, u32> = HashMap::new();
        fn records_of(disks: &mx_hw::DiskSystem, home: DiskHome) -> u32 {
            disks
                .pack(home.pack)
                .ok()
                .and_then(|p| p.entry(home.toc).ok())
                .map(|e| e.records_used())
                .unwrap_or(0)
        }
        usage.insert(
            self.root_uid,
            records_of(&self.machine.disks, self.root_home),
        );
        let mut claimed: HashSet<(u32, u32)> = HashSet::new();
        claimed.insert((self.root_home.pack.0, self.root_home.toc.0));
        // (directory home, cell its children charge to)
        let mut queue = VecDeque::from([(self.root_home, self.root_uid)]);
        while let Some((home, cell)) = queue.pop_front() {
            let count = self.raw_seg_read(home, 0).raw() as u32;
            for slot in 0..count {
                let Some(e) = self.raw_entry(home, slot) else {
                    continue;
                };
                let live = self
                    .machine
                    .disks
                    .pack(e.home.pack)
                    .ok()
                    .and_then(|p| p.entry(e.home.toc).ok())
                    .map(|t| t.uid == e.uid.0)
                    .unwrap_or(false);
                if !live || !claimed.insert((e.home.pack.0, e.home.toc.0)) {
                    continue;
                }
                let _ = e.quota_used;
                *usage.entry(cell).or_default() += records_of(&self.machine.disks, e.home);
                if e.is_dir {
                    let child_cell = if e.quota_dir {
                        usage.entry(e.uid).or_default();
                        e.uid
                    } else {
                        cell
                    };
                    queue.push_back((e.home, child_cell));
                }
            }
        }
        usage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Acl, UserId};
    use mx_hw::PAGE_WORDS;

    fn config() -> SupervisorConfig {
        SupervisorConfig {
            frames: 128,
            packs: 2,
            records_per_pack: 256,
            toc_slots_per_pack: 64,
            ast_slots: 24,
            max_processes: 4,
            root_quota_pages: 200,
        }
    }

    #[test]
    fn recovery_bootload_rebuilds_the_hierarchy() {
        let mut sup = Supervisor::boot(config());
        let user = UserId(1);
        let dir = sup
            .create_directory_in(sup.root(), "d", Acl::owner(user), Label::BOTTOM)
            .unwrap();
        let seg = sup
            .create_segment_in(dir, "f", Acl::owner(user), Label::BOTTOM)
            .unwrap();
        let astx = sup.activate(seg).unwrap();
        for p in 0..3u32 {
            sup.sup_write(astx, p * PAGE_WORDS as u32, Word::new(u64::from(p) + 10))
                .unwrap();
        }
        sup.sync_to_disk().unwrap();
        let image = sup.machine.disks.clone();

        let mut back = Supervisor::boot_from_image(config(), image).unwrap();
        let report = back.salvage(false).unwrap();
        assert!(report.clean(), "problems: {:?}", report.problems);
        // The hierarchy came back: the file is reachable and readable.
        let astx = back.activate(seg).unwrap();
        for p in 0..3u32 {
            assert_eq!(
                back.sup_read(astx, p * PAGE_WORDS as u32).unwrap(),
                Word::new(u64::from(p) + 10)
            );
        }
        // The root cell was recomputed, and uids do not collide.
        let root_astx = back.ast.find(back.root()).unwrap();
        assert!(back.ast.get(root_astx).unwrap().quota.unwrap().used > 0);
        let fresh = back
            .create_segment_in(back.root(), "new", Acl::owner(user), Label::BOTTOM)
            .unwrap();
        assert!(fresh.0 > seg.0, "recovered next_uid continues the sequence");
    }

    #[test]
    fn online_salvage_releases_incrementally_and_serves_behind_barrier() {
        let mut sup = Supervisor::boot(config());
        let user = UserId(1);
        let dir = sup
            .create_directory_in(sup.root(), "d", Acl::owner(user), Label::BOTTOM)
            .unwrap();
        let seg = sup
            .create_segment_in(dir, "f", Acl::owner(user), Label::BOTTOM)
            .unwrap();
        let astx = sup.activate(seg).unwrap();
        sup.sup_write(astx, 0, Word::new(7)).unwrap();
        sup.sync_to_disk().unwrap();
        let image = sup.machine.disks.clone();

        let mut back = Supervisor::boot_from_image(config(), image).unwrap();
        back.begin_online_salvage();
        assert!(back.online_salvage_active());
        // A process needs a state segment under ">processes", so even
        // process creation is barred until the root is released.
        assert_eq!(
            back.create_process(user, Label::BOTTOM),
            Err(LegacyError::SalvageBusy)
        );

        // First step releases the root: service resumes there while
        // ">d" is still quarantined (as final target and as a path
        // component both).
        match back.online_salvage_step().unwrap() {
            LegacyOnlineProgress::Released {
                dir, recheck_clean, ..
            } => {
                assert_eq!(dir, back.root());
                assert!(recheck_clean);
            }
            other => panic!("expected root release, got {other:?}"),
        }
        let pid = back
            .create_process(user, Label::BOTTOM)
            .expect("released root admits processes mid-salvage");
        assert_eq!(
            back.resolve(pid, ">d", crate::types::AccessRight::Read),
            Err(LegacyError::SalvageBusy)
        );
        assert_eq!(
            back.resolve(pid, ">d>f", crate::types::AccessRight::Read),
            Err(LegacyError::SalvageBusy)
        );
        let fresh = back
            .create_segment_in(back.root(), "fresh", Acl::owner(user), Label::BOTTOM)
            .expect("released root serves creates mid-salvage");

        // Second step releases "d"; the file behind it becomes
        // reachable with its contents intact.
        match back.online_salvage_step().unwrap() {
            LegacyOnlineProgress::Released { recheck_clean, .. } => assert!(recheck_clean),
            other => panic!("expected release of 'd', got {other:?}"),
        }
        let (got, _) = back
            .resolve(pid, ">d>f", crate::types::AccessRight::Read)
            .unwrap();
        assert_eq!(got, seg);
        let astx = back.activate(seg).unwrap();
        assert_eq!(back.sup_read(astx, 0).unwrap(), Word::new(7));

        // Drain: finalize sweeps must keep the service-created segment.
        let report = loop {
            match back.online_salvage_step().unwrap() {
                LegacyOnlineProgress::Done { report } => break report,
                LegacyOnlineProgress::Idle => panic!("salvage went idle before Done"),
                _ => {}
            }
        };
        assert!(report.clean(), "problems: {:?}", report.problems);
        assert!(!back.online_salvage_active());
        assert_eq!(back.online_salvage_dirs_released(), 0);
        back.activate(fresh)
            .expect("fresh segment survived finalize");
        let check = back.salvage(false).unwrap();
        assert!(check.clean(), "problems: {:?}", check.problems);
    }

    #[test]
    fn online_cheat_release_before_cell_repair_fails_recheck() {
        let mut sup = Supervisor::boot(config());
        let user = UserId(1);
        let dir = sup
            .create_directory_in(sup.root(), "d", Acl::owner(user), Label::BOTTOM)
            .unwrap();
        sup.create_segment_in(dir, "f", Acl::owner(user), Label::BOTTOM)
            .unwrap();
        sup.sync_to_disk().unwrap();
        let image = sup.machine.disks.clone();

        // Honest salvager: repairs the drifted root cell and the
        // recheck passes.
        let mut honest = Supervisor::boot_from_image(config(), image.clone()).unwrap();
        let root_astx = honest.ast.find(honest.root()).unwrap();
        honest
            .ast
            .get_mut(root_astx)
            .unwrap()
            .quota
            .as_mut()
            .unwrap()
            .used += 3;
        honest.begin_online_salvage();
        match honest.online_salvage_step().unwrap() {
            LegacyOnlineProgress::Released {
                recheck_clean,
                repairs_made,
                ..
            } => {
                assert!(recheck_clean, "honest repair must satisfy the recheck");
                assert!(repairs_made > 0, "the drift must have been repaired");
            }
            other => panic!("expected root release, got {other:?}"),
        }

        // Cheating salvager: skips the repair; the per-release recheck
        // catches it at the root's own release.
        let mut cheat = Supervisor::boot_from_image(config(), image).unwrap();
        let root_astx = cheat.ast.find(cheat.root()).unwrap();
        cheat
            .ast
            .get_mut(root_astx)
            .unwrap()
            .quota
            .as_mut()
            .unwrap()
            .used += 3;
        cheat.begin_online_salvage_with_cheat(Some(LegacyOnlineCheat::ReleaseBeforeCellRepair));
        match cheat.online_salvage_step().unwrap() {
            LegacyOnlineProgress::Released { recheck_clean, .. } => {
                assert!(!recheck_clean, "the recheck must catch the planted cheat");
            }
            other => panic!("expected root release, got {other:?}"),
        }
    }

    #[test]
    fn salvage_reclaims_orphans_and_leaks() {
        let mut sup = Supervisor::boot(config());
        sup.sync_to_disk().unwrap();
        // An orphan TOC entry with a record, and a bare leaked record.
        {
            let pack = sup.machine.disks.pack_mut(PackId(1)).unwrap();
            let toc = pack.create_entry(0xBEEF).unwrap();
            let rec = pack.allocate_record().unwrap();
            pack.entry_mut(toc).unwrap().file_map.push(Some(rec));
            pack.allocate_record().unwrap();
        }
        let free_before = sup.machine.disks.pack(PackId(1)).unwrap().free_records();
        let report = sup.salvage(true).unwrap();
        assert!(report.problems.iter().any(|p| p.contains("orphan")));
        assert!(report.problems.iter().any(|p| p.contains("leaked")));
        assert_eq!(
            sup.machine.disks.pack(PackId(1)).unwrap().free_records(),
            free_before + 2,
            "both records reclaimed"
        );
        let report = sup.salvage(false).unwrap();
        assert!(report.clean(), "problems: {:?}", report.problems);
    }

    #[test]
    fn salvage_clears_dangling_entries_and_converges() {
        let mut sup = Supervisor::boot(config());
        let user = UserId(1);
        let seg = sup
            .create_segment_in(sup.root(), "victim", Acl::owner(user), Label::BOTTOM)
            .unwrap();
        sup.sync_to_disk().unwrap();
        // Delete the TOC entry out from under the catalogue.
        let branch = sup.branch_table[&seg];
        let root_astx = sup.ast.find(sup.root()).unwrap();
        let e = sup.read_entry(root_astx, branch.slot).unwrap();
        sup.machine
            .disks
            .pack_mut(e.pack)
            .unwrap()
            .delete_entry(e.toc)
            .unwrap();
        let report = sup.salvage(true).unwrap();
        assert!(report.problems.iter().any(|p| p.contains("dangling")));
        assert!(!report.repairs.is_empty());
        let report = sup.salvage(false).unwrap();
        assert!(report.clean(), "problems: {:?}", report.problems);
    }
}
