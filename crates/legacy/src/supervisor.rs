//! The monolithic supervisor: shared state, bootload, and fault dispatch.
//!
//! [`Supervisor`] owns the whole machine plus every supervisor data base.
//! The per-module source files (`page_control`, `segment_control`,
//! `directory_control`, …) add `impl Supervisor` blocks; because they
//! all operate on the same struct with direct field access, the
//! implementation *is* the tangle of shared writable data bases the
//! paper's Figure 3 documents. The declared dependency registry in
//! [`crate::registry`] mirrors what the code in these impl blocks
//! actually touches.

use std::collections::{HashMap, VecDeque};

use crate::ast::{ActiveSegmentTable, Aste, FrameTable, QuotaCell, PT_WORDS};
use crate::types::{DiskHome, LegacyError, ProcessId, SegUid, UserId};
use mx_aim::{FlowTracker, Label, ReferenceMonitor};
use mx_hw::cpu::{AccessMode, DescBase, Ptw, Sdw};
use mx_hw::meter::{CounterSet, Subsystem};
use mx_hw::{
    AbsAddr, Fault, FrameNo, HwFeatures, Language, Machine, MachineConfig, VirtAddr, Word,
    PAGE_WORDS,
};

/// Configuration for bootloading the old supervisor.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Core frames.
    pub frames: usize,
    /// Disk packs attached at bootload.
    pub packs: u32,
    /// Records per pack.
    pub records_per_pack: u32,
    /// TOC slots per pack.
    pub toc_slots_per_pack: u32,
    /// Active-segment-table slots (also page-table pool slots).
    pub ast_slots: usize,
    /// Maximum simultaneous processes (each owns one wired dseg frame).
    pub max_processes: u32,
    /// Page quota placed on the root directory at bootload.
    pub root_quota_pages: u32,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            frames: 256,
            packs: 2,
            records_per_pack: 1024,
            toc_slots_per_pack: 256,
            ast_slots: 64,
            max_processes: 16,
            root_quota_pages: 1500,
        }
    }
}

/// Counters the experiments read.
#[derive(Debug, Clone, Copy, Default)]
pub struct Stats {
    /// Page faults serviced.
    pub page_faults: u64,
    /// Segment faults serviced.
    pub segment_faults: u64,
    /// Interpretive retranslations performed under the global lock.
    pub retranslations: u64,
    /// Retranslations that found the fault already serviced by another
    /// processor (the race the lock window admits).
    pub retranslations_resolved: u64,
    /// Global-lock acquisitions that found the lock held.
    pub lock_contentions: u64,
    /// Total levels walked by the dynamic quota search.
    pub quota_walk_levels: u64,
    /// Individual quota searches.
    pub quota_walks: u64,
    /// Pages evicted.
    pub evictions: u64,
    /// Evicted pages found all-zero and reverted to file-map flags.
    pub zero_reversions: u64,
    /// Whole-segment relocations forced by full packs.
    pub relocations: u64,
    /// Pages materialized (frame + record assigned).
    pub materializations: u64,
    /// Transient disk-read errors absorbed by the retry budget.
    pub disk_retries: u64,
}

impl Stats {
    /// Renders every counter for the trace report, in declaration order.
    pub fn counters(&self) -> CounterSet {
        let mut set = CounterSet::new();
        set.set("page_faults", self.page_faults);
        set.set("segment_faults", self.segment_faults);
        set.set("retranslations", self.retranslations);
        set.set("retranslations_resolved", self.retranslations_resolved);
        set.set("lock_contentions", self.lock_contentions);
        set.set("quota_walk_levels", self.quota_walk_levels);
        set.set("quota_walks", self.quota_walks);
        set.set("evictions", self.evictions);
        set.set("zero_reversions", self.zero_reversions);
        set.set("relocations", self.relocations);
        set.set("materializations", self.materializations);
        set.set("disk_retries", self.disk_retries);
        set
    }
}

/// The branch table: the naming layers' record of where every file-system
/// object hangs — uid to (parent uid, entry slot, directory?). Segment
/// control reads this "data base maintained by address space control"
/// directly when it must find and rewrite a directory entry during
/// relocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Branch {
    /// The superior directory's uid (`None` for the root).
    pub parent: Option<SegUid>,
    /// Entry slot within the superior directory segment.
    pub slot: u32,
    /// True if the object is a directory.
    pub is_dir: bool,
}

/// Per-process known-segment-table entry.
#[derive(Debug, Clone)]
pub(crate) struct KstEntry {
    pub uid: SegUid,
    /// Access the connecting SDW should grant (derived from the ACL at
    /// initiation).
    pub read: bool,
    pub write: bool,
    pub execute: bool,
}

/// Scheduling state of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ProcState {
    Ready,
    Running,
    /// Waiting for a page or segment fault service.
    Blocked,
    /// Logged out / destroyed.
    Dead,
}

/// A process: its address space and identity.
#[derive(Debug, Clone)]
pub(crate) struct Process {
    pub id: ProcessId,
    pub user: UserId,
    pub label: Label,
    /// Wired frame holding this process's descriptor segment.
    pub dseg_frame: FrameNo,
    /// Known segment table: segment number → entry.
    pub kst: Vec<Option<KstEntry>>,
    pub state: ProcState,
    /// The segment holding the process's swappable state — making
    /// process implementation depend on the virtual memory, which is the
    /// central loop of Figure 3.
    pub state_uid: Option<SegUid>,
    /// Accumulated accounting units (the answering service bills these).
    pub cpu_charge: u64,
}

/// The global page-control lock of the old design.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct GlobalLock {
    pub held: bool,
}

/// The old Multics supervisor.
#[derive(Debug)]
pub struct Supervisor {
    /// The machine everything runs on (1974 feature level).
    pub machine: Machine,
    /// Frame ownership and the replacement clock hand.
    pub frames: FrameTable,
    /// The active segment table.
    pub ast: ActiveSegmentTable,
    /// The AIM reference monitor (box 1 of the plan was already done).
    pub monitor: ReferenceMonitor,
    /// Observed information flows (for the confinement experiment).
    pub flows: FlowTracker,
    /// Experiment counters.
    pub stats: Stats,
    pub(crate) processes: Vec<Option<Process>>,
    pub(crate) branch_table: HashMap<SegUid, Branch>,
    pub(crate) next_uid: u64,
    pub(crate) root_uid: SegUid,
    pub(crate) root_home: DiskHome,
    pub(crate) lock: GlobalLock,
    pub(crate) ready: VecDeque<ProcessId>,
    pub(crate) current: Option<ProcessId>,
    /// In-kernel linker data: per-segment definition lists (as if read
    /// from object-segment headers).
    pub(crate) definitions: HashMap<SegUid, Vec<(String, u32)>>,
    /// Per-process snapped links: (target uid, symbol) → (segno, offset).
    pub(crate) linkage: HashMap<(ProcessId, SegUid, String), (u32, u32)>,
    /// Answering-service user registry.
    pub(crate) users: HashMap<String, crate::answering::UserAccount>,
    /// In-kernel network handlers, one per attached network.
    pub(crate) networks: Vec<crate::network::NetworkHandler>,
    /// In-progress online salvage, if one is running (see
    /// [`Supervisor::begin_online_salvage`]).
    pub(crate) online: Option<crate::recovery::LegacyOnlineSalvage>,
    max_processes: u32,
    dseg_frame_base: u32,
}

/// Maximum segment numbers per process (SDWs in one dseg frame).
pub const MAX_SEGNO: u32 = PAGE_WORDS as u32;

impl Supervisor {
    /// Bootloads the old supervisor on 1974-feature-level hardware.
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not leave at least eight
    /// pageable frames.
    pub fn boot(config: SupervisorConfig) -> Self {
        let mut sup = Self::assemble(&config);
        sup.create_root(config.root_quota_pages);
        sup
    }

    /// Builds the supervisor structures without touching the disks —
    /// shared by [`Supervisor::boot`] (which then creates the root) and
    /// [`Supervisor::boot_from_image`] (which recovers it from a
    /// surviving disk image instead).
    pub(crate) fn assemble(config: &SupervisorConfig) -> Self {
        let machine = Machine::new(MachineConfig {
            frames: config.frames,
            cpus: 2,
            packs: config.packs,
            records_per_pack: config.records_per_pack,
            toc_slots_per_pack: config.toc_slots_per_pack,
            features: HwFeatures::BASE_1974,
            cost: Default::default(),
        });
        // Low-core layout: frame 0 scratch, then the page-table pool,
        // then one dseg frame per process slot.
        let pt_frames = (ActiveSegmentTable::pt_pool_words(config.ast_slots) as usize)
            .div_ceil(PAGE_WORDS) as u32;
        let dseg_frame_base = 1 + pt_frames;
        let wired = dseg_frame_base + config.max_processes;
        assert!(
            (wired as usize) + 8 <= config.frames,
            "configuration leaves fewer than 8 pageable frames"
        );
        let frames = FrameTable::new(config.frames, wired, "supervisor tables");
        let ast = ActiveSegmentTable::new(config.ast_slots, FrameNo(1).base());

        Self {
            machine,
            frames,
            ast,
            monitor: ReferenceMonitor::new(),
            flows: FlowTracker::new(),
            stats: Stats::default(),
            processes: (0..config.max_processes).map(|_| None).collect(),
            branch_table: HashMap::new(),
            next_uid: 1,
            root_uid: SegUid(0),
            root_home: DiskHome {
                pack: mx_hw::PackId(0),
                toc: mx_hw::TocIndex(0),
            },
            lock: GlobalLock::default(),
            ready: VecDeque::new(),
            current: None,
            definitions: HashMap::new(),
            linkage: HashMap::new(),
            users: HashMap::new(),
            networks: Vec::new(),
            online: None,
            max_processes: config.max_processes,
            dseg_frame_base,
        }
    }

    /// Bootloads with the default configuration.
    pub fn boot_default() -> Self {
        Self::boot(SupervisorConfig::default())
    }

    fn create_root(&mut self, root_quota: u32) {
        let uid = self.allocate_uid();
        let pack = mx_hw::PackId(0);
        let toc = self
            .machine
            .disks
            .pack_mut(pack)
            .expect("pack 0 exists")
            .create_entry(uid.0)
            .expect("empty TOC");
        let aste = Aste {
            uid,
            home: DiskHome { pack, toc },
            pt_slot: 0,
            len_pages: 0,
            is_dir: true,
            parent: None,
            inferiors: 0,
            quota: Some(QuotaCell {
                limit: root_quota,
                used: 0,
            }),
            dir_home: None,
            connections: Vec::new(),
            label: Label::BOTTOM,
        };
        let astx = self.ast.activate(aste).expect("empty AST");
        self.root_uid = uid;
        self.root_home = DiskHome { pack, toc };
        self.branch_table.insert(
            uid,
            Branch {
                parent: None,
                slot: 0,
                is_dir: true,
            },
        );
        // Touch the header word so the directory has a first page.
        self.sup_write(astx, 0, Word::ZERO).expect("root header");
    }

    /// The uid of the root directory.
    pub fn root(&self) -> SegUid {
        self.root_uid
    }

    pub(crate) fn allocate_uid(&mut self) -> SegUid {
        let uid = SegUid(self.next_uid);
        self.next_uid += 1;
        uid
    }

    /// Absolute address of the dseg frame for a process slot.
    pub(crate) fn dseg_frame_for_slot(&self, slot: u32) -> FrameNo {
        FrameNo(self.dseg_frame_base + slot)
    }

    /// Number of process slots.
    pub(crate) fn process_slots(&self) -> u32 {
        self.max_processes
    }

    pub(crate) fn process(&self, pid: ProcessId) -> Result<&Process, LegacyError> {
        let p = self
            .processes
            .get(pid.0 as usize)
            .and_then(|p| p.as_ref())
            .filter(|p| p.state != ProcState::Dead)
            .ok_or(LegacyError::NoSuchProcess)?;
        debug_assert_eq!(p.id, pid, "process table slot consistent");
        Ok(p)
    }

    pub(crate) fn process_mut(&mut self, pid: ProcessId) -> Result<&mut Process, LegacyError> {
        self.processes
            .get_mut(pid.0 as usize)
            .and_then(|p| p.as_mut())
            .filter(|p| p.state != ProcState::Dead)
            .ok_or(LegacyError::NoSuchProcess)
    }

    // ----- page-table word access helpers -------------------------------

    /// Absolute address of the PTW for (astx, pageno).
    pub(crate) fn ptw_addr(&self, astx: usize, pageno: u32) -> AbsAddr {
        let aste = self.ast.get(astx).expect("live astx");
        debug_assert!(pageno < PT_WORDS);
        self.ast.pt_addr(aste.pt_slot).add(u64::from(pageno))
    }

    /// Reads and decodes a PTW.
    pub(crate) fn ptw(&self, astx: usize, pageno: u32) -> Ptw {
        Ptw::decode(self.machine.mem.read(self.ptw_addr(astx, pageno)))
    }

    /// Encodes and writes a PTW — the choke point every descriptor
    /// mutation in this supervisor goes through, so the associative
    /// memories are flushed here ("setfaults").
    pub(crate) fn set_ptw(&mut self, astx: usize, pageno: u32, ptw: Ptw) {
        let addr = self.ptw_addr(astx, pageno);
        self.machine.mem.write(addr, ptw.encode());
        self.machine.tlb_invalidate_ptw(addr);
    }

    // ----- supervisor access to segment contents ------------------------

    /// Reads one word of an active segment from supervisor state,
    /// faulting the page in if necessary.
    ///
    /// This is the path directory control uses to read directory
    /// contents: directory representations are stored in segments, so
    /// file-system operations really do page.
    ///
    /// # Errors
    ///
    /// Propagates paging errors (quota, full packs, pool exhaustion).
    pub fn sup_read(&mut self, astx: usize, wordno: u32) -> Result<Word, LegacyError> {
        let pageno = wordno / PAGE_WORDS as u32;
        loop {
            let ptw = self.ptw(astx, pageno);
            if ptw.present {
                let mut p = ptw;
                p.used = true;
                self.set_ptw(astx, pageno, p);
                let addr = p.frame.base().add(u64::from(wordno % PAGE_WORDS as u32));
                let cost = self.machine.cost;
                self.machine.clock.charge_core_access(&cost);
                return Ok(self.machine.mem.read(addr));
            }
            self.service_page(astx, pageno, Label::BOTTOM)?;
        }
    }

    /// Writes one word of an active segment from supervisor state,
    /// faulting/growing as necessary.
    ///
    /// # Errors
    ///
    /// Propagates paging errors (quota, full packs, pool exhaustion).
    pub fn sup_write(&mut self, astx: usize, wordno: u32, value: Word) -> Result<(), LegacyError> {
        let pageno = wordno / PAGE_WORDS as u32;
        loop {
            let ptw = self.ptw(astx, pageno);
            if ptw.present {
                let mut p = ptw;
                p.used = true;
                p.modified = true;
                self.set_ptw(astx, pageno, p);
                let addr = p.frame.base().add(u64::from(wordno % PAGE_WORDS as u32));
                let cost = self.machine.cost;
                self.machine.clock.charge_core_access(&cost);
                self.machine.mem.write(addr, value);
                return Ok(());
            }
            self.service_page(astx, pageno, Label::BOTTOM)?;
        }
    }

    // ----- user access path ---------------------------------------------

    /// The real processor serving a process (the old supervisor has no
    /// VP layer, so the home is a simple `pid mod cpus`; a single-user
    /// workload stays on processor 0 exactly as before).
    pub(crate) fn cpu_for(&self, pid: ProcessId) -> mx_hw::ProcessorId {
        mx_hw::ProcessorId(pid.0 % self.machine.cpu_count() as u32)
    }

    /// Points the process's serving processor at its address space and
    /// returns that processor's id.
    pub(crate) fn load_dbr(&mut self, pid: ProcessId) -> Result<mx_hw::ProcessorId, LegacyError> {
        let frame = self.process(pid)?.dseg_frame;
        let cpu = self.cpu_for(pid);
        self.machine.cpus[cpu.0 as usize].dbr_user = Some(DescBase {
            base: frame.base(),
            len: MAX_SEGNO,
        });
        Ok(cpu)
    }

    /// Reads one word as a process, servicing faults like the real
    /// supervisor (missing segment → activate + connect; missing page →
    /// global lock, retranslate, page in).
    ///
    /// # Errors
    ///
    /// [`LegacyError::NoAccess`] on protection violations; paging errors
    /// otherwise.
    pub fn user_read(
        &mut self,
        pid: ProcessId,
        segno: u32,
        wordno: u32,
    ) -> Result<Word, LegacyError> {
        self.user_access(pid, segno, wordno, AccessMode::Read, None)
            .map(|w| w.expect("read returns a word"))
    }

    /// Writes one word as a process.
    ///
    /// # Errors
    ///
    /// [`LegacyError::NoAccess`] on protection violations; paging errors
    /// otherwise.
    pub fn user_write(
        &mut self,
        pid: ProcessId,
        segno: u32,
        wordno: u32,
        value: Word,
    ) -> Result<(), LegacyError> {
        self.user_access(pid, segno, wordno, AccessMode::Write, Some(value))
            .map(|_| ())
    }

    fn user_access(
        &mut self,
        pid: ProcessId,
        segno: u32,
        wordno: u32,
        mode: AccessMode,
        value: Option<Word>,
    ) -> Result<Option<Word>, LegacyError> {
        let cpu = self.load_dbr(pid)?;
        let va = VirtAddr::new(segno, wordno);
        // A real reference retries after each serviced fault; bound the
        // retries so a supervisor bug cannot hang the simulation.
        for _ in 0..8 {
            let attempt = match mode {
                AccessMode::Write => self
                    .machine
                    .write(cpu, va, value.expect("write value"))
                    .map(|()| None),
                _ => self.machine.read(cpu, va).map(Some),
            };
            match attempt {
                Ok(w) => {
                    self.machine.cpus[cpu.0 as usize].retire_op();
                    return Ok(w);
                }
                Err(fault) => self.handle_fault(pid, fault)?,
            }
        }
        Err(LegacyError::UnhandledFault(Fault::BadDescriptor { va }))
    }

    /// Attributes the cycles charged inside `f` to `subsystem`.
    ///
    /// Every supervisor entry point wraps its body with this so the
    /// clock's meter can report where the old design spends its time.
    /// Scopes nest across internal calls (directory control paging via
    /// page control, login creating a process), with each inner scope
    /// claiming its own cycles.
    pub(crate) fn scoped<T>(&mut self, subsystem: Subsystem, f: impl FnOnce(&mut Self) -> T) -> T {
        let guard = self.machine.clock.enter(subsystem);
        let result = f(self);
        self.machine.clock.exit(guard);
        result
    }

    /// The supervisor fault dispatcher.
    pub(crate) fn handle_fault(&mut self, pid: ProcessId, fault: Fault) -> Result<(), LegacyError> {
        match fault {
            Fault::MissingSegment { va } => {
                self.stats.segment_faults += 1;
                self.scoped(Subsystem::SegmentControl, |s| {
                    s.segment_fault(pid, va.segno)
                })
            }
            Fault::MissingPage { va, descriptor, .. } => {
                self.stats.page_faults += 1;
                self.scoped(Subsystem::PageControl, |s| {
                    s.page_fault(pid, va, descriptor)
                })
            }
            Fault::AccessViolation { .. } => Err(LegacyError::NoAccess),
            Fault::BoundsViolation { .. } => Err(LegacyError::SegmentTooBig),
            other => Err(LegacyError::UnhandledFault(other)),
        }
    }

    /// Reads the SDW for (process, segno) from the process's dseg.
    pub(crate) fn sdw(&self, pid: ProcessId, segno: u32) -> Sdw {
        let frame = self.processes[pid.0 as usize]
            .as_ref()
            .expect("live process")
            .dseg_frame;
        Sdw::decode(self.machine.mem.read(frame.base().add(u64::from(segno))))
    }

    /// Writes the SDW for (process, segno), flushing the associative
    /// memories for the rewritten descriptor.
    pub(crate) fn set_sdw(&mut self, pid: ProcessId, segno: u32, sdw: Sdw) {
        let frame = self.processes[pid.0 as usize]
            .as_ref()
            .expect("live process")
            .dseg_frame;
        let addr = frame.base().add(u64::from(segno));
        self.machine.mem.write(addr, sdw.encode());
        self.machine.tlb_invalidate_sdw(addr);
    }

    /// Charges `n` abstract instructions of supervisor code written in
    /// `lang` — the mechanism behind the PL/I-vs-assembly performance
    /// comparisons.
    pub(crate) fn charge(&mut self, n: u64, lang: Language) {
        let cost = self.machine.cost;
        self.machine.clock.charge_instructions(&cost, n, lang);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_builds_root_directory() {
        let sup = Supervisor::boot_default();
        let root_astx = sup.ast.find(sup.root()).expect("root active");
        let aste = sup.ast.get(root_astx).unwrap();
        assert!(aste.is_dir);
        assert!(aste.quota.is_some(), "root is a quota directory");
        assert_eq!(aste.len_pages, 1, "header page materialized");
        assert_eq!(sup.stats.materializations, 1);
    }

    #[test]
    fn sup_read_write_round_trip_pages_in() {
        let mut sup = Supervisor::boot_default();
        let root = sup.ast.find(sup.root()).unwrap();
        sup.sup_write(root, 100, Word::new(0o42)).unwrap();
        assert_eq!(sup.sup_read(root, 100).unwrap(), Word::new(0o42));
    }

    #[test]
    fn sup_write_grows_the_segment_across_pages() {
        let mut sup = Supervisor::boot_default();
        let root = sup.ast.find(sup.root()).unwrap();
        let far = 3 * PAGE_WORDS as u32 + 5;
        sup.sup_write(root, far, Word::new(7)).unwrap();
        assert_eq!(sup.ast.get(root).unwrap().len_pages, 4);
        assert_eq!(sup.sup_read(root, far).unwrap(), Word::new(7));
        // Quota charged for the materialized pages.
        let used = sup.ast.get(root).unwrap().quota.unwrap().used;
        assert!(used >= 2, "root charged for materialized pages, got {used}");
    }

    #[test]
    #[should_panic(expected = "fewer than 8 pageable frames")]
    fn boot_rejects_cramped_configurations() {
        let _ = Supervisor::boot(SupervisorConfig {
            frames: 20,
            ..Default::default()
        });
    }
}
