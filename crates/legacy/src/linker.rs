//! The in-kernel dynamic linker.
//!
//! In the pre-kernel system the dynamic linker ran inside ring zero: a
//! linkage fault trapped into the supervisor, which resolved the symbolic
//! reference (pathname search, segment initiation, definition search) and
//! snapped the link, all with full supervisor privilege. Janson's project
//! (the 2K-line / 11%-of-gates reduction in the size table) moved it out;
//! the moved version lives in `mx-user`.
//!
//! The in-kernel version is *fast* — one gate crossing, direct access to
//! every data base — which is why the paper reports the extracted linker
//! ran "somewhat slower". The benchmark pair P1 measures exactly that.

use crate::supervisor::Supervisor;
use crate::types::{LegacyError, ProcessId, SegUid};
use mx_hw::meter::Subsystem;
use mx_hw::Language;

const DEFSEARCH_INSTR_PER_DEF: u64 = 8;
const SNAP_INSTR: u64 = 120;

/// A snapped link: where a symbolic reference now points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnappedLink {
    /// Segment number in the faulting process's address space.
    pub segno: u32,
    /// Word offset of the definition.
    pub offset: u32,
}

impl Supervisor {
    /// Publishes an object segment's definition list (symbol → offset),
    /// as the compiler would have laid it down in the segment's header.
    pub fn publish_definitions(&mut self, uid: SegUid, defs: &[(&str, u32)]) {
        self.definitions
            .insert(uid, defs.iter().map(|(s, o)| (s.to_string(), *o)).collect());
    }

    /// Services a linkage fault entirely inside the kernel: resolves
    /// `path`, initiates it if necessary, searches its definitions for
    /// `symbol`, snaps and caches the link.
    ///
    /// # Errors
    ///
    /// [`LegacyError::NoAccess`] if the path does not resolve,
    /// [`LegacyError::UndefinedSymbol`] if the symbol is absent.
    pub fn link(
        &mut self,
        pid: ProcessId,
        path: &str,
        symbol: &str,
    ) -> Result<SnappedLink, LegacyError> {
        self.scoped(Subsystem::Linker, |s| s.link_body(pid, path, symbol))
    }

    fn link_body(
        &mut self,
        pid: ProcessId,
        path: &str,
        symbol: &str,
    ) -> Result<SnappedLink, LegacyError> {
        let cost = self.machine.cost;
        self.machine.clock.charge_gate(&cost);
        // One fast path: the link may already be snapped.
        let (uid, _entry) = self.resolve(pid, path, crate::types::AccessRight::Execute)?;
        if let Some(&(segno, offset)) = self.linkage.get(&(pid, uid, symbol.to_string())) {
            return Ok(SnappedLink { segno, offset });
        }
        self.charge(SNAP_INSTR, Language::Pli);
        // Initiate (or find) the target in this process's address space.
        let segno = match self.segno_of(pid, uid) {
            Some(s) => s,
            None => self.initiate(pid, path)?,
        };
        let defs = self
            .definitions
            .get(&uid)
            .ok_or(LegacyError::UndefinedSymbol)?;
        let mut found = None;
        let mut scanned = 0u64;
        for (name, offset) in defs {
            scanned += 1;
            if name == symbol {
                found = Some(*offset);
                break;
            }
        }
        self.charge(DEFSEARCH_INSTR_PER_DEF * scanned, Language::Pli);
        let offset = found.ok_or(LegacyError::UndefinedSymbol)?;
        self.linkage
            .insert((pid, uid, symbol.to_string()), (segno, offset));
        Ok(SnappedLink { segno, offset })
    }

    /// Finds the segment number a uid is already known by in a process.
    pub(crate) fn segno_of(&self, pid: ProcessId, uid: SegUid) -> Option<u32> {
        let proc = self.processes.get(pid.0 as usize)?.as_ref()?;
        proc.kst
            .iter()
            .position(|e| e.as_ref().is_some_and(|k| k.uid == uid))
            .map(|i| i as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Acl, UserId};
    use mx_aim::Label;

    fn setup() -> (Supervisor, ProcessId, SegUid) {
        let mut sup = Supervisor::boot_default();
        let user = UserId(1);
        let pid = sup.create_process(user, Label::BOTTOM).unwrap();
        let lib = sup
            .create_segment_in(sup.root(), "libmath", Acl::owner(user), Label::BOTTOM)
            .unwrap();
        sup.publish_definitions(lib, &[("sin", 100), ("cos", 200), ("sqrt", 300)]);
        (sup, pid, lib)
    }

    #[test]
    fn link_resolves_and_snaps() {
        let (mut sup, pid, lib) = setup();
        let l = sup.link(pid, "libmath", "cos").unwrap();
        assert_eq!(l.offset, 200);
        assert_eq!(sup.segno_of(pid, lib), Some(l.segno), "target initiated");
        // Second link to the same symbol hits the snap cache.
        let gates_before = sup.machine.clock.gate_crossings();
        let again = sup.link(pid, "libmath", "cos").unwrap();
        assert_eq!(again, l);
        assert_eq!(
            sup.machine.clock.gate_crossings(),
            gates_before + 1,
            "one gate, no re-snap"
        );
    }

    #[test]
    fn undefined_symbol_reported() {
        let (mut sup, pid, _lib) = setup();
        assert_eq!(
            sup.link(pid, "libmath", "tan").unwrap_err(),
            LegacyError::UndefinedSymbol
        );
    }

    #[test]
    fn linking_an_inaccessible_target_is_no_access() {
        let (mut sup, _pid, _lib) = setup();
        let other = sup.create_process(UserId(2), Label::BOTTOM).unwrap();
        assert_eq!(
            sup.link(other, "libmath", "sin").unwrap_err(),
            LegacyError::NoAccess
        );
    }
}
