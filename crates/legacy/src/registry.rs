//! The declared dependency structure of the old supervisor — the data
//! behind Figures 2 and 3.
//!
//! [`superficial_structure`] is the system as it "appears to be organized
//! … in six large modules" from far enough away: nearly linear, with the
//! one obvious circular dependency between the processor multiplexing
//! facilities and the virtual memory mechanism.
//!
//! [`actual_structure`] adds the dependencies closer inspection reveals —
//! every one of which corresponds to running code in this crate, noted on
//! the edge.

use mx_deps::{DepKind, ModuleGraph, RuntimeLattice};
use mx_hw::Subsystem;

/// The six coarse modules of Figures 2 and 3, with the near-linear edge
/// set of Figure 2.
pub fn superficial_structure() -> ModuleGraph {
    let mut g = ModuleGraph::new();
    let dvc = g.add_module("disk-volume-control", "packs, records, tables of contents");
    let dc = g.add_module("directory-control", "hierarchy, ACLs, pathname resolution");
    let asc = g.add_module(
        "address-space-control",
        "descriptor segments, KSTs, branch table",
    );
    let sc = g.add_module("segment-control", "activation, AST, relocation");
    let pc = g.add_module(
        "page-control",
        "page faults, frames, replacement, quota charges",
    );
    let prc = g.add_module("process-control", "processes, scheduler");

    g.depend(
        dc,
        sc,
        DepKind::Component,
        "directory representations are stored in segments",
    );
    g.depend(
        dc,
        dvc,
        DepKind::Component,
        "entries name segments by pack id + TOC index",
    );
    g.depend(
        asc,
        sc,
        DepKind::Call,
        "connecting a segment consults segment control",
    );
    g.depend(sc, pc, DepKind::Component, "segments are made of pages");
    g.depend(
        sc,
        dvc,
        DepKind::Component,
        "TOC entries and file maps live on packs",
    );
    g.depend(
        pc,
        dvc,
        DepKind::Component,
        "pages are stored on disk records",
    );
    // The one obvious exception to linearity:
    g.depend(
        pc,
        prc,
        DepKind::Call,
        "missing page: give the processor to another process",
    );
    g.depend(
        prc,
        sc,
        DepKind::Component,
        "states of inactive processes are stored in segments",
    );
    g
}

/// Figure 3: the dependencies actually present once exception handling,
/// resource control, and the map/program/address-space/interpreter
/// relations are traced.
pub fn actual_structure() -> ModuleGraph {
    let mut g = superficial_structure();
    let dvc = g.find("disk-volume-control").expect("module");
    let dc = g.find("directory-control").expect("module");
    let asc = g.find("address-space-control").expect("module");
    let sc = g.find("segment-control").expect("module");
    let pc = g.find("page-control").expect("module");
    let prc = g.find("process-control").expect("module");

    // Missing pages: interpretive retranslation under the global lock
    // reads the translation tables other modules maintain
    // (Supervisor::page_fault).
    g.depend(
        pc,
        sc,
        DepKind::SharedData,
        "retranslation reads page tables segment control maintains",
    );
    g.depend(
        pc,
        asc,
        DepKind::SharedData,
        "retranslation reads descriptor segments address space control maintains",
    );
    // Quota: page control identifies the page with a segment by direct
    // reference to the AST and walks its hierarchy links
    // (Supervisor::service_page / quota_charge).
    g.depend(
        pc,
        sc,
        DepKind::SharedData,
        "quota walk reads the AST's superior links",
    );
    g.depend(
        sc,
        dc,
        DepKind::SharedData,
        "AST management constrained to the shape of the directory hierarchy",
    );
    // Full packs: segment control finds the directory entry through the
    // branch table and rewrites it directly
    // (Supervisor::relocate_segment).
    g.depend(
        sc,
        asc,
        DepKind::SharedData,
        "relocation reads the branch table to find the entry",
    );
    g.depend(
        sc,
        dc,
        DepKind::SharedData,
        "relocation rewrites the directory entry in place",
    );
    // Map, program and address-space dependencies on higher modules:
    // supervisor programs and their maps live in ordinary segments.
    g.depend(
        pc,
        sc,
        DepKind::Program,
        "page control code is stored in segments",
    );
    g.depend(
        pc,
        asc,
        DepKind::AddressSpace,
        "page control executes in an ASC-provided space",
    );
    g.depend(
        sc,
        asc,
        DepKind::AddressSpace,
        "segment control executes in an ASC-provided space",
    );
    g.depend(
        dvc,
        sc,
        DepKind::Program,
        "disk volume control code is stored in segments",
    );
    // Interpreter dependencies: every module needs a processor, which
    // process control multiplexes.
    for m in [dvc, dc, asc, sc] {
        g.depend(
            m,
            prc,
            DepKind::Interpreter,
            "executes on a processor process control multiplexes",
        );
    }
    g
}

/// The runtime lattice the old supervisor *claims* — Figure 2 projected
/// onto the meter's subsystem labels.
///
/// Deliberately, this declares only the proper downward dependencies the
/// six-module picture admits. The improper edges Figure 3 adds — page
/// control reaching back up into segment control's AST for the quota
/// walk, and into the directory entry during full-pack relocation — are
/// **not** declared, so the lattice gate reports them as undeclared
/// runtime edges and as loops when the battery exercises those paths.
/// That asymmetry is the point: the same gate that must pass clean on
/// the kernel design is expected to indict the old one.
pub fn legacy_runtime_lattice() -> RuntimeLattice {
    use Subsystem as S;
    let mut l = RuntimeLattice::new("legacy/figure-2");
    for (to, why) in [
        (S::DirectoryControl, "directory supervisor entries"),
        (
            S::SegmentControl,
            "initiate/terminate entries, segment faults",
        ),
        (S::PageControl, "page faults"),
        (S::ProcessControl, "process creation and destruction"),
        (S::Scheduler, "block/wakeup and dispatch"),
        (S::Linker, "dynamic linking faults"),
        (S::AnsweringService, "login/logout"),
        (S::Salvager, "crash recovery from the bootstrap stack"),
        (S::Network, "in-kernel network handler entries"),
    ] {
        l.allow(S::UserDomain, to, why);
    }
    l.allow(
        S::AnsweringService,
        S::ProcessControl,
        "login creates (and logout destroys) the session's process",
    );
    l.allow(
        S::AnsweringService,
        S::Network,
        "fleet admission directives travel the inter-machine wire",
    );
    l.allow(
        S::Linker,
        S::DirectoryControl,
        "snapping a link searches the hierarchy",
    );
    l.allow(
        S::SegmentControl,
        S::PageControl,
        "segments are made of pages: activation builds page tables",
    );
    l.allow(
        S::DirectoryControl,
        S::PageControl,
        "directory growth materializes pages and charges quota",
    );
    l.allow(
        S::DirectoryControl,
        S::SegmentControl,
        "directory representations are stored in segments",
    );
    l.allow(
        S::ProcessControl,
        S::PageControl,
        "process state pages are wired and charged at creation",
    );
    l.allow(
        S::ProcessControl,
        S::SegmentControl,
        "states of inactive processes are stored in segments",
    );
    l.allow(
        S::ProcessControl,
        S::DirectoryControl,
        "process creation catalogues the state segments",
    );
    l.allow(
        S::Scheduler,
        S::PageControl,
        "dispatch touches the loaded process's wired pages",
    );
    l.allow(
        S::Scheduler,
        S::SegmentControl,
        "dispatch reconnects the loaded process's segments",
    );
    l.allow(
        S::Salvager,
        S::PageControl,
        "quota repair rewrites AST cells after a crash",
    );
    l
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn superficial_structure_has_exactly_the_vm_process_loop() {
        let g = superficial_structure();
        let loops = g.loops();
        assert_eq!(loops.len(), 1, "one obvious exception to linearity");
        let names: Vec<&str> = loops[0].iter().map(|m| g.name(*m)).collect();
        assert!(names.contains(&"page-control"));
        assert!(names.contains(&"process-control"));
        assert!(names.contains(&"segment-control"));
        assert!(!names.contains(&"directory-control"));
        assert!(!names.contains(&"disk-volume-control"));
    }

    #[test]
    fn actual_structure_entangles_nearly_everything() {
        let g = actual_structure();
        let loops = g.loops();
        assert_eq!(loops.len(), 1, "one giant strongly connected component");
        assert!(
            loops[0].len() >= 5,
            "at least five of six modules mutually dependent"
        );
        let names: Vec<&str> = loops[0].iter().map(|m| g.name(*m)).collect();
        for m in [
            "page-control",
            "segment-control",
            "address-space-control",
            "directory-control",
            "process-control",
        ] {
            assert!(names.contains(&m), "{m} must be in the big loop");
        }
    }

    #[test]
    fn actual_structure_records_the_papers_three_case_studies() {
        let g = actual_structure();
        let notes: Vec<&str> = g.edges().iter().map(|e| e.note.as_str()).collect();
        assert!(
            notes.iter().any(|n| n.contains("retranslation")),
            "missing-page case"
        );
        assert!(notes.iter().any(|n| n.contains("quota walk")), "quota case");
        assert!(
            notes
                .iter()
                .any(|n| n.contains("rewrites the directory entry")),
            "full-pack case"
        );
    }

    #[test]
    fn runtime_lattice_claims_figure_2_not_figure_3() {
        let l = legacy_runtime_lattice();
        let g = l.declared_graph();
        assert!(
            g.is_loop_free(),
            "the claimed structure is nearly linear: {:?}",
            g.loops()
        );
        // The Figure-3 back edges are deliberately undeclared so the
        // gate reports them when the battery drives those paths.
        use Subsystem as S;
        assert!(!l.contains(S::PageControl, S::SegmentControl));
        assert!(!l.contains(S::PageControl, S::DirectoryControl));
    }

    #[test]
    fn improper_dependencies_dominate_the_added_edges() {
        let g = actual_structure();
        assert!(
            g.improper_edge_count() >= 6,
            "shared-data and call edges abound in the old design"
        );
    }

    #[test]
    fn audit_cost_in_the_actual_structure_is_whole_component() {
        let g = actual_structure();
        let pc = g.find("page-control").unwrap();
        // Believing page control requires believing nearly the whole
        // supervisor (including itself — it is in a loop).
        assert!(g.assumed_by(pc).len() >= 5);
    }
}
