//! In-kernel network handlers — one per attached network.
//!
//! "Two multiplexed communication streams are attached to the Multics
//! system: the ARPANET, and the local front end processor with all its
//! attached terminals. … If a third network were to be connected to
//! Multics, the original strategy would require that yet a third handler
//! be added … the bulk of the network control code would grow linearly
//! with the number of networks attached."
//!
//! Accordingly, each [`NetworkHandler`] here carries its *own* framing
//! logic (the ARPANET handler speaks a leader format, the front-end
//! handler a channel-prefix format), all of it inside the kernel: kernel
//! code grows by a whole handler per network. The restructured
//! user-domain multiplexing — with a small network-independent
//! demultiplexer residue — lives in `mx-user`.

use crate::supervisor::Supervisor;
use crate::types::LegacyError;
use mx_hw::meter::Subsystem;
use mx_hw::Language;
use std::collections::HashMap;

const ARPANET_PARSE_INSTR: u64 = 70;
const FRONTEND_PARSE_INSTR: u64 = 55;
const THIRDNET_PARSE_INSTR: u64 = 62;

/// Largest frame a kernel handler accepts. Oversized frames are refused
/// with a typed error before any handler-specific parse runs — they
/// would overrun the handler's wired buffer, so they are a caller bug,
/// not line noise.
pub const MAX_FRAME: usize = 4096;

/// Which wire protocol a handler speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkKind {
    /// ARPANET: 3-byte leader (link, channel-high, channel-low), then
    /// payload.
    Arpanet,
    /// Local front-end processor: 1-byte channel, 1-byte length, then
    /// payload.
    FrontEnd,
    /// The hypothesized third network — a terminal concentrator with a
    /// quirky frame: 1-byte length *first*, 1-byte flags (ignored),
    /// 2-byte big-endian channel, then payload. Exactly the growth the
    /// paper warns about: "yet a third handler be added" to the kernel.
    ThirdNet,
}

/// One in-kernel network handler with its private channel buffers.
#[derive(Debug, Clone)]
pub struct NetworkHandler {
    /// Protocol this handler speaks.
    pub kind: NetworkKind,
    /// Kernel-resident per-channel input buffers.
    channels: HashMap<u16, Vec<u8>>,
    /// Frames accepted.
    pub frames_in: u64,
    /// Frames dropped as malformed.
    pub frames_bad: u64,
}

impl NetworkHandler {
    fn new(kind: NetworkKind) -> Self {
        Self {
            kind,
            channels: HashMap::new(),
            frames_in: 0,
            frames_bad: 0,
        }
    }
}

/// Handle to an attached network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkId(pub usize);

impl Supervisor {
    /// Attaches a network, adding a whole handler to the kernel.
    pub fn attach_network(&mut self, kind: NetworkKind) -> NetworkId {
        self.networks.push(NetworkHandler::new(kind));
        NetworkId(self.networks.len() - 1)
    }

    /// Number of attached networks (each one a kernel handler).
    pub fn network_count(&self) -> usize {
        self.networks.len()
    }

    /// (accepted, dropped-as-malformed) frame counts for one handler.
    ///
    /// # Errors
    ///
    /// [`LegacyError::NoSuchChannel`] for an unknown network id.
    pub fn network_frame_counts(&self, net: NetworkId) -> Result<(u64, u64), LegacyError> {
        self.networks
            .get(net.0)
            .map(|h| (h.frames_in, h.frames_bad))
            .ok_or(LegacyError::NoSuchChannel)
    }

    /// Delivers one raw frame from the wire into the kernel handler,
    /// which parses it with its network-specific logic and appends the
    /// payload to the addressed channel's kernel buffer.
    ///
    /// # Errors
    ///
    /// [`LegacyError::NoSuchChannel`] for an unknown network id;
    /// [`LegacyError::FrameTooBig`] when the frame exceeds [`MAX_FRAME`].
    pub fn network_receive(&mut self, net: NetworkId, frame: &[u8]) -> Result<(), LegacyError> {
        self.scoped(Subsystem::Network, |s| s.network_receive_body(net, frame))
    }

    fn network_receive_body(&mut self, net: NetworkId, frame: &[u8]) -> Result<(), LegacyError> {
        if frame.len() > MAX_FRAME {
            return Err(LegacyError::FrameTooBig {
                len: frame.len(),
                max: MAX_FRAME,
            });
        }
        let kind = self
            .networks
            .get(net.0)
            .map(|h| h.kind)
            .ok_or(LegacyError::NoSuchChannel)?;
        // Each network's parsing is separate kernel code.
        let parsed = match kind {
            NetworkKind::Arpanet => {
                self.charge(ARPANET_PARSE_INSTR, Language::Pli);
                if frame.len() < 3 {
                    None
                } else {
                    let channel = u16::from_be_bytes([frame[1], frame[2]]);
                    Some((channel, frame[3..].to_vec()))
                }
            }
            NetworkKind::FrontEnd => {
                self.charge(FRONTEND_PARSE_INSTR, Language::Pli);
                if frame.len() < 2 || frame.len() < 2 + frame[1] as usize {
                    None
                } else {
                    let channel = u16::from(frame[0]);
                    let len = frame[1] as usize;
                    Some((channel, frame[2..2 + len].to_vec()))
                }
            }
            NetworkKind::ThirdNet => {
                self.charge(THIRDNET_PARSE_INSTR, Language::Pli);
                if frame.len() < 4 || frame.len() < 4 + frame[0] as usize {
                    None
                } else {
                    let channel = u16::from_be_bytes([frame[2], frame[3]]);
                    let len = frame[0] as usize;
                    Some((channel, frame[4..4 + len].to_vec()))
                }
            }
        };
        let handler = self
            .networks
            .get_mut(net.0)
            .ok_or(LegacyError::NoSuchChannel)?;
        match parsed {
            Some((channel, payload)) => {
                handler.frames_in += 1;
                handler
                    .channels
                    .entry(channel)
                    .or_default()
                    .extend_from_slice(&payload);
                Ok(())
            }
            None => {
                handler.frames_bad += 1;
                Ok(())
            }
        }
    }

    /// A user-domain read of a channel's buffered input (through a gate).
    ///
    /// # Errors
    ///
    /// [`LegacyError::NoSuchChannel`] if the network or channel is
    /// unknown.
    pub fn network_read_channel(
        &mut self,
        net: NetworkId,
        channel: u16,
    ) -> Result<Vec<u8>, LegacyError> {
        self.scoped(Subsystem::Network, |s| {
            let cost = s.machine.cost;
            s.machine.clock.charge_gate(&cost);
            let handler = s
                .networks
                .get_mut(net.0)
                .ok_or(LegacyError::NoSuchChannel)?;
            handler
                .channels
                .get_mut(&channel)
                .map(std::mem::take)
                .ok_or(LegacyError::NoSuchChannel)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arpanet_frames_demultiplex_by_leader() {
        let mut sup = Supervisor::boot_default();
        let net = sup.attach_network(NetworkKind::Arpanet);
        sup.network_receive(net, &[0, 0, 7, b'h', b'i']).unwrap();
        sup.network_receive(net, &[0, 0, 7, b'!']).unwrap();
        sup.network_receive(net, &[0, 0, 9, b'x']).unwrap();
        assert_eq!(sup.network_read_channel(net, 7).unwrap(), b"hi!");
        assert_eq!(sup.network_read_channel(net, 9).unwrap(), b"x");
    }

    #[test]
    fn frontend_frames_use_length_prefix() {
        let mut sup = Supervisor::boot_default();
        let net = sup.attach_network(NetworkKind::FrontEnd);
        sup.network_receive(net, &[3, 2, b'o', b'k', b'X']).unwrap();
        assert_eq!(
            sup.network_read_channel(net, 3).unwrap(),
            b"ok",
            "trailing garbage ignored"
        );
    }

    #[test]
    fn malformed_frames_counted_not_fatal() {
        let mut sup = Supervisor::boot_default();
        let net = sup.attach_network(NetworkKind::Arpanet);
        sup.network_receive(net, &[1]).unwrap();
        let fe = sup.attach_network(NetworkKind::FrontEnd);
        sup.network_receive(fe, &[9, 200, 1, 2]).unwrap();
        assert_eq!(sup.networks[net.0].frames_bad, 1);
        assert_eq!(sup.networks[fe.0].frames_bad, 1);
        assert_eq!(
            sup.network_count(),
            2,
            "two handlers now live in the kernel"
        );
    }

    #[test]
    fn reading_an_unknown_channel_fails() {
        let mut sup = Supervisor::boot_default();
        let net = sup.attach_network(NetworkKind::Arpanet);
        assert_eq!(
            sup.network_read_channel(net, 99).unwrap_err(),
            LegacyError::NoSuchChannel
        );
    }
}
