//! Segment control: activation, deactivation, connection, relocation.
//!
//! Activation must bring the whole superior chain of directories active
//! first (the AST mirrors the hierarchy); deactivation refuses while
//! inferior segments are active. On a full pack, [`Supervisor::
//! relocate_segment`] moves every record of the segment to the emptiest
//! other pack and then — the loop the paper highlights — *directly
//! rewrites the directory entry* it locates through the branch table,
//! the data base the naming layers maintain.

use crate::ast::{Aste, QuotaCell};
use crate::supervisor::Supervisor;
use crate::types::{DiskHome, LegacyError, ProcessId, SegUid};
use mx_hw::cpu::Sdw;
use mx_hw::meter::Subsystem;
use mx_hw::Language;

/// Abstract-instruction costs of segment control's PL/I paths.
const ACTIVATE_INSTR: u64 = 120;
const DEACTIVATE_INSTR: u64 = 90;
const RELOCATE_INSTR: u64 = 400;

impl Supervisor {
    /// Ensures the segment `uid` is active, activating its superior
    /// directories first, and returns its AST index.
    ///
    /// # Errors
    ///
    /// [`LegacyError::AstFull`] when no slot is free,
    /// [`LegacyError::NoAccess`] for an unknown uid, plus paging errors
    /// from reading directory entries.
    pub fn activate(&mut self, uid: SegUid) -> Result<usize, LegacyError> {
        if let Some(astx) = self.ast.find(uid) {
            return Ok(astx);
        }
        self.scoped(Subsystem::SegmentControl, |s| s.activate_body(uid))
    }

    fn activate_body(&mut self, uid: SegUid) -> Result<usize, LegacyError> {
        self.charge(ACTIVATE_INSTR, Language::Pli);
        let branch = *self.branch_table.get(&uid).ok_or(LegacyError::NoAccess)?;
        let parent_uid = branch.parent.ok_or(LegacyError::NoAccess)?;
        let parent_astx = self.activate(parent_uid)?;

        // Read the entry record out of the superior directory segment.
        let entry = self.read_entry(parent_astx, branch.slot)?;
        let home = DiskHome {
            pack: entry.pack,
            toc: entry.toc,
        };
        let len_pages = {
            let pack = self
                .machine
                .disks
                .pack(home.pack)
                .map_err(LegacyError::Disk)?;
            pack.entry(home.toc).map(|e| e.len_pages()).unwrap_or(0)
        };
        let quota = entry.quota_dir.then_some(QuotaCell {
            limit: entry.quota_limit,
            used: entry.quota_used,
        });
        let aste = Aste {
            uid,
            home,
            pt_slot: 0,
            len_pages,
            is_dir: entry.is_dir,
            parent: Some(parent_astx),
            inferiors: 0,
            quota,
            dir_home: Some((parent_astx, branch.slot)),
            connections: Vec::new(),
            label: entry.label,
        };
        let astx = self.ast.activate(aste).ok_or(LegacyError::AstFull)?;
        // The claimed page-table slot may be a reused one; translations
        // cached from its previous tenant must not survive into the new
        // segment's table.
        if let Some(aste) = self.ast.get(astx) {
            let pt_base = self.ast.pt_addr(aste.pt_slot);
            self.machine
                .tlb_invalidate_ptw_range(pt_base, u64::from(crate::ast::PT_WORDS));
        }
        Ok(astx)
    }

    /// Deactivates a segment: flushes its pages, persists its quota cell
    /// into its directory entry, and disconnects every process.
    ///
    /// # Errors
    ///
    /// [`LegacyError::NotActive`] if the segment is not active or — the
    /// hierarchy constraint — still has active inferiors.
    pub fn deactivate_segment(&mut self, uid: SegUid) -> Result<(), LegacyError> {
        self.scoped(Subsystem::SegmentControl, |s| {
            s.deactivate_segment_body(uid)
        })
    }

    fn deactivate_segment_body(&mut self, uid: SegUid) -> Result<(), LegacyError> {
        let astx = self.ast.find(uid).ok_or(LegacyError::NotActive)?;
        if self.ast.get(astx).expect("found").inferiors > 0 {
            return Err(LegacyError::NotActive);
        }
        self.charge(DEACTIVATE_INSTR, Language::Pli);
        self.flush_segment(astx)?;
        let aste = self.ast.get(astx).expect("found").clone();
        // Persist the quota cell into the directory entry.
        if let (Some(cell), Some((parent_astx, slot))) = (aste.quota, aste.dir_home) {
            self.write_entry_quota(parent_astx, slot, cell.limit, cell.used)?;
        }
        // Disconnect every address space.
        for (pid, segno) in aste.connections {
            if self
                .processes
                .get(pid.0 as usize)
                .and_then(|p| p.as_ref())
                .is_some()
            {
                self.set_sdw(pid, segno, Sdw::default());
            }
        }
        self.ast.deactivate(astx);
        Ok(())
    }

    /// Connects a segment into a process's address space at `segno`,
    /// with access bits from the process's KST entry.
    pub(crate) fn connect(&mut self, pid: ProcessId, segno: u32, astx: usize) {
        let kst = self.processes[pid.0 as usize]
            .as_ref()
            .expect("live process")
            .kst[segno as usize]
            .as_ref()
            .expect("initiated segno")
            .clone();
        let aste = self.ast.get_mut(astx).expect("live astx");
        let pt = aste.pt_slot;
        if !aste.connections.contains(&(pid, segno)) {
            aste.connections.push((pid, segno));
        }
        let sdw = Sdw {
            page_table: self.ast.pt_addr(pt),
            bound_pages: crate::ast::PT_WORDS,
            read: kst.read,
            write: kst.write,
            execute: kst.execute,
            present: true,
            software: self.ast.get(astx).expect("live").is_dir,
        };
        self.set_sdw(pid, segno, sdw);
    }

    /// The missing-segment fault handler: activate (chain) and connect.
    pub(crate) fn segment_fault(&mut self, pid: ProcessId, segno: u32) -> Result<(), LegacyError> {
        let uid = self
            .process(pid)?
            .kst
            .get(segno as usize)
            .and_then(|e| e.as_ref())
            .map(|e| e.uid)
            .ok_or(LegacyError::NoAccess)?;
        let astx = self.activate(uid)?;
        self.connect(pid, segno, astx);
        Ok(())
    }

    /// Relocates a whole segment to the emptiest other pack (full-pack
    /// service) and directly rewrites its directory entry.
    ///
    /// # Errors
    ///
    /// [`LegacyError::AllPacksFull`] when no pack can take the segment.
    pub(crate) fn relocate_segment(&mut self, astx: usize) -> Result<(), LegacyError> {
        self.stats.relocations += 1;
        self.charge(RELOCATE_INSTR, Language::Pli);
        // Push resident pages out to the old records first so the copy
        // sees current contents.
        self.flush_segment(astx)?;

        let aste = self.ast.get(astx).expect("live astx").clone();
        let old = aste.home;
        let target = self
            .machine
            .disks
            .emptiest_pack(old.pack)
            .ok_or(LegacyError::AllPacksFull)?;

        // Copy the file map record by record, through the fault-checked
        // channel: transient read errors are retried within the budget,
        // hard faults (pack offline, power failure) surface typed.
        let (old_map, quota_cell) = {
            let pack = self
                .machine
                .disks
                .pack(old.pack)
                .map_err(LegacyError::Disk)?;
            let entry = pack.entry(old.toc).map_err(LegacyError::Disk)?;
            (entry.file_map.clone(), entry.quota_cell)
        };
        let new_toc = self
            .machine
            .disks
            .pack_mut(target)
            .map_err(LegacyError::Disk)?
            .create_entry(aste.uid.0)
            .map_err(|_| LegacyError::AllPacksFull)?;
        let mut new_map = Vec::with_capacity(old_map.len());
        for rec in &old_map {
            match rec {
                None => new_map.push(None),
                Some(r) => {
                    let buf = {
                        let mut retries = 0;
                        loop {
                            match self.machine.disk_read_record(old.pack, *r) {
                                Ok(b) => break b,
                                Err(e @ mx_hw::DiskError::TransientRead { .. }) => {
                                    retries += 1;
                                    self.stats.disk_retries += 1;
                                    if retries >= crate::page_control::READ_RETRY_BUDGET {
                                        return Err(LegacyError::Disk(e));
                                    }
                                }
                                Err(e) => return Err(LegacyError::Disk(e)),
                            }
                        }
                    };
                    let new_rec = self
                        .machine
                        .disks
                        .pack_mut(target)
                        .map_err(LegacyError::Disk)?
                        .allocate_record()
                        .map_err(|_| LegacyError::AllPacksFull)?;
                    self.machine
                        .disk_write_record(target, new_rec, &buf)
                        .map_err(LegacyError::Disk)?;
                    new_map.push(Some(new_rec));
                }
            }
        }
        {
            let pack = self
                .machine
                .disks
                .pack_mut(target)
                .map_err(LegacyError::Disk)?;
            let entry = pack.entry_mut(new_toc).map_err(LegacyError::Disk)?;
            entry.file_map = new_map;
            entry.quota_cell = quota_cell;
        }
        self.machine
            .disks
            .pack_mut(old.pack)
            .map_err(LegacyError::Disk)?
            .delete_entry(old.toc)
            .map_err(LegacyError::Disk)?;

        // Update the AST and then — reading the branch table, the data
        // base the naming layers own — directly rewrite the directory
        // entry with the new pack and TOC index.
        let new_home = DiskHome {
            pack: target,
            toc: new_toc,
        };
        self.salvage_note_relocated(new_home);
        self.ast.get_mut(astx).expect("live astx").home = new_home;
        self.machine
            .clock
            .note_shared_data(Subsystem::DirectoryControl);
        match aste.dir_home {
            Some((parent_astx, slot)) => {
                self.write_entry_home(parent_astx, slot, new_home)?;
            }
            None => {
                self.root_home = new_home;
            }
        }
        Ok(())
    }

    /// Truncates a segment to zero pages, releasing records and charges.
    ///
    /// # Errors
    ///
    /// [`LegacyError::NotActive`] if the segment is not active.
    pub fn truncate_segment(&mut self, uid: SegUid) -> Result<(), LegacyError> {
        self.scoped(Subsystem::SegmentControl, |s| s.truncate_segment_body(uid))
    }

    fn truncate_segment_body(&mut self, uid: SegUid) -> Result<(), LegacyError> {
        let astx = self.ast.find(uid).ok_or(LegacyError::NotActive)?;
        // Drop resident frames without write-back.
        for (frame, pageno) in self.frames.frames_of(astx) {
            self.set_ptw(astx, pageno, Default::default());
            self.frames.release(frame);
        }
        let home = self.ast.get(astx).ok_or(LegacyError::NotActive)?.home;
        let released = {
            let pack = self
                .machine
                .disks
                .pack_mut(home.pack)
                .map_err(LegacyError::Disk)?;
            let entry = pack.entry_mut(home.toc).map_err(LegacyError::Disk)?;
            let recs: Vec<_> = entry.file_map.drain(..).flatten().collect();
            for r in &recs {
                let _ = pack.free_record(*r);
            }
            recs.len() as u32
        };
        if released > 0 {
            self.quota_uncharge(astx, released);
        }
        self.ast.get_mut(astx).expect("live").len_pages = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervisor::SupervisorConfig;
    use crate::types::{Acl, UserId};
    use mx_aim::Label;
    use mx_hw::Word;

    fn sup_with_tree() -> (Supervisor, SegUid, SegUid) {
        let mut sup = Supervisor::boot_default();
        let user = UserId(1);
        let dir = sup
            .create_directory_in(sup.root(), "sub", Acl::owner(user), Label::BOTTOM)
            .unwrap();
        let seg = sup
            .create_segment_in(dir, "data", Acl::owner(user), Label::BOTTOM)
            .unwrap();
        // Creation does not activate the new segment; do so explicitly.
        sup.activate(seg).unwrap();
        (sup, dir, seg)
    }

    #[test]
    fn activation_brings_the_superior_chain_active() {
        let (mut sup, dir, seg) = sup_with_tree();
        // Deactivate bottom-up so the hierarchy constraint is honoured.
        sup.deactivate_segment(seg).unwrap();
        sup.deactivate_segment(dir).unwrap();
        assert!(sup.ast.find(seg).is_none());
        assert!(sup.ast.find(dir).is_none());
        // Activating the leaf reactivates the chain.
        let astx = sup.activate(seg).unwrap();
        assert!(sup.ast.find(dir).is_some(), "superior reactivated");
        let parent = sup.ast.get(astx).unwrap().parent.unwrap();
        assert_eq!(sup.ast.get(parent).unwrap().uid, dir);
    }

    #[test]
    fn deactivation_refused_while_inferiors_active() {
        let (mut sup, dir, _seg) = sup_with_tree();
        assert_eq!(sup.deactivate_segment(dir), Err(LegacyError::NotActive));
    }

    #[test]
    fn relocation_moves_data_and_rewrites_the_directory_entry() {
        let mut sup = Supervisor::boot(SupervisorConfig {
            packs: 2,
            records_per_pack: 12,
            toc_slots_per_pack: 8,
            root_quota_pages: 40,
            ..SupervisorConfig::default()
        });
        let user = UserId(1);
        let seg = sup
            .create_segment_in(sup.root(), "grower", Acl::owner(user), Label::BOTTOM)
            .unwrap();
        let astx = sup.activate(seg).unwrap();
        // Fill pack 0: root header + grower pages until the pack fills;
        // the next growth forces relocation to pack 1.
        let mut wrote = 0;
        for p in 0.. {
            sup.sup_write(astx, p * mx_hw::PAGE_WORDS as u32, Word::new(p as u64 + 1))
                .unwrap();
            wrote = p;
            if sup.stats.relocations > 0 {
                break;
            }
            assert!(p < 30, "relocation never triggered");
        }
        let home = sup.ast.get(astx).unwrap().home;
        assert_ne!(
            home.pack,
            mx_hw::PackId(0),
            "segment moved off the full pack"
        );
        // Every page still readable from the new pack.
        sup.flush_segment(astx).unwrap();
        for p in 0..=wrote {
            assert_eq!(
                sup.sup_read(astx, p * mx_hw::PAGE_WORDS as u32).unwrap(),
                Word::new(p as u64 + 1)
            );
        }
        // The directory entry now names the new home.
        let root_astx = sup.ast.find(sup.root()).unwrap();
        let slot = sup.branch_table[&seg].slot;
        let entry = sup.read_entry(root_astx, slot).unwrap();
        assert_eq!(entry.pack, home.pack);
        assert_eq!(entry.toc, home.toc);
    }

    #[test]
    fn truncate_releases_records_and_charges() {
        let (mut sup, _dir, seg) = sup_with_tree();
        let astx = sup.activate(seg).unwrap();
        for p in 0..3 {
            sup.sup_write(astx, p * mx_hw::PAGE_WORDS as u32, Word::new(9))
                .unwrap();
        }
        let root_astx = sup.ast.find(sup.root()).unwrap();
        let used_before = sup.ast.get(root_astx).unwrap().quota.unwrap().used;
        sup.truncate_segment(seg).unwrap();
        let used_after = sup.ast.get(root_astx).unwrap().quota.unwrap().used;
        assert_eq!(used_before - used_after, 3);
        assert_eq!(sup.ast.get(astx).unwrap().len_pages, 0);
    }
}
