//! The active segment table, frame table, and page-table pool.
//!
//! The AST is segment control's central data base — and, in the old
//! supervisor, everybody else's too: page control reads it directly to
//! identify a faulting page with its segment and to find the nearest
//! superior quota directory, and segment control's management of it "is
//! constrained to follow the shape of the directory hierarchy": a
//! directory's entry is threaded to its superior's (always present)
//! entry, and a directory may never be deactivated while inferior
//! segments are active.

use crate::types::{DiskHome, ProcessId, SegUid};
use mx_aim::Label;
use mx_hw::{AbsAddr, FrameNo, PAGE_WORDS};

/// Page-table words per pool slot — the maximum pages per segment.
pub const PT_WORDS: u32 = 256;

/// The cached quota cell of a quota directory, held in its AST entry
/// while the directory is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuotaCell {
    /// Page limit for the controlled region.
    pub limit: u32,
    /// Pages currently charged.
    pub used: u32,
}

/// One active segment table entry.
#[derive(Debug, Clone)]
pub struct Aste {
    /// The segment's unique identifier.
    pub uid: SegUid,
    /// Current disk home (pack + TOC index); rewritten by relocation.
    pub home: DiskHome,
    /// Which page-table pool slot holds this segment's page table.
    pub pt_slot: usize,
    /// Current segment length in pages.
    pub len_pages: u32,
    /// True for directory segments.
    pub is_dir: bool,
    /// AST index of the superior directory's entry. `None` only for the
    /// root. Segment control keeps the superior active, so the link is
    /// always valid — this is the chain page control's quota walk
    /// follows.
    pub parent: Option<usize>,
    /// Number of active inferior segments (blocks deactivation).
    pub inferiors: u32,
    /// Quota cell if this is a quota directory.
    pub quota: Option<QuotaCell>,
    /// Where this segment's directory entry lives: superior's AST index
    /// plus entry slot. Maintained for segment control's benefit by the
    /// naming layers (the shared-data dependency the paper calls out in
    /// the full-pack case). `None` for the root.
    pub dir_home: Option<(usize, u32)>,
    /// Processes connected to this segment: (process, segment number),
    /// for SDW invalidation at deactivation or relocation.
    pub connections: Vec<(ProcessId, u32)>,
    /// AIM label of the segment's contents.
    pub label: Label,
}

/// The active segment table plus the page-table pool it allocates from.
#[derive(Debug, Clone)]
pub struct ActiveSegmentTable {
    entries: Vec<Option<Aste>>,
    /// Base of the wired page-table pool in core.
    pt_pool_base: AbsAddr,
    pt_free: Vec<bool>,
}

impl ActiveSegmentTable {
    /// Creates an AST with `slots` entries whose page tables live in a
    /// wired pool starting at `pt_pool_base` (each slot owns
    /// [`PT_WORDS`] words).
    pub fn new(slots: usize, pt_pool_base: AbsAddr) -> Self {
        Self {
            entries: (0..slots).map(|_| None).collect(),
            pt_pool_base,
            pt_free: vec![true; slots],
        }
    }

    /// Core words the page-table pool occupies.
    pub fn pt_pool_words(slots: usize) -> u64 {
        slots as u64 * PT_WORDS as u64
    }

    /// Absolute address of the page table in a pool slot.
    pub fn pt_addr(&self, slot: usize) -> AbsAddr {
        self.pt_pool_base.add(slot as u64 * PT_WORDS as u64)
    }

    /// Number of AST slots.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Number of active segments.
    pub fn active_count(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Activates a segment: claims an AST slot and a page-table slot.
    ///
    /// Returns the new AST index, or `None` if the table is full.
    pub fn activate(&mut self, mut aste: Aste) -> Option<usize> {
        let astx = self.entries.iter().position(|e| e.is_none())?;
        let pt_slot = self.pt_free.iter().position(|f| *f)?;
        self.pt_free[pt_slot] = false;
        aste.pt_slot = pt_slot;
        if let Some(p) = aste.parent {
            if let Some(parent) = self.entries[p].as_mut() {
                parent.inferiors += 1;
            }
        }
        self.entries[astx] = Some(aste);
        Some(astx)
    }

    /// Removes an entry, releasing its page-table slot and decrementing
    /// the superior's inferior count. The caller must have flushed pages
    /// and persisted the quota cell first.
    ///
    /// # Panics
    ///
    /// Panics if the entry still has active inferiors (the hierarchy
    /// constraint) or does not exist.
    pub fn deactivate(&mut self, astx: usize) -> Aste {
        let aste = self.entries[astx]
            .take()
            .expect("deactivating a free AST slot");
        assert_eq!(
            aste.inferiors, 0,
            "deactivating a directory with active inferiors"
        );
        self.pt_free[aste.pt_slot] = true;
        if let Some(p) = aste.parent {
            if let Some(parent) = self.entries[p].as_mut() {
                parent.inferiors -= 1;
            }
        }
        aste
    }

    /// Shared access to an entry.
    pub fn get(&self, astx: usize) -> Option<&Aste> {
        self.entries.get(astx).and_then(|e| e.as_ref())
    }

    /// Mutable access to an entry.
    pub fn get_mut(&mut self, astx: usize) -> Option<&mut Aste> {
        self.entries.get_mut(astx).and_then(|e| e.as_mut())
    }

    /// Finds the AST index of an active segment by uid.
    pub fn find(&self, uid: SegUid) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| e.as_ref().is_some_and(|a| a.uid == uid))
    }

    /// Walks parent links from `astx` to the nearest entry with a quota
    /// cell, returning `(ast index, levels walked)`.
    ///
    /// This is the dynamic upward search the paper's new design
    /// eliminates; the level count feeds the cycle charge.
    pub fn nearest_quota_dir(&self, astx: usize) -> Option<(usize, u32)> {
        let mut current = astx;
        let mut levels = 0;
        loop {
            let aste = self.get(current)?;
            if aste.quota.is_some() {
                return Some((current, levels));
            }
            current = aste.parent?;
            levels += 1;
        }
    }

    /// Iterates over `(astx, entry)` pairs for active segments.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Aste)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|a| (i, a)))
    }
}

/// What a core frame is being used for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameState {
    /// Permanently reserved at bootload (low core, tables).
    Wired(&'static str),
    /// Free for page assignment.
    Free,
    /// Holds page `pageno` of the segment at AST index `astx`.
    Page {
        /// AST index of the owning segment.
        astx: usize,
        /// Page number within the segment.
        pageno: u32,
    },
}

/// The frame table: who owns each core frame, plus the clock hand for
/// page replacement.
#[derive(Debug, Clone)]
pub struct FrameTable {
    states: Vec<FrameState>,
    /// First frame eligible for paging.
    first_pageable: u32,
    clock_hand: u32,
}

impl FrameTable {
    /// A frame table over `frames` frames, the first `wired` of which
    /// are permanently reserved.
    pub fn new(frames: usize, wired: u32, purpose: &'static str) -> Self {
        let states = (0..frames)
            .map(|i| {
                if (i as u32) < wired {
                    FrameState::Wired(purpose)
                } else {
                    FrameState::Free
                }
            })
            .collect();
        Self {
            states,
            first_pageable: wired,
            clock_hand: wired,
        }
    }

    /// Number of pageable frames.
    pub fn pageable(&self) -> u32 {
        self.states.len() as u32 - self.first_pageable
    }

    /// The state of a frame.
    pub fn state(&self, frame: FrameNo) -> &FrameState {
        &self.states[frame.0 as usize]
    }

    /// Claims a free pageable frame, if any.
    pub fn take_free(&mut self, astx: usize, pageno: u32) -> Option<FrameNo> {
        let start = self.first_pageable as usize;
        let pos = self.states[start..]
            .iter()
            .position(|s| *s == FrameState::Free)?;
        let frame = FrameNo((start + pos) as u32);
        self.states[frame.0 as usize] = FrameState::Page { astx, pageno };
        Some(frame)
    }

    /// Releases a frame back to the free pool.
    ///
    /// # Panics
    ///
    /// Panics if the frame was wired.
    pub fn release(&mut self, frame: FrameNo) {
        assert!(
            !matches!(self.states[frame.0 as usize], FrameState::Wired(_)),
            "releasing a wired frame"
        );
        self.states[frame.0 as usize] = FrameState::Free;
    }

    /// Reassigns an occupied frame to a new page.
    pub fn assign(&mut self, frame: FrameNo, astx: usize, pageno: u32) {
        self.states[frame.0 as usize] = FrameState::Page { astx, pageno };
    }

    /// Advances the clock hand and returns the frame it now points at
    /// (pageable frames only, wrapping).
    pub fn tick(&mut self) -> FrameNo {
        let n = self.states.len() as u32;
        let frame = FrameNo(self.clock_hand);
        self.clock_hand += 1;
        if self.clock_hand >= n {
            self.clock_hand = self.first_pageable;
        }
        frame
    }

    /// All frames currently holding pages of `astx`.
    pub fn frames_of(&self, astx: usize) -> Vec<(FrameNo, u32)> {
        self.states
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                FrameState::Page { astx: a, pageno } if *a == astx => {
                    Some((FrameNo(i as u32), *pageno))
                }
                _ => None,
            })
            .collect()
    }

    /// Words of core below the pageable region (the wired size).
    pub fn wired_words(&self) -> u64 {
        self.first_pageable as u64 * PAGE_WORDS as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx_hw::PackId;
    use mx_hw::TocIndex;

    fn aste(uid: u64, parent: Option<usize>) -> Aste {
        Aste {
            uid: SegUid(uid),
            home: DiskHome {
                pack: PackId(0),
                toc: TocIndex(0),
            },
            pt_slot: 0,
            len_pages: 0,
            is_dir: true,
            parent,
            inferiors: 0,
            quota: None,
            dir_home: None,
            connections: Vec::new(),
            label: Label::BOTTOM,
        }
    }

    #[test]
    fn activate_links_parent_inferiors() {
        let mut ast = ActiveSegmentTable::new(4, AbsAddr(1024));
        let root = ast.activate(aste(1, None)).unwrap();
        let child = ast.activate(aste(2, Some(root))).unwrap();
        assert_eq!(ast.get(root).unwrap().inferiors, 1);
        ast.deactivate(child);
        assert_eq!(ast.get(root).unwrap().inferiors, 0);
    }

    #[test]
    #[should_panic(expected = "active inferiors")]
    fn cannot_deactivate_with_active_inferiors() {
        let mut ast = ActiveSegmentTable::new(4, AbsAddr(1024));
        let root = ast.activate(aste(1, None)).unwrap();
        let _child = ast.activate(aste(2, Some(root))).unwrap();
        ast.deactivate(root);
    }

    #[test]
    fn quota_walk_finds_nearest_superior() {
        let mut ast = ActiveSegmentTable::new(8, AbsAddr(1024));
        let mut root = aste(1, None);
        root.quota = Some(QuotaCell {
            limit: 100,
            used: 0,
        });
        let root = ast.activate(root).unwrap();
        let mid = ast.activate(aste(2, Some(root))).unwrap();
        let mut qdir = aste(3, Some(mid));
        qdir.quota = Some(QuotaCell { limit: 10, used: 0 });
        let qdir = ast.activate(qdir).unwrap();
        let leaf = ast.activate(aste(4, Some(qdir))).unwrap();
        assert_eq!(ast.nearest_quota_dir(leaf), Some((qdir, 1)));
        assert_eq!(ast.nearest_quota_dir(mid), Some((root, 1)));
        assert_eq!(ast.nearest_quota_dir(root), Some((root, 0)));
        // A deeper leaf under mid walks two levels to the root cell.
        let deep = ast.activate(aste(5, Some(mid))).unwrap();
        assert_eq!(ast.nearest_quota_dir(deep), Some((root, 2)));
    }

    #[test]
    fn pt_slots_are_recycled() {
        let mut ast = ActiveSegmentTable::new(2, AbsAddr(2048));
        let a = ast.activate(aste(1, None)).unwrap();
        let slot_a = ast.get(a).unwrap().pt_slot;
        assert_eq!(ast.pt_addr(slot_a), AbsAddr(2048));
        let b = ast.activate(aste(2, None)).unwrap();
        assert_ne!(ast.get(b).unwrap().pt_slot, slot_a);
        assert!(ast.activate(aste(3, None)).is_none(), "table full");
        ast.deactivate(a);
        let c = ast.activate(aste(4, None)).unwrap();
        assert_eq!(ast.get(c).unwrap().pt_slot, slot_a, "slot reused");
    }

    #[test]
    fn find_by_uid() {
        let mut ast = ActiveSegmentTable::new(2, AbsAddr(0));
        let a = ast.activate(aste(42, None)).unwrap();
        assert_eq!(ast.find(SegUid(42)), Some(a));
        assert_eq!(ast.find(SegUid(43)), None);
    }

    #[test]
    fn frame_table_alloc_release_cycle() {
        let mut ft = FrameTable::new(8, 4, "low core");
        assert_eq!(ft.pageable(), 4);
        let f = ft.take_free(0, 0).unwrap();
        assert_eq!(f, FrameNo(4));
        assert_eq!(*ft.state(f), FrameState::Page { astx: 0, pageno: 0 });
        ft.release(f);
        assert_eq!(*ft.state(f), FrameState::Free);
    }

    #[test]
    fn clock_hand_wraps_over_pageable_frames() {
        let mut ft = FrameTable::new(6, 4, "low");
        let seq: Vec<u32> = (0..5).map(|_| ft.tick().0).collect();
        assert_eq!(seq, vec![4, 5, 4, 5, 4]);
    }

    #[test]
    fn frames_of_collects_a_segments_pages() {
        let mut ft = FrameTable::new(8, 2, "low");
        let f1 = ft.take_free(3, 0).unwrap();
        let _f2 = ft.take_free(4, 0).unwrap();
        let f3 = ft.take_free(3, 7).unwrap();
        let got = ft.frames_of(3);
        assert_eq!(got, vec![(f1, 0), (f3, 7)]);
    }

    #[test]
    #[should_panic(expected = "wired")]
    fn releasing_wired_frame_panics() {
        let mut ft = FrameTable::new(4, 2, "low");
        ft.release(FrameNo(0));
    }
}
