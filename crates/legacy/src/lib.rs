//! The pre-kernel Multics supervisor, loops and all.
//!
//! This crate is the *baseline* of the paper's engineering study: a
//! working model of the file system, memory management and processor
//! management portions of the 1974 Multics supervisor, implemented the
//! way Figure 3 describes — one monolithic [`Supervisor`] whose modules
//! call each other freely and share writable data bases directly:
//!
//! * **page control** identifies pages with segments by reading the
//!   active segment table (segment control's data base) directly, and
//!   enforces quota by dynamically walking the AST's image of the
//!   directory hierarchy to the nearest superior quota directory;
//! * **segment control** never deactivates a directory with active
//!   inferiors, and threads every active segment to its superior's AST
//!   entry, so its management of the AST is constrained to follow the
//!   shape of the hierarchy that directory control defines;
//! * on a **full disk pack**, page control invokes segment control,
//!   which relocates the whole segment and then *directly updates the
//!   directory entry* it finds through address-space control's data;
//! * on a **missing page**, the handler takes the global lock and
//!   *interpretively retranslates* the faulting virtual address —
//!   rewalking the address translation tables maintained by segment and
//!   address-space control — because the unmodified hardware leaves a
//!   window between the fault and the lock;
//! * the **dynamic linker**, the **answering service**, pathname
//!   resolution, and one handler **per attached network** all live
//!   inside the kernel.
//!
//! Everything runs against the simulated 1974-feature-level hardware of
//! `mx-hw` (no descriptor lock bit, no quota trap, one descriptor base
//! register). The module registry in [`registry`] declares the resulting
//! dependency structure, from which Figures 2 and 3 are generated.

pub mod answering;
pub mod ast;
pub mod directory_control;
pub mod linker;
pub mod network;
pub mod page_control;
pub mod process_control;
pub mod recovery;
pub mod registry;
pub mod segment_control;
pub mod supervisor;
pub mod types;

pub use recovery::{LegacyOnlineCheat, LegacyOnlineProgress, LegacySalvageReport};
pub use registry::{actual_structure, legacy_runtime_lattice, superficial_structure};
pub use supervisor::{Supervisor, SupervisorConfig};
pub use types::{AccessRight, Acl, LegacyError, ProcessId, SegUid, UserId};
