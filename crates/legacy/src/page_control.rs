//! Page control: fault service, replacement, quota, and the global lock.
//!
//! This module exhibits three of the paper's loops in running code:
//!
//! 1. **Interpretive retranslation.** The unmodified hardware leaves a
//!    window between a missing-page fault and page control's acquisition
//!    of the global lock, during which another processor may service the
//!    very same fault. So the handler, lock in hand, re-walks the address
//!    translation tables — segment control's and address space control's
//!    data — to see whether the page descriptor still says *missing*.
//!    Page control thereby "know\[s\] the format of and depend\[s\] upon the
//!    correctness of the address translation tables maintained by segment
//!    control and address space control."
//!
//! 2. **Dynamic quota search.** Growing a segment (a fault on a
//!    never-before-used page) requires finding the nearest superior quota
//!    directory: page control identifies the page with a segment by
//!    direct reference to the AST and follows the superior links segment
//!    control threads through it.
//!
//! 3. **Full packs.** If materializing a page finds the segment's pack
//!    full, page control *invokes segment control* — an upward call —
//!    to relocate the whole segment.
//!
//! The zero-page storage policy also lives here: evicted pages are
//! scanned for all-zeros and reverted to file-map flags (dropping their
//! storage charge), and reading a hole materializes a page — updating
//! quota accounting as a side effect, the confinement violation the
//! paper cites.

use crate::supervisor::Supervisor;
use crate::types::{LegacyError, ProcessId};
use mx_aim::Label;
use mx_hw::cpu::{Ptw, Sdw};
use mx_hw::meter::Subsystem;
use mx_hw::{AbsAddr, DiskError, FrameNo, Language, PackId, RecordNo, VirtAddr};

/// Transient-read retries before the supervisor gives up on a record —
/// the same budget the kernel's page-frame manager uses.
pub const READ_RETRY_BUDGET: u32 = 3;

/// Cost constants (abstract instructions) for the PL/I paths of page
/// control; the old page control was largely assembly, so the *resident*
/// paths charge assembly.
const RETRANSLATE_INSTR: u64 = 60;
const SERVICE_INSTR: u64 = 90;
const QUOTA_WALK_INSTR_PER_LEVEL: u64 = 25;
const EVICT_SCAN_INSTR: u64 = 40;

impl Supervisor {
    /// The missing-page fault handler (old design).
    ///
    /// Takes the global lock, performs the interpretive retranslation,
    /// and services the page. Models "give the processor to another
    /// process" by charging a process switch pair when the service
    /// involves a disk transfer.
    ///
    /// # Errors
    ///
    /// Quota, disk, and pool errors from the service path.
    pub(crate) fn page_fault(
        &mut self,
        pid: ProcessId,
        va: VirtAddr,
        _descriptor: AbsAddr,
    ) -> Result<(), LegacyError> {
        self.lock_global();
        // Interpretive retranslation: re-walk dseg SDW and the page
        // table, in software, to confirm the fault is still real.
        self.stats.retranslations += 1;
        self.charge(RETRANSLATE_INSTR, Language::Assembly);
        let cost = self.machine.cost;
        self.machine.clock.charge_descriptor_fetch(&cost);
        self.machine.clock.charge_descriptor_fetch(&cost);
        let sdw = self.sdw(pid, va.segno);
        if !sdw.present {
            // Another processor deactivated the segment in the window;
            // retry from the top (a segment fault will follow).
            self.unlock_global();
            return Ok(());
        }
        let ptw_addr = sdw.page_table.add(u64::from(va.pageno()));
        let ptw = Ptw::decode(self.machine.mem.read(ptw_addr));
        if ptw.present {
            // The race: someone else serviced it between fault and lock.
            self.stats.retranslations_resolved += 1;
            self.unlock_global();
            return Ok(());
        }
        // Identify the page with its segment by direct reference to the
        // AST (pt pool geometry) — segment control's data base.
        self.machine
            .clock
            .note_shared_data(Subsystem::SegmentControl);
        let (astx, pageno) = self
            .astx_of_ptw(ptw_addr)
            .ok_or(LegacyError::UnhandledFault(mx_hw::Fault::BadDescriptor {
                va,
            }))?;
        let label = self.process(pid)?.label;
        let io_before = self.machine.clock.disk_transfers();
        let service = self.service_page(astx, pageno, label);
        self.unlock_global();
        service?;
        // If the service moved data, the faulting process gave its
        // processor away while the transfer ran; charge the switch out
        // and back. A pure page creation completes without I/O.
        if self.machine.clock.disk_transfers() > io_before {
            self.yield_for_io(pid);
        }
        Ok(())
    }

    /// Maps a PTW's absolute address back to (AST index, page number) by
    /// the pool geometry — the shared-data shortcut the old design used.
    pub(crate) fn astx_of_ptw(&self, ptw_addr: AbsAddr) -> Option<(usize, u32)> {
        let base = self.ast.pt_addr(0);
        if ptw_addr.0 < base.0 {
            return None;
        }
        let rel = ptw_addr.0 - base.0;
        let slot = (rel / u64::from(crate::ast::PT_WORDS)) as usize;
        let pageno = (rel % u64::from(crate::ast::PT_WORDS)) as u32;
        let astx = self.ast.iter().find(|(_, a)| a.pt_slot == slot)?.0;
        Some((astx, pageno))
    }

    /// Brings (or creates) page `pageno` of the segment at `astx` into
    /// core. `subject` is the label of the acting process, used to record
    /// accounting information flows.
    ///
    /// # Errors
    ///
    /// [`LegacyError::QuotaExceeded`], [`LegacyError::AllPacksFull`],
    /// [`LegacyError::SegmentTooBig`], or frame-pool exhaustion.
    pub fn service_page(
        &mut self,
        astx: usize,
        pageno: u32,
        subject: Label,
    ) -> Result<(), LegacyError> {
        self.scoped(Subsystem::PageControl, |s| {
            s.service_page_body(astx, pageno, subject)
        })
    }

    fn service_page_body(
        &mut self,
        astx: usize,
        pageno: u32,
        subject: Label,
    ) -> Result<(), LegacyError> {
        if pageno >= crate::ast::PT_WORDS {
            return Err(LegacyError::SegmentTooBig);
        }
        self.charge(SERVICE_INSTR, Language::Assembly);
        let aste = self.ast.get(astx).ok_or(LegacyError::NotActive)?;
        let (home, len) = (aste.home, aste.len_pages);

        // What does the file map say about this page?
        let record = {
            let pack = self
                .machine
                .disks
                .pack(home.pack)
                .map_err(LegacyError::Disk)?;
            let entry = pack.entry(home.toc).map_err(LegacyError::Disk)?;
            entry.file_map.get(pageno as usize).copied().flatten()
        };

        if let Some(record) = record {
            // Ordinary page-in from its disk record, with the bounded
            // transient-read retry; on exhaustion the claimed frame is
            // released and the typed error surfaces.
            let frame = self.claim_frame(astx, pageno)?;
            if let Err(e) = self.read_into_frame_with_retry(home.pack, record, frame) {
                self.frames.release(frame);
                return Err(e);
            }
            self.install_ptw(astx, pageno, frame);
            return Ok(());
        }

        // The page has never been used (beyond the length) or is a
        // zero-page flag: materialize it. Growth and materialization
        // require the quota check — the dynamic upward search.
        self.quota_charge(astx, 1, subject)?;
        let record = match self.allocate_record_for(astx) {
            Ok(r) => r,
            Err(e) => {
                self.quota_uncharge(astx, 1);
                return Err(e);
            }
        };
        let frame = match self.claim_frame(astx, pageno) {
            Ok(f) => f,
            Err(e) => {
                let aste = self.ast.get(astx).ok_or(LegacyError::NotActive)?;
                let pack = aste.home.pack;
                // Best effort on this unwind path: a record the free
                // cannot reach is the salvager's to reclaim.
                if let Ok(p) = self.machine.disks.pack_mut(pack) {
                    let _ = p.free_record(record);
                }
                self.quota_uncharge(astx, 1);
                return Err(e);
            }
        };
        self.machine.mem.zero_frame(frame);
        self.stats.materializations += 1;

        // Commit the new page to the file map (growing it if needed).
        let aste = self.ast.get_mut(astx).ok_or(LegacyError::NotActive)?;
        let home = aste.home;
        if pageno >= len {
            aste.len_pages = pageno + 1;
        }
        let pack = self
            .machine
            .disks
            .pack_mut(home.pack)
            .map_err(LegacyError::Disk)?;
        let entry = pack.entry_mut(home.toc).map_err(LegacyError::Disk)?;
        if entry.file_map.len() <= pageno as usize {
            entry.file_map.resize(pageno as usize + 1, None);
        }
        entry.file_map[pageno as usize] = Some(record);
        self.install_ptw(astx, pageno, frame);
        Ok(())
    }

    /// Reads a disk record into a core frame, absorbing transient read
    /// errors up to [`READ_RETRY_BUDGET`]; anything worse surfaces as
    /// [`LegacyError::Disk`].
    pub(crate) fn read_into_frame_with_retry(
        &mut self,
        pack: PackId,
        record: RecordNo,
        frame: FrameNo,
    ) -> Result<(), LegacyError> {
        let mut retries = 0;
        loop {
            match self.machine.disk_read_into_frame(pack, record, frame) {
                Ok(()) => return Ok(()),
                Err(e @ DiskError::TransientRead { .. }) if retries < READ_RETRY_BUDGET => {
                    retries += 1;
                    self.stats.disk_retries += 1;
                    let _ = e;
                }
                Err(e) => return Err(LegacyError::Disk(e)),
            }
        }
    }

    fn install_ptw(&mut self, astx: usize, pageno: u32, frame: FrameNo) {
        self.set_ptw(
            astx,
            pageno,
            Ptw {
                frame,
                present: true,
                used: true,
                ..Ptw::default()
            },
        );
    }

    /// Allocates a disk record on the segment's own pack; on a full pack,
    /// invokes segment control to relocate the segment and retries on its
    /// new home — the upward call of the full-pack loop.
    fn allocate_record_for(&mut self, astx: usize) -> Result<mx_hw::RecordNo, LegacyError> {
        let home = self.ast.get(astx).ok_or(LegacyError::NotActive)?.home;
        let pack = self
            .machine
            .disks
            .pack_mut(home.pack)
            .map_err(LegacyError::Disk)?;
        match pack.allocate_record() {
            Ok(r) => Ok(r),
            Err(_) => {
                // Full disk pack: page control invokes segment control.
                self.relocate_segment(astx)?;
                let new_home = self.ast.get(astx).ok_or(LegacyError::NotActive)?.home;
                self.machine
                    .disks
                    .pack_mut(new_home.pack)
                    .map_err(LegacyError::Disk)?
                    .allocate_record()
                    .map_err(|_| LegacyError::AllPacksFull)
            }
        }
    }

    /// Claims a core frame, evicting by the clock algorithm when none is
    /// free.
    pub(crate) fn claim_frame(&mut self, astx: usize, pageno: u32) -> Result<FrameNo, LegacyError> {
        if let Some(f) = self.frames.take_free(astx, pageno) {
            return Ok(f);
        }
        let victim = self.select_victim()?;
        self.evict(victim)?;
        self.frames
            .take_free(astx, pageno)
            .ok_or(LegacyError::PageTablePoolFull)
    }

    /// Second-chance clock over the pageable frames.
    fn select_victim(&mut self) -> Result<FrameNo, LegacyError> {
        let limit = self.frames.pageable() * 2 + 2;
        for _ in 0..limit {
            let frame = self.frames.tick();
            let (astx, pageno) = match *self.frames.state(frame) {
                crate::ast::FrameState::Page { astx, pageno } => (astx, pageno),
                _ => continue,
            };
            let mut ptw = self.ptw(astx, pageno);
            if ptw.wired {
                continue;
            }
            if ptw.used {
                ptw.used = false;
                self.set_ptw(astx, pageno, ptw);
                continue;
            }
            return Ok(frame);
        }
        Err(LegacyError::PageTablePoolFull)
    }

    /// Evicts the page in `frame`: scans it for all-zeros (reverting to a
    /// file-map flag and dropping the storage charge if so), otherwise
    /// writes it to its disk record.
    pub(crate) fn evict(&mut self, frame: FrameNo) -> Result<(), LegacyError> {
        let (astx, pageno) = match *self.frames.state(frame) {
            crate::ast::FrameState::Page { astx, pageno } => (astx, pageno),
            _ => return Ok(()),
        };
        self.stats.evictions += 1;
        // "This algorithm must be given (otherwise unnecessary) access to
        // the data in every page of every file stored by the system."
        self.charge(EVICT_SCAN_INSTR, Language::Assembly);
        let home = self.ast.get(astx).ok_or(LegacyError::NotActive)?.home;
        let record = {
            let pack = self
                .machine
                .disks
                .pack(home.pack)
                .map_err(LegacyError::Disk)?;
            pack.entry(home.toc).map_err(LegacyError::Disk)?.file_map[pageno as usize]
        };
        let modified = self.ptw(astx, pageno).modified;
        if self.machine.mem.frame_is_zero(frame) {
            // Revert to the zero-page flag; free the record and drop the
            // charge.
            if let Some(record) = record {
                let pack = self
                    .machine
                    .disks
                    .pack_mut(home.pack)
                    .map_err(LegacyError::Disk)?;
                pack.entry_mut(home.toc)
                    .map_err(LegacyError::Disk)?
                    .file_map[pageno as usize] = None;
                let _ = pack.free_record(record);
                self.quota_uncharge(astx, 1);
            }
            self.stats.zero_reversions += 1;
        } else if modified {
            let record = record.ok_or(LegacyError::NotActive)?;
            self.machine
                .disk_write_from_frame(home.pack, record, frame)
                .map_err(LegacyError::Disk)?;
        }
        self.set_ptw(astx, pageno, Ptw::default());
        self.frames.release(frame);
        Ok(())
    }

    /// Charges `pages` against the nearest superior quota directory,
    /// walking the AST's image of the hierarchy (the dynamic search the
    /// new design eliminates).
    ///
    /// # Errors
    ///
    /// [`LegacyError::QuotaExceeded`] if the charge would exceed the
    /// limit.
    pub(crate) fn quota_charge(
        &mut self,
        astx: usize,
        pages: u32,
        subject: Label,
    ) -> Result<(), LegacyError> {
        // "Nearest superior quota directory": the search starts at the
        // segment's superior, so a quota directory's own pages charge
        // the next cell up, not its own.
        let start = self.ast.get(astx).and_then(|a| a.parent).unwrap_or(astx);
        let (qdir, levels) = self
            .ast
            .nearest_quota_dir(start)
            .expect("root always carries a quota cell");
        self.stats.quota_walks += 1;
        self.stats.quota_walk_levels += u64::from(levels);
        self.charge(
            QUOTA_WALK_INSTR_PER_LEVEL * (u64::from(levels) + 1),
            Language::Assembly,
        );
        let qlabel = self.ast.get(qdir).expect("quota dir").label;
        // Mutating a quota cell in the AST: segment control's data base,
        // written directly from page control — Figure 3's shared-data edge.
        self.machine
            .clock
            .note_shared_data(Subsystem::SegmentControl);
        let cell = self
            .ast
            .get_mut(qdir)
            .expect("quota dir")
            .quota
            .as_mut()
            .expect("cell");
        if cell.used + pages > cell.limit {
            let (limit, used) = (cell.limit, cell.used);
            return Err(LegacyError::QuotaExceeded { limit, used });
        }
        cell.used += pages;
        // The accounting update is an information flow from the acting
        // subject into the quota directory's cell.
        self.flows.observe(
            subject,
            qlabel,
            "quota used-count update on page materialization",
        );
        Ok(())
    }

    /// Reverses a quota charge (page reverted to zero flag, truncation,
    /// deletion). `astx` is the charged object; the walk starts at its
    /// superior, mirroring [`Self::quota_charge`].
    pub(crate) fn quota_uncharge(&mut self, astx: usize, pages: u32) {
        let start = self.ast.get(astx).and_then(|a| a.parent).unwrap_or(astx);
        self.quota_uncharge_from(start, pages);
    }

    /// Reverses a quota charge walking up from `start` itself — for
    /// callers holding the charged object's *containing directory*
    /// (which may itself be the governing quota directory), not the
    /// object. Deleting an inactive segment is the one such caller: the
    /// segment has no AST entry to start from, only its parent does.
    pub(crate) fn quota_uncharge_from(&mut self, start: usize, pages: u32) {
        let (qdir, levels) = self
            .ast
            .nearest_quota_dir(start)
            .expect("root always carries a quota cell");
        self.stats.quota_walks += 1;
        self.stats.quota_walk_levels += u64::from(levels);
        self.charge(
            QUOTA_WALK_INSTR_PER_LEVEL * (u64::from(levels) + 1),
            Language::Assembly,
        );
        self.machine
            .clock
            .note_shared_data(Subsystem::SegmentControl);
        let cell = self
            .ast
            .get_mut(qdir)
            .expect("quota dir")
            .quota
            .as_mut()
            .expect("cell");
        cell.used = cell.used.saturating_sub(pages);
    }

    /// Flushes every resident page of a segment (used before
    /// deactivation and relocation, and by experiments that want cold
    /// rereads).
    pub fn flush_segment(&mut self, astx: usize) -> Result<(), LegacyError> {
        self.scoped(Subsystem::PageControl, |s| {
            for (frame, _pageno) in s.frames.frames_of(astx) {
                s.evict(frame)?;
            }
            Ok(())
        })
    }

    pub(crate) fn lock_global(&mut self) {
        if self.lock.held {
            self.stats.lock_contentions += 1;
        }
        self.lock.held = true;
    }

    pub(crate) fn unlock_global(&mut self) {
        self.lock.held = false;
    }

    /// Drives the full missing-page handler from outside the crate —
    /// the race tests stage the window and then invoke this.
    ///
    /// # Errors
    ///
    /// As [`Supervisor::service_page`].
    pub fn handle_page_fault_for_test(
        &mut self,
        pid: ProcessId,
        va: VirtAddr,
        descriptor: AbsAddr,
    ) -> Result<(), LegacyError> {
        self.scoped(Subsystem::PageControl, |s| {
            s.page_fault(pid, va, descriptor)
        })
    }

    /// Reads the SDW helper used by retranslation (re-exported for the
    /// race tests).
    pub fn retranslate_now(&mut self, pid: ProcessId, va: VirtAddr) -> bool {
        let sdw: Sdw = self.sdw(pid, va.segno);
        if !sdw.present {
            return false;
        }
        let ptw_addr = sdw.page_table.add(u64::from(va.pageno()));
        Ptw::decode(self.machine.mem.read(ptw_addr)).present
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervisor::SupervisorConfig;
    use mx_hw::{Word, PAGE_WORDS};

    fn small() -> Supervisor {
        Supervisor::boot(SupervisorConfig {
            frames: 64,
            ast_slots: 16,
            max_processes: 4,
            packs: 2,
            records_per_pack: 64,
            toc_slots_per_pack: 32,
            root_quota_pages: 200,
        })
    }

    #[test]
    fn materialization_charges_quota_and_eviction_of_zero_reverts() {
        let mut sup = small();
        let root = sup.ast.find(sup.root()).unwrap();
        // Touch three pages without writing anything nonzero.
        for p in 1..4 {
            sup.service_page(root, p, Label::BOTTOM).unwrap();
        }
        let used_before = sup.ast.get(root).unwrap().quota.unwrap().used;
        assert_eq!(used_before, 4, "header + 3 materialized pages charged");
        // Evict them all: all-zero pages revert and uncharge.
        sup.flush_segment(root).unwrap();
        let used_after = sup.ast.get(root).unwrap().quota.unwrap().used;
        assert_eq!(used_after, 0, "all pages were zero, all charges dropped");
        assert!(sup.stats.zero_reversions >= 3);
    }

    #[test]
    fn nonzero_page_survives_eviction_and_keeps_its_charge() {
        let mut sup = small();
        let root = sup.ast.find(sup.root()).unwrap();
        sup.sup_write(root, 5, Word::new(0o123)).unwrap();
        sup.flush_segment(root).unwrap();
        let used = sup.ast.get(root).unwrap().quota.unwrap().used;
        assert_eq!(used, 1, "page 0 holds data, stays charged");
        assert_eq!(
            sup.sup_read(root, 5).unwrap(),
            Word::new(0o123),
            "data pages back in"
        );
    }

    #[test]
    fn quota_exhaustion_is_reported_and_not_charged() {
        let mut sup = Supervisor::boot(SupervisorConfig {
            root_quota_pages: 2,
            ..SupervisorConfig::default()
        });
        let root = sup.ast.find(sup.root()).unwrap();
        sup.service_page(root, 1, Label::BOTTOM).unwrap();
        let err = sup.service_page(root, 2, Label::BOTTOM).unwrap_err();
        assert!(matches!(
            err,
            LegacyError::QuotaExceeded { limit: 2, used: 2 }
        ));
        assert_eq!(
            sup.ast.get(root).unwrap().quota.unwrap().used,
            2,
            "failed charge rolled back"
        );
    }

    #[test]
    fn replacement_evicts_under_memory_pressure() {
        let mut sup = Supervisor::boot(SupervisorConfig {
            frames: 48, // wired ≈ 9, so ~39 pageable
            ast_slots: 16,
            max_processes: 4,
            packs: 1,
            records_per_pack: 128,
            toc_slots_per_pack: 16,
            root_quota_pages: 150,
        });
        let root = sup.ast.find(sup.root()).unwrap();
        // Touch more pages than there are pageable frames.
        let pages = sup.frames.pageable() + 8;
        for p in 0..pages {
            sup.sup_write(root, p * PAGE_WORDS as u32, Word::new(u64::from(p) + 1))
                .unwrap();
        }
        assert!(sup.stats.evictions > 0, "pressure forced evictions");
        // Every page still readable (paged back in on demand).
        for p in 0..pages {
            assert_eq!(
                sup.sup_read(root, p * PAGE_WORDS as u32).unwrap(),
                Word::new(u64::from(p) + 1)
            );
        }
    }

    #[test]
    fn flows_record_the_accounting_side_effect() {
        let mut sup = small();
        let root = sup.ast.find(sup.root()).unwrap();
        let secret = Label::new(mx_aim::Level(2), mx_aim::CompartmentSet::empty());
        sup.service_page(root, 1, secret).unwrap();
        // A level-2 subject updated the level-0 root quota cell: an
        // unlawful downward flow, recorded.
        assert!(sup.flows.violation_count() >= 1);
    }
}
