//! Process control: creation, the single-level scheduler, and the
//! process/VM loop.
//!
//! The old design keeps *every* process's state in segments: "process
//! control in turn depends upon segment control to provide segments in
//! which to store the states of inactive processes". Each process here
//! owns a *state segment* in the hierarchy (under `>processes`), touched
//! on every dispatch — so switching to a process can itself page, which
//! is the central dependency loop of Figure 3 made executable.

use crate::supervisor::{ProcState, Process, Supervisor, MAX_SEGNO};
use crate::types::{Acl, LegacyError, ProcessId, SegUid, UserId};
use mx_aim::Label;
use mx_hw::meter::Subsystem;
use mx_hw::{Language, Word};

const DISPATCH_INSTR: u64 = 45;
const CREATE_PROCESS_INSTR: u64 = 300;

impl Supervisor {
    /// Creates a process for `user` at AIM label `label`.
    ///
    /// Allocates a wired descriptor-segment frame, an empty KST, and a
    /// swappable state segment under `>processes`.
    ///
    /// # Errors
    ///
    /// [`LegacyError::NoSuchProcess`] when every process slot is taken.
    pub fn create_process(&mut self, user: UserId, label: Label) -> Result<ProcessId, LegacyError> {
        self.scoped(Subsystem::ProcessControl, |s| {
            s.create_process_body(user, label)
        })
    }

    fn create_process_body(
        &mut self,
        user: UserId,
        label: Label,
    ) -> Result<ProcessId, LegacyError> {
        self.charge(CREATE_PROCESS_INSTR, Language::Pli);
        let slot = (0..self.process_slots())
            .find(|s| self.processes[*s as usize].is_none())
            .ok_or(LegacyError::NoSuchProcess)?;
        let pid = ProcessId(slot);
        // The swappable state segment, in the hierarchy like any other.
        // All fallible hierarchy work happens BEFORE the slot is taken:
        // a failure here (quota, space, a salvage quarantine) must not
        // leak a table entry, or retrying the login drains the table.
        let proc_dir = self.ensure_processes_dir()?;
        let state_name = format!("proc-{}", self.next_uid);
        let state_uid = self.create_segment_in(proc_dir, &state_name, Acl::owner(user), label)?;
        let astx = self.activate(state_uid)?;
        self.sup_write(astx, 0, Word::new(u64::from(slot) + 1))?;
        let dseg_frame = self.dseg_frame_for_slot(slot);
        // Zero the descriptor segment: every SDW faulted. A reused slot's
        // old translations must not survive into the new process.
        self.machine.mem.zero_frame(dseg_frame);
        self.machine
            .tlb_invalidate_sdw_range(dseg_frame.base(), mx_hw::PAGE_WORDS as u64);
        let process = Process {
            id: pid,
            user,
            label,
            dseg_frame,
            kst: vec![None; MAX_SEGNO as usize],
            state: ProcState::Ready,
            state_uid: Some(state_uid),
            cpu_charge: 0,
        };
        self.processes[slot as usize] = Some(process);
        self.ready.push_back(pid);
        Ok(pid)
    }

    fn ensure_processes_dir(&mut self) -> Result<SegUid, LegacyError> {
        self.salvage_barrier_uid(self.root_uid)?;
        let root_astx = self.activate(self.root_uid)?;
        if let Some((_, e)) = self.lookup(root_astx, "processes")? {
            return Ok(e.uid);
        }
        self.create_directory_in(self.root_uid, "processes", Acl::new(), Label::BOTTOM)
    }

    /// Destroys a process: frees its slot and deletes its state segment's
    /// KST connections (the state segment itself stays for the
    /// accounting record, as in the real system until the answering
    /// service reaps it).
    ///
    /// # Errors
    ///
    /// [`LegacyError::NoSuchProcess`] if the process is unknown.
    pub fn destroy_process(&mut self, pid: ProcessId) -> Result<(), LegacyError> {
        self.scoped(Subsystem::ProcessControl, |s| s.destroy_process_body(pid))
    }

    fn destroy_process_body(&mut self, pid: ProcessId) -> Result<(), LegacyError> {
        // Disconnect from every active segment.
        let connected: Vec<usize> = self
            .ast
            .iter()
            .filter(|(_, a)| a.connections.iter().any(|(p, _)| *p == pid))
            .map(|(i, _)| i)
            .collect();
        for astx in connected {
            if let Some(aste) = self.ast.get_mut(astx) {
                aste.connections.retain(|(p, _)| *p != pid);
            }
        }
        let proc = self.process_mut(pid)?;
        proc.state = ProcState::Dead;
        self.ready.retain(|p| *p != pid);
        if self.current == Some(pid) {
            self.current = None;
        }
        self.processes[pid.0 as usize] = None;
        Ok(())
    }

    /// Dispatches the next ready process, touching its state segment
    /// (which may page — the loop) and charging the switch.
    ///
    /// Returns the process now running, if any.
    pub fn dispatch(&mut self) -> Option<ProcessId> {
        self.scoped(Subsystem::Scheduler, |s| s.dispatch_body())
    }

    fn dispatch_body(&mut self) -> Option<ProcessId> {
        self.charge(DISPATCH_INSTR, Language::Assembly);
        // Requeue the running process first so a lone process keeps
        // getting the processor.
        if let Some(prev) = self.current.take() {
            if let Ok(p) = self.process_mut(prev) {
                if p.state == ProcState::Running {
                    p.state = ProcState::Ready;
                    self.ready.push_back(prev);
                }
            }
        }
        let next = self.ready.pop_front()?;
        let cost = self.machine.cost;
        self.machine.clock.charge_process_switch(&cost);
        // Touch the incoming process's swappable state: may fault.
        if let Ok(p) = self.process(next) {
            if let Some(state_uid) = p.state_uid {
                if let Ok(astx) = self.activate(state_uid) {
                    let _ = self.sup_read(astx, 0);
                }
            }
        }
        if let Ok(p) = self.process_mut(next) {
            p.state = ProcState::Running;
            p.cpu_charge += 1;
        }
        self.current = Some(next);
        Some(next)
    }

    /// Models the faulting process giving its processor away while a
    /// page transfer completes: one switch out, one back.
    pub(crate) fn yield_for_io(&mut self, pid: ProcessId) {
        let cost = self.machine.cost;
        self.machine.clock.charge_process_switch(&cost);
        if let Ok(p) = self.process_mut(pid) {
            p.state = ProcState::Blocked;
        }
        // The transfer completes synchronously in the simulation; the
        // process is immediately resumed.
        self.machine.clock.charge_process_switch(&cost);
        if let Ok(p) = self.process_mut(pid) {
            p.state = ProcState::Running;
            p.cpu_charge += 1;
        }
    }

    /// Runs a user program under the old supervisor: steps the
    /// interpreter, servicing faults through the monolithic handlers
    /// (interpretive retranslation, quota walks and all).
    ///
    /// # Errors
    ///
    /// Protection and storage errors exactly as data references raise
    /// them.
    pub fn run_program(
        &mut self,
        pid: ProcessId,
        segno: u32,
        start: u32,
        max_steps: u64,
    ) -> Result<(u64, mx_hw::interp::Registers), LegacyError> {
        use mx_hw::interp::{step, Registers, StepOutcome};
        let cpu = self.load_dbr(pid)?;
        self.machine.cpus[cpu.0 as usize].retire_op();
        let mut regs = Registers::at(mx_hw::VirtAddr::new(segno, start));
        let mut steps = 0;
        while steps < max_steps {
            let cost = self.machine.cost;
            let r = {
                let mx_hw::Machine {
                    mem, clock, cpus, ..
                } = &mut self.machine;
                step(&mut cpus[cpu.0 as usize], mem, clock, &cost, &mut regs)
            };
            match r {
                Ok(StepOutcome::Ran) => steps += 1,
                Ok(StepOutcome::Halted) | Ok(StepOutcome::IllegalInstruction) => break,
                Err(fault) => self.handle_fault(pid, fault)?,
            }
        }
        Ok((steps, regs))
    }

    /// Number of live processes.
    pub fn live_processes(&self) -> usize {
        self.processes.iter().filter(|p| p.is_some()).count()
    }

    /// Accumulated accounting units for a process.
    ///
    /// # Errors
    ///
    /// [`LegacyError::NoSuchProcess`] if the process is unknown.
    pub fn cpu_charge(&self, pid: ProcessId) -> Result<u64, LegacyError> {
        Ok(self.process(pid)?.cpu_charge)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_process_builds_state_segment_in_hierarchy() {
        let mut sup = Supervisor::boot_default();
        let pid = sup.create_process(UserId(1), Label::BOTTOM).unwrap();
        let state_uid = sup.process(pid).unwrap().state_uid.unwrap();
        assert!(sup.ast.find(state_uid).is_some(), "state segment active");
        assert_eq!(sup.live_processes(), 1);
    }

    #[test]
    fn process_slots_exhaust_and_recycle() {
        let mut sup = Supervisor::boot(crate::supervisor::SupervisorConfig {
            max_processes: 2,
            ..Default::default()
        });
        let a = sup.create_process(UserId(1), Label::BOTTOM).unwrap();
        let _b = sup.create_process(UserId(2), Label::BOTTOM).unwrap();
        assert_eq!(
            sup.create_process(UserId(3), Label::BOTTOM).unwrap_err(),
            LegacyError::NoSuchProcess
        );
        sup.destroy_process(a).unwrap();
        // Slot freed; a new process reuses it with a fresh state segment.
        let c = sup.create_process(UserId(4), Label::BOTTOM).unwrap();
        assert_eq!(c, a, "slot recycled");
    }

    #[test]
    fn dispatch_round_robins_and_touches_state() {
        let mut sup = Supervisor::boot_default();
        let a = sup.create_process(UserId(1), Label::BOTTOM).unwrap();
        let b = sup.create_process(UserId(2), Label::BOTTOM).unwrap();
        let first = sup.dispatch().unwrap();
        let second = sup.dispatch().unwrap();
        let third = sup.dispatch().unwrap();
        assert_eq!(first, a);
        assert_eq!(second, b);
        assert_eq!(third, a, "round robin wraps");
        assert!(sup.machine.clock.process_switches() >= 3);
    }

    #[test]
    fn destroyed_process_never_scheduled() {
        let mut sup = Supervisor::boot_default();
        let a = sup.create_process(UserId(1), Label::BOTTOM).unwrap();
        let b = sup.create_process(UserId(2), Label::BOTTOM).unwrap();
        sup.destroy_process(a).unwrap();
        assert_eq!(sup.dispatch(), Some(b));
        assert_eq!(sup.dispatch(), Some(b));
    }
}
