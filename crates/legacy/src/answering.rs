//! The in-kernel answering service.
//!
//! "The Answering Service: the programs that regulate attempts to log in
//! to the system, including authenticating passwords, and manage system
//! accounting. These programs were the equivalent of 10,000 lines of PL/I
//! code" — all of it trusted. Montgomery's study showed fewer than 1,000
//! of those lines need protection; the restructured version lives in
//! `mx-user` with only a small residue gate in the kernel.
//!
//! Here is the old shape: registration, password authentication, process
//! creation, and accounting all execute as one privileged blob.

use crate::supervisor::Supervisor;
use crate::types::{LegacyError, ProcessId, UserId};
use mx_aim::Label;
use mx_hw::meter::Subsystem;
use mx_hw::Language;

/// Cost of the monolithic login path (10K lines of trusted PL/I do a lot
/// of work per login).
const LOGIN_INSTR: u64 = 900;
const LOGOUT_INSTR: u64 = 250;

/// A registered user account.
#[derive(Debug, Clone)]
pub struct UserAccount {
    /// The user's id.
    pub user: UserId,
    /// Hash of the password (FNV-1a over the cleartext; the experiments
    /// need determinism, not cryptography).
    pub password_hash: u64,
    /// The highest AIM label the user may log in at.
    pub clearance: Label,
    /// Accounting: accumulated charge units across sessions.
    pub charge_units: u64,
    /// Number of completed sessions.
    pub sessions: u64,
}

/// Deterministic FNV-1a used for password comparison.
pub fn password_hash(cleartext: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in cleartext.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl Supervisor {
    /// Registers a user with a password and an AIM clearance.
    pub fn register_user(&mut self, name: &str, user: UserId, password: &str, clearance: Label) {
        self.users.insert(
            name.to_string(),
            UserAccount {
                user,
                password_hash: password_hash(password),
                clearance,
                charge_units: 0,
                sessions: 0,
            },
        );
    }

    /// The monolithic login: authenticate, check the requested label
    /// against the clearance, create the process, open the accounting
    /// record — all inside the kernel.
    ///
    /// # Errors
    ///
    /// [`LegacyError::UnknownUser`], [`LegacyError::BadPassword`],
    /// [`LegacyError::AimViolation`] (label above clearance), or process
    /// creation errors.
    pub fn login(
        &mut self,
        name: &str,
        password: &str,
        label: Label,
    ) -> Result<ProcessId, LegacyError> {
        self.scoped(Subsystem::AnsweringService, |s| {
            s.charge(LOGIN_INSTR, Language::Pli);
            let account = s.users.get(name).ok_or(LegacyError::UnknownUser)?;
            if account.password_hash != password_hash(password) {
                return Err(LegacyError::BadPassword);
            }
            if !account.clearance.dominates(label) {
                return Err(LegacyError::AimViolation);
            }
            let user = account.user;
            s.create_process(user, label)
        })
    }

    /// Logout: finalize accounting and destroy the process.
    ///
    /// # Errors
    ///
    /// [`LegacyError::NoSuchProcess`] / [`LegacyError::UnknownUser`].
    pub fn logout(&mut self, name: &str, pid: ProcessId) -> Result<u64, LegacyError> {
        self.scoped(Subsystem::AnsweringService, |s| {
            s.charge(LOGOUT_INSTR, Language::Pli);
            let used = s.cpu_charge(pid)?;
            s.destroy_process(pid)?;
            let account = s.users.get_mut(name).ok_or(LegacyError::UnknownUser)?;
            account.charge_units += used;
            account.sessions += 1;
            Ok(used)
        })
    }

    /// A user's accumulated charge units.
    pub fn account_charge(&self, name: &str) -> Option<u64> {
        self.users.get(name).map(|a| a.charge_units)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx_aim::{CompartmentSet, Level};

    fn secret() -> Label {
        Label::new(Level(2), CompartmentSet::empty())
    }

    #[test]
    fn login_logout_cycle_bills_the_account() {
        let mut sup = Supervisor::boot_default();
        sup.register_user("saltzer", UserId(1), "cactus", secret());
        let pid = sup.login("saltzer", "cactus", Label::BOTTOM).unwrap();
        sup.dispatch();
        let used = sup.logout("saltzer", pid).unwrap();
        assert!(used > 0, "dispatching accrued charge");
        assert_eq!(sup.account_charge("saltzer"), Some(used));
        assert_eq!(sup.live_processes(), 0);
    }

    #[test]
    fn bad_password_and_unknown_user_rejected() {
        let mut sup = Supervisor::boot_default();
        sup.register_user("clark", UserId(2), "arpa", Label::BOTTOM);
        assert_eq!(
            sup.login("clark", "wrong", Label::BOTTOM).unwrap_err(),
            LegacyError::BadPassword
        );
        assert_eq!(
            sup.login("nobody", "x", Label::BOTTOM).unwrap_err(),
            LegacyError::UnknownUser
        );
    }

    #[test]
    fn login_above_clearance_denied() {
        let mut sup = Supervisor::boot_default();
        sup.register_user("low", UserId(3), "pw", Label::BOTTOM);
        assert_eq!(
            sup.login("low", "pw", secret()).unwrap_err(),
            LegacyError::AimViolation
        );
    }

    #[test]
    fn login_storm_beyond_slots_is_a_typed_refusal_never_a_panic() {
        let mut sup = Supervisor::boot(crate::supervisor::SupervisorConfig {
            max_processes: 3,
            ..Default::default()
        });
        for i in 0..5 {
            sup.register_user(&format!("u{i}"), UserId(10 + i), "pw", Label::BOTTOM);
        }
        let mut live = Vec::new();
        let mut refused = 0;
        for i in 0..5 {
            match sup.login(&format!("u{i}"), "pw", Label::BOTTOM) {
                Ok(pid) => live.push(pid),
                Err(LegacyError::NoSuchProcess) => refused += 1,
                Err(e) => panic!("unexpected refusal {e:?}"),
            }
        }
        assert_eq!(live.len(), 3, "every slot filled");
        assert_eq!(refused, 2, "the old design refuses the overflow");
        // A freed slot serves the next attempt: the caller's retry loop
        // is the old design's only admission policy.
        sup.logout("u0", live[0]).unwrap();
        assert!(sup.login("u3", "pw", Label::BOTTOM).is_ok());
    }

    #[test]
    fn double_logout_is_a_typed_error() {
        let mut sup = Supervisor::boot_default();
        sup.register_user("once", UserId(6), "pw", Label::BOTTOM);
        let pid = sup.login("once", "pw", Label::BOTTOM).unwrap();
        sup.logout("once", pid).unwrap();
        assert_eq!(
            sup.logout("once", pid).unwrap_err(),
            LegacyError::NoSuchProcess
        );
        assert_eq!(sup.users.get("once").unwrap().sessions, 1, "billed once");
    }

    #[test]
    fn logout_of_never_logged_in_user_is_a_typed_error() {
        let mut sup = Supervisor::boot_default();
        sup.register_user("ghost", UserId(7), "pw", Label::BOTTOM);
        assert_eq!(
            sup.logout("ghost", ProcessId(2)).unwrap_err(),
            LegacyError::NoSuchProcess
        );
    }

    #[test]
    fn abandoned_session_slot_is_reused_after_reap() {
        let mut sup = Supervisor::boot(crate::supervisor::SupervisorConfig {
            max_processes: 2,
            ..Default::default()
        });
        sup.register_user("a", UserId(1), "pw", Label::BOTTOM);
        sup.register_user("b", UserId(2), "pw", Label::BOTTOM);
        sup.register_user("c", UserId(3), "pw", Label::BOTTOM);
        let _a = sup.login("a", "pw", Label::BOTTOM).unwrap();
        let b = sup.login("b", "pw", Label::BOTTOM).unwrap();
        // b abandons the terminal; the operator reaps the session.
        sup.logout("b", b).unwrap();
        let c = sup.login("c", "pw", Label::BOTTOM).unwrap();
        assert_eq!(c, b, "the abandoned slot is recycled");
    }

    #[test]
    fn login_at_or_below_clearance_allowed() {
        let mut sup = Supervisor::boot_default();
        sup.register_user("high", UserId(4), "pw", secret());
        assert!(sup.login("high", "pw", Label::BOTTOM).is_ok());
        assert!(sup.login("high", "pw", secret()).is_ok());
    }
}
