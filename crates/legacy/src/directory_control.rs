//! Directory control: the hierarchy, ACLs, pathname resolution, quota
//! designation.
//!
//! Directory representations are stored in segments, so every operation
//! here really pages: an entry is a 16-word record written through
//! [`Supervisor::sup_write`], and a lookup is a scan of those records
//! through [`Supervisor::sup_read`].
//!
//! Two of the paper's semantic case studies live here in their *old*
//! form:
//!
//! * **Buried pathname search.** `resolve` follows a tree name through
//!   directories the caller may not be able to read, checks only the
//!   final target's ACL, and answers either "file found" or the
//!   deliberately uninformative [`LegacyError::NoAccess`].
//! * **Dynamic quota directories.** Any directory may be designated a
//!   quota directory *at any time*, which forces an expensive
//!   subtree-usage computation and charge migration — the complexity
//!   that drove the new design's childless-only rule.

use crate::supervisor::{Branch, KstEntry, Supervisor, MAX_SEGNO};
use crate::types::{AccessRight, Acl, DiskHome, LegacyError, ProcessId, SegUid};
use mx_aim::{AccessKind, CompartmentSet, Label, Level, ReferenceMonitor};
use mx_hw::meter::Subsystem;
use mx_hw::{Language, PackId, TocIndex, Word};

/// Words per directory entry record.
pub const ENTRY_WORDS: u32 = 16;
/// Characters per name (8 words of four 9-bit characters).
pub const NAME_CHARS: usize = 32;

const LOOKUP_INSTR_PER_ENTRY: u64 = 12;
const CREATE_INSTR: u64 = 150;
const QUOTA_SWEEP_INSTR_PER_OBJECT: u64 = 60;

/// A decoded directory entry record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryRecord {
    /// The named object's uid.
    pub uid: SegUid,
    /// True if the entry names a directory.
    pub is_dir: bool,
    /// True if the directory is a quota directory.
    pub quota_dir: bool,
    /// Containing pack.
    pub pack: PackId,
    /// Index into the pack's table of contents.
    pub toc: TocIndex,
    /// Entry name (up to 32 characters).
    pub name: String,
    /// Discretionary access control list.
    pub acl: Acl,
    /// AIM label of the object.
    pub label: Label,
    /// Quota limit (quota directories only).
    pub quota_limit: u32,
    /// Persisted quota use count (quota directories only).
    pub quota_used: u32,
}

fn pack_name(name: &str) -> [Word; 8] {
    let mut words = [Word::ZERO; 8];
    for (i, b) in name.bytes().take(NAME_CHARS).enumerate() {
        let w = i / 4;
        let shift = (i % 4) as u32 * 9;
        words[w] = Word::new(words[w].raw() | (u64::from(b) << shift));
    }
    words
}

pub(crate) fn unpack_name(words: &[Word; 8]) -> String {
    let mut out = String::new();
    for w in words {
        for c in 0..4 {
            let b = ((w.raw() >> (c * 9)) & 0x1FF) as u8;
            if b == 0 {
                return out;
            }
            out.push(b as char);
        }
    }
    out
}

fn pack_label(label: Label) -> u64 {
    u64::from(label.level.0 & 0x7) | (label.compartments.bits() & 0xFF_FFFF) << 3
}

fn unpack_label(bits: u64) -> Label {
    Label::new(
        Level((bits & 0x7) as u8),
        CompartmentSet::from_bits((bits >> 3) & 0xFF_FFFF),
    )
}

impl Supervisor {
    // ----- entry record codec -------------------------------------------

    /// Word offset of entry `slot` within a directory segment.
    fn entry_base(slot: u32) -> u32 {
        1 + slot * ENTRY_WORDS
    }

    /// Number of entry slots ever used in the directory at `astx`.
    pub(crate) fn entry_count(&mut self, astx: usize) -> Result<u32, LegacyError> {
        Ok(self.sup_read(astx, 0)?.raw() as u32)
    }

    /// Reads and decodes entry `slot` of the directory at `astx`.
    ///
    /// # Errors
    ///
    /// [`LegacyError::NoAccess`] if the slot is unused; paging errors
    /// otherwise.
    pub fn read_entry(&mut self, astx: usize, slot: u32) -> Result<EntryRecord, LegacyError> {
        let base = Self::entry_base(slot);
        let flags = self.sup_read(astx, base + 1)?.raw();
        if flags & 1 == 0 {
            return Err(LegacyError::NoAccess);
        }
        let uid = SegUid(self.sup_read(astx, base)?.raw());
        let pack = PackId(self.sup_read(astx, base + 2)?.raw() as u32);
        let toc = TocIndex(self.sup_read(astx, base + 3)?.raw() as u32);
        let mut name_words = [Word::ZERO; 8];
        for (i, w) in name_words.iter_mut().enumerate() {
            *w = self.sup_read(astx, base + 4 + i as u32)?;
        }
        let users = self.sup_read(astx, base + 12)?.raw();
        let rights = self.sup_read(astx, base + 13)?.raw();
        let quota_limit = self.sup_read(astx, base + 14)?.raw() as u32;
        let quota_used = self.sup_read(astx, base + 15)?.raw() as u32;
        Ok(EntryRecord {
            uid,
            is_dir: flags & 2 != 0,
            quota_dir: flags & 4 != 0,
            pack,
            toc,
            name: unpack_name(&name_words),
            acl: Acl::unpack(users, rights),
            label: unpack_label(flags >> 3),
            quota_limit,
            quota_used,
        })
    }

    /// Encodes and writes a full entry record into `slot`.
    pub(crate) fn write_entry(
        &mut self,
        astx: usize,
        slot: u32,
        entry: &EntryRecord,
    ) -> Result<(), LegacyError> {
        let base = Self::entry_base(slot);
        let mut flags = 1u64;
        if entry.is_dir {
            flags |= 2;
        }
        if entry.quota_dir {
            flags |= 4;
        }
        flags |= pack_label(entry.label) << 3;
        self.sup_write(astx, base, Word::new(entry.uid.0))?;
        self.sup_write(astx, base + 1, Word::new(flags))?;
        self.sup_write(astx, base + 2, Word::new(u64::from(entry.pack.0)))?;
        self.sup_write(astx, base + 3, Word::new(u64::from(entry.toc.0)))?;
        for (i, w) in pack_name(&entry.name).iter().enumerate() {
            self.sup_write(astx, base + 4 + i as u32, *w)?;
        }
        let (users, rights) = entry.acl.pack();
        self.sup_write(astx, base + 12, Word::new(users))?;
        self.sup_write(astx, base + 13, Word::new(rights))?;
        self.sup_write(astx, base + 14, Word::new(u64::from(entry.quota_limit)))?;
        self.sup_write(astx, base + 15, Word::new(u64::from(entry.quota_used)))?;
        Ok(())
    }

    /// Rewrites only the disk home of an entry (relocation's direct
    /// update).
    pub(crate) fn write_entry_home(
        &mut self,
        astx: usize,
        slot: u32,
        home: DiskHome,
    ) -> Result<(), LegacyError> {
        let base = Self::entry_base(slot);
        self.sup_write(astx, base + 2, Word::new(u64::from(home.pack.0)))?;
        self.sup_write(astx, base + 3, Word::new(u64::from(home.toc.0)))?;
        Ok(())
    }

    /// Rewrites only the quota words of an entry (deactivation persists
    /// the cached cell).
    pub(crate) fn write_entry_quota(
        &mut self,
        astx: usize,
        slot: u32,
        limit: u32,
        used: u32,
    ) -> Result<(), LegacyError> {
        let base = Self::entry_base(slot);
        self.sup_write(astx, base + 14, Word::new(u64::from(limit)))?;
        self.sup_write(astx, base + 15, Word::new(u64::from(used)))?;
        Ok(())
    }

    /// Scans the directory at `astx` for `name`; returns (slot, entry).
    pub(crate) fn lookup(
        &mut self,
        astx: usize,
        name: &str,
    ) -> Result<Option<(u32, EntryRecord)>, LegacyError> {
        let count = self.entry_count(astx)?;
        for slot in 0..count {
            self.charge(LOOKUP_INSTR_PER_ENTRY, Language::Pli);
            match self.read_entry(astx, slot) {
                Ok(e) if e.name == name => return Ok(Some((slot, e))),
                Ok(_) | Err(LegacyError::NoAccess) => continue,
                Err(other) => return Err(other),
            }
        }
        Ok(None)
    }

    // ----- creation ------------------------------------------------------

    /// Creates a directory named `name` inside the directory `parent`.
    ///
    /// # Errors
    ///
    /// [`LegacyError::NameDuplicated`] on a name clash; paging and disk
    /// errors otherwise.
    pub fn create_directory_in(
        &mut self,
        parent: SegUid,
        name: &str,
        acl: Acl,
        label: Label,
    ) -> Result<SegUid, LegacyError> {
        self.scoped(Subsystem::DirectoryControl, |s| {
            s.create_object(parent, name, acl, label, true)
        })
    }

    /// Creates a data segment named `name` inside the directory `parent`.
    ///
    /// # Errors
    ///
    /// [`LegacyError::NameDuplicated`] on a name clash; paging and disk
    /// errors otherwise.
    pub fn create_segment_in(
        &mut self,
        parent: SegUid,
        name: &str,
        acl: Acl,
        label: Label,
    ) -> Result<SegUid, LegacyError> {
        self.scoped(Subsystem::DirectoryControl, |s| {
            s.create_object(parent, name, acl, label, false)
        })
    }

    fn create_object(
        &mut self,
        parent: SegUid,
        name: &str,
        acl: Acl,
        label: Label,
        is_dir: bool,
    ) -> Result<SegUid, LegacyError> {
        self.charge(CREATE_INSTR, Language::Pli);
        self.salvage_barrier_uid(parent)?;
        let parent_astx = self.activate(parent)?;
        if !self.ast.get(parent_astx).expect("active parent").is_dir {
            return Err(LegacyError::NotADirectory);
        }
        if self.lookup(parent_astx, name)?.is_some() {
            return Err(LegacyError::NameDuplicated);
        }
        // Place the new object on its parent's pack when possible so
        // subtrees cluster (and packs genuinely fill).
        let parent_pack = self.ast.get(parent_astx).expect("active parent").home.pack;
        let uid = self.allocate_uid();
        let toc = match self
            .machine
            .disks
            .pack_mut(parent_pack)
            .map_err(LegacyError::Disk)?
            .create_entry(uid.0)
        {
            Ok(t) => (parent_pack, t),
            Err(_) => {
                let alt = self
                    .machine
                    .disks
                    .emptiest_pack(parent_pack)
                    .ok_or(LegacyError::AllPacksFull)?;
                let t = self
                    .machine
                    .disks
                    .pack_mut(alt)
                    .map_err(LegacyError::Disk)?
                    .create_entry(uid.0)
                    .map_err(|_| LegacyError::AllPacksFull)?;
                (alt, t)
            }
        };

        // Claim an entry slot: first unused, else extend.
        let count = self.entry_count(parent_astx)?;
        let mut slot = count;
        for s in 0..count {
            let flags = self.sup_read(parent_astx, Self::entry_base(s) + 1)?.raw();
            if flags & 1 == 0 {
                slot = s;
                break;
            }
        }
        if slot == count {
            self.sup_write(parent_astx, 0, Word::new(u64::from(count + 1)))?;
        }
        let entry = EntryRecord {
            uid,
            is_dir,
            quota_dir: false,
            pack: toc.0,
            toc: toc.1,
            name: name.to_string(),
            acl,
            label,
            quota_limit: 0,
            quota_used: 0,
        };
        self.write_entry(parent_astx, slot, &entry)?;
        self.branch_table.insert(
            uid,
            Branch {
                parent: Some(parent),
                slot,
                is_dir,
            },
        );
        self.salvage_note_created(
            uid,
            DiskHome {
                pack: toc.0,
                toc: toc.1,
            },
            is_dir,
        );
        Ok(uid)
    }

    // ----- pathname resolution (buried in the kernel) ---------------------

    /// Resolves a `>`-separated tree name, entirely inside the kernel.
    ///
    /// Intermediate directories are traversed *without* access checks;
    /// only the final target's ACL (and AIM label) is consulted, and the
    /// only failure answer is [`LegacyError::NoAccess`] — which by design
    /// does not reveal whether the name exists.
    ///
    /// # Errors
    ///
    /// [`LegacyError::NoAccess`] uniformly for nonexistent or forbidden
    /// targets.
    pub fn resolve(
        &mut self,
        pid: ProcessId,
        path: &str,
        right: AccessRight,
    ) -> Result<(SegUid, EntryRecord), LegacyError> {
        self.scoped(Subsystem::DirectoryControl, |s| {
            s.resolve_body(pid, path, right)
        })
    }

    fn resolve_body(
        &mut self,
        pid: ProcessId,
        path: &str,
        right: AccessRight,
    ) -> Result<(SegUid, EntryRecord), LegacyError> {
        let (user, plabel) = {
            let p = self.process(pid)?;
            (p.user, p.label)
        };
        self.salvage_barrier_uid(self.root_uid)?;
        let mut dir_astx = self.activate(self.root_uid)?;
        let mut components = path.split('>').filter(|c| !c.is_empty()).peekable();
        if components.peek().is_none() {
            return Err(LegacyError::NoAccess);
        }
        loop {
            let comp = components.next().expect("peeked nonempty");
            let found = self.lookup(dir_astx, comp)?;
            let Some((_slot, entry)) = found else {
                return Err(LegacyError::NoAccess);
            };
            if components.peek().is_none() {
                // Final component: the one place access is checked.
                if !entry.acl.permits(user, right) {
                    return Err(LegacyError::NoAccess);
                }
                let kind = match right {
                    AccessRight::Write => AccessKind::Write,
                    _ => AccessKind::Read,
                };
                if !ReferenceMonitor::decide(plabel, entry.label, kind).granted() {
                    return Err(LegacyError::NoAccess);
                }
                if entry.is_dir {
                    self.salvage_barrier_uid(entry.uid)?;
                }
                return Ok((entry.uid, entry));
            }
            if !entry.is_dir {
                // Not a directory mid-path: still just "no access".
                return Err(LegacyError::NoAccess);
            }
            self.salvage_barrier_uid(entry.uid)?;
            dir_astx = self.activate(entry.uid)?;
        }
    }

    /// Makes a segment known to a process: resolves the path, picks a
    /// free segment number, and records the effective access in the KST.
    /// The SDW is left faulted; first reference activates and connects.
    ///
    /// # Errors
    ///
    /// [`LegacyError::NoAccess`] per the resolution rules;
    /// [`LegacyError::KstFull`] when no segment number is free.
    pub fn initiate(&mut self, pid: ProcessId, path: &str) -> Result<u32, LegacyError> {
        self.scoped(Subsystem::DirectoryControl, |s| s.initiate_body(pid, path))
    }

    fn initiate_body(&mut self, pid: ProcessId, path: &str) -> Result<u32, LegacyError> {
        // Resolution for initiation needs *some* access to the target.
        let (user, plabel) = {
            let p = self.process(pid)?;
            (p.user, p.label)
        };
        let (uid, entry) = self
            .resolve(pid, path, AccessRight::Read)
            .or_else(|_| self.resolve(pid, path, AccessRight::Write))
            .or_else(|_| self.resolve(pid, path, AccessRight::Execute))?;
        // Effective access: ACL ∩ AIM.
        let aim_read = ReferenceMonitor::decide(plabel, entry.label, AccessKind::Read).granted();
        let aim_write = ReferenceMonitor::decide(plabel, entry.label, AccessKind::Write).granted();
        let kst_entry = KstEntry {
            uid,
            read: entry.acl.permits(user, AccessRight::Read) && aim_read,
            write: entry.acl.permits(user, AccessRight::Write) && aim_write,
            execute: entry.acl.permits(user, AccessRight::Execute) && aim_read,
        };
        let proc = self.process_mut(pid)?;
        let segno = proc
            .kst
            .iter()
            .enumerate()
            .skip(1)
            .find(|(_, e)| e.is_none())
            .map(|(i, _)| i as u32)
            .ok_or(LegacyError::KstFull)?;
        if segno >= MAX_SEGNO {
            return Err(LegacyError::KstFull);
        }
        proc.kst[segno as usize] = Some(kst_entry);
        Ok(segno)
    }

    // ----- dynamic quota designation --------------------------------------

    /// Designates `path` as a quota directory with the given limit — at
    /// any time, children or not (the old semantics). Requires modify
    /// access to the directory. The current subtree usage is computed by
    /// sweeping the hierarchy and migrated from the superior quota cell.
    ///
    /// # Errors
    ///
    /// [`LegacyError::QuotaCellBusy`] if already a quota directory;
    /// [`LegacyError::NoAccess`] / paging errors otherwise.
    pub fn set_quota_directory(
        &mut self,
        pid: ProcessId,
        path: &str,
        limit: u32,
    ) -> Result<(), LegacyError> {
        self.scoped(Subsystem::DirectoryControl, |s| {
            s.set_quota_directory_body(pid, path, limit)
        })
    }

    fn set_quota_directory_body(
        &mut self,
        pid: ProcessId,
        path: &str,
        limit: u32,
    ) -> Result<(), LegacyError> {
        let (uid, entry) = self.resolve(pid, path, AccessRight::Write)?;
        if !entry.is_dir {
            return Err(LegacyError::NotADirectory);
        }
        if entry.quota_dir {
            return Err(LegacyError::QuotaCellBusy);
        }
        let astx = self.activate(uid)?;
        // The expensive part the paper's semantics change removes: sweep
        // the subtree for current usage.
        let used = self.subtree_usage(uid)?;
        if used > limit {
            return Err(LegacyError::QuotaExceeded { limit, used });
        }
        // Migrate the charge out of the superior cell.
        if let Some(parent) = self.ast.get(astx).expect("active").parent {
            let (qdir, _) = self.ast.nearest_quota_dir(parent).expect("root cell");
            let cell = self
                .ast
                .get_mut(qdir)
                .expect("qdir")
                .quota
                .as_mut()
                .expect("cell");
            cell.used = cell.used.saturating_sub(used);
        }
        self.ast.get_mut(astx).expect("active").quota = Some(crate::ast::QuotaCell { limit, used });
        // Persist the designation in the directory's own entry.
        let branch = self.branch_table[&uid];
        if let Some(parent_uid) = branch.parent {
            let parent_astx = self.activate(parent_uid)?;
            let mut e = self.read_entry(parent_astx, branch.slot)?;
            e.quota_dir = true;
            e.quota_limit = limit;
            e.quota_used = used;
            self.write_entry(parent_astx, branch.slot, &e)?;
        }
        Ok(())
    }

    /// Removes a quota designation, migrating the charge back to the
    /// superior cell (old semantics: allowed any time).
    ///
    /// # Errors
    ///
    /// [`LegacyError::QuotaCellBusy`] if the directory is not a quota
    /// directory.
    pub fn clear_quota_directory(&mut self, pid: ProcessId, path: &str) -> Result<(), LegacyError> {
        self.scoped(Subsystem::DirectoryControl, |s| {
            s.clear_quota_directory_body(pid, path)
        })
    }

    fn clear_quota_directory_body(
        &mut self,
        pid: ProcessId,
        path: &str,
    ) -> Result<(), LegacyError> {
        let (uid, entry) = self.resolve(pid, path, AccessRight::Write)?;
        if !entry.is_dir || !entry.quota_dir {
            return Err(LegacyError::QuotaCellBusy);
        }
        let astx = self.activate(uid)?;
        let cell = self
            .ast
            .get(astx)
            .expect("active")
            .quota
            .ok_or(LegacyError::QuotaCellBusy)?;
        self.ast.get_mut(astx).expect("active").quota = None;
        if let Some(parent) = self.ast.get(astx).expect("active").parent {
            let (qdir, _) = self.ast.nearest_quota_dir(parent).expect("root cell");
            let sup_cell = self
                .ast
                .get_mut(qdir)
                .expect("qdir")
                .quota
                .as_mut()
                .expect("cell");
            sup_cell.used += cell.used;
        }
        let branch = self.branch_table[&uid];
        if let Some(parent_uid) = branch.parent {
            let parent_astx = self.activate(parent_uid)?;
            let mut e = self.read_entry(parent_astx, branch.slot)?;
            e.quota_dir = false;
            e.quota_limit = 0;
            e.quota_used = 0;
            self.write_entry(parent_astx, branch.slot, &e)?;
        }
        Ok(())
    }

    /// Pages occupied by the subtree rooted at `uid`, excluding regions
    /// below inferior quota directories. Sweeps the branch table and
    /// reads directory entries (with real paging) — the cost the new
    /// design's childless-only rule avoids.
    pub(crate) fn subtree_usage(&mut self, root: SegUid) -> Result<u32, LegacyError> {
        // The sweep activates directories as it descends, which the
        // online salvager cannot tolerate on quarantined ones.
        self.salvage_barrier_uid(root)?;
        // The subtree root's own directory pages stay charged to the
        // superior cell ("the nearest *superior* quota directory"), so
        // only strictly inferior objects are counted.
        let mut total = 0u32;
        let children: Vec<SegUid> = self
            .branch_table
            .iter()
            .filter(|(_, b)| b.parent == Some(root))
            .map(|(u, _)| *u)
            .collect();
        for child in children {
            self.charge(QUOTA_SWEEP_INSTR_PER_OBJECT, Language::Pli);
            let branch = self.branch_table[&child];
            let parent_astx = self.activate(root)?;
            let entry = self.read_entry(parent_astx, branch.slot)?;
            if entry.is_dir {
                if entry.quota_dir {
                    // Below an inferior quota directory — but the
                    // inferior quota directory's own pages charge here.
                    total += self.object_records(child)?;
                    continue;
                }
                total += self.object_records(child)?;
                total += self.subtree_usage(child)?;
            } else {
                total += self.object_records(child)?;
            }
        }
        Ok(total)
    }

    /// Records currently occupied by one object (its chargeable pages).
    fn object_records(&mut self, uid: SegUid) -> Result<u32, LegacyError> {
        let home = if uid == self.root_uid {
            self.root_home
        } else {
            let branch = self
                .branch_table
                .get(&uid)
                .copied()
                .ok_or(LegacyError::NoAccess)?;
            let parent_astx = self.activate(branch.parent.expect("non-root"))?;
            let e = self.read_entry(parent_astx, branch.slot)?;
            DiskHome {
                pack: e.pack,
                toc: e.toc,
            }
        };
        Ok(self
            .machine
            .disks
            .pack(home.pack)
            .ok()
            .and_then(|p| p.entry(home.toc).ok())
            .map(|e| e.records_used())
            .unwrap_or(0))
    }

    /// Deletes a leaf object (an empty directory or a segment): frees
    /// its records and charges, removes its entry, deactivates it.
    ///
    /// # Errors
    ///
    /// [`LegacyError::NoAccess`] if the path does not resolve with write
    /// access, or the directory is not empty.
    pub fn delete(&mut self, pid: ProcessId, path: &str) -> Result<(), LegacyError> {
        self.scoped(Subsystem::DirectoryControl, |s| s.delete_body(pid, path))
    }

    fn delete_body(&mut self, pid: ProcessId, path: &str) -> Result<(), LegacyError> {
        let (uid, entry) = self.resolve(pid, path, AccessRight::Write)?;
        if entry.is_dir {
            let has_children = self.branch_table.values().any(|b| b.parent == Some(uid));
            if has_children {
                return Err(LegacyError::NoAccess);
            }
        }
        // Deactivate (flushing pages is unnecessary: we drop them).
        if let Some(astx) = self.ast.find(uid) {
            if self.ast.get(astx).expect("found").inferiors > 0 {
                return Err(LegacyError::NoAccess);
            }
            let records = self.object_records(uid)?;
            if records > 0 {
                self.quota_uncharge(astx, records);
            }
            for (frame, pageno) in self.frames.frames_of(astx) {
                self.set_ptw(astx, pageno, Default::default());
                self.frames.release(frame);
            }
            let aste = self.ast.get(astx).expect("found").clone();
            for (cpid, segno) in aste.connections {
                if self
                    .processes
                    .get(cpid.0 as usize)
                    .and_then(|p| p.as_ref())
                    .is_some()
                {
                    self.set_sdw(cpid, segno, Default::default());
                }
            }
            self.ast.deactivate(astx);
        } else {
            // Not active: the object has no AST entry to anchor the
            // quota walk, so start it at the containing directory
            // *itself* — which may be the governing quota cell. Passing
            // the parent to `quota_uncharge` would skip it and uncharge
            // the next cell up (the cell then reads high forever, until
            // a spurious quota fault or a salvage).
            let records = self.object_records(uid)?;
            if records > 0 {
                let branch = self.branch_table[&uid];
                let parent_astx = self.activate(branch.parent.expect("non-root"))?;
                self.quota_uncharge_from(parent_astx, records);
            }
        }
        let branch = self.branch_table.remove(&uid).expect("resolved object");
        let parent_astx = self.activate(branch.parent.expect("non-root"))?;
        let e = self.read_entry(parent_astx, branch.slot)?;
        self.machine
            .disks
            .pack_mut(e.pack)
            .map_err(LegacyError::Disk)?
            .delete_entry(e.toc)
            .map_err(LegacyError::Disk)?;
        // Clear the in-use flag.
        self.sup_write(parent_astx, Self::entry_base(branch.slot) + 1, Word::ZERO)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::UserId;

    fn boot_with_user() -> (Supervisor, ProcessId, UserId) {
        let mut sup = Supervisor::boot_default();
        let user = UserId(1);
        let pid = sup.create_process(user, Label::BOTTOM).unwrap();
        (sup, pid, user)
    }

    #[test]
    fn name_codec_round_trip() {
        for name in ["a", "alpha.beta", "x".repeat(32).as_str()] {
            assert_eq!(unpack_name(&pack_name(name)), name);
        }
    }

    #[test]
    fn create_and_resolve_nested_path() {
        let (mut sup, pid, user) = boot_with_user();
        let a = sup
            .create_directory_in(sup.root(), "a", Acl::owner(user), Label::BOTTOM)
            .unwrap();
        let b = sup
            .create_directory_in(a, "b", Acl::owner(user), Label::BOTTOM)
            .unwrap();
        let leaf = sup
            .create_segment_in(b, "leaf", Acl::owner(user), Label::BOTTOM)
            .unwrap();
        let (uid, entry) = sup.resolve(pid, "a>b>leaf", AccessRight::Read).unwrap();
        assert_eq!(uid, leaf);
        assert!(!entry.is_dir);
        assert_eq!(entry.name, "leaf");
    }

    #[test]
    fn nonexistent_and_forbidden_answers_are_identical() {
        let (mut sup, pid, user) = boot_with_user();
        let a = sup
            .create_directory_in(sup.root(), "a", Acl::owner(user), Label::BOTTOM)
            .unwrap();
        // A file owned (and readable) only by user 9.
        sup.create_segment_in(a, "private", Acl::owner(UserId(9)), Label::BOTTOM)
            .unwrap();
        let forbidden = sup
            .resolve(pid, "a>private", AccessRight::Read)
            .unwrap_err();
        let missing = sup.resolve(pid, "a>ghost", AccessRight::Read).unwrap_err();
        assert_eq!(forbidden, missing, "the caller cannot tell the cases apart");
        assert_eq!(forbidden, LegacyError::NoAccess);
    }

    #[test]
    fn resolution_traverses_inaccessible_intermediate_directories() {
        let (mut sup, pid, user) = boot_with_user();
        // The intermediate dir is readable only by user 9, but the final
        // target grants our user: old Multics grants the access.
        let locked = sup
            .create_directory_in(sup.root(), "locked", Acl::owner(UserId(9)), Label::BOTTOM)
            .unwrap();
        sup.create_segment_in(locked, "mine", Acl::owner(user), Label::BOTTOM)
            .unwrap();
        assert!(sup.resolve(pid, "locked>mine", AccessRight::Read).is_ok());
    }

    #[test]
    fn duplicate_names_rejected() {
        let (mut sup, _pid, user) = boot_with_user();
        sup.create_segment_in(sup.root(), "x", Acl::owner(user), Label::BOTTOM)
            .unwrap();
        let err = sup
            .create_segment_in(sup.root(), "x", Acl::owner(user), Label::BOTTOM)
            .unwrap_err();
        assert_eq!(err, LegacyError::NameDuplicated);
    }

    #[test]
    fn aim_label_denies_read_up_through_resolution() {
        let (mut sup, pid, user) = boot_with_user();
        let secret = Label::new(Level(2), CompartmentSet::empty());
        sup.create_segment_in(sup.root(), "secret", Acl::owner(user), secret)
            .unwrap();
        // ACL would allow, AIM forbids: still just "no access".
        let err = sup.resolve(pid, "secret", AccessRight::Read).unwrap_err();
        assert_eq!(err, LegacyError::NoAccess);
    }

    #[test]
    fn dynamic_quota_designation_migrates_charges() {
        let (mut sup, pid, user) = boot_with_user();
        let dir = sup
            .create_directory_in(sup.root(), "q", Acl::owner(user), Label::BOTTOM)
            .unwrap();
        let astx = sup.activate(dir).unwrap();
        // Put two nonzero pages into a child segment.
        let seg = sup
            .create_segment_in(dir, "data", Acl::owner(user), Label::BOTTOM)
            .unwrap();
        let seg_astx = sup.activate(seg).unwrap();
        sup.sup_write(seg_astx, 0, Word::new(1)).unwrap();
        sup.sup_write(seg_astx, mx_hw::PAGE_WORDS as u32, Word::new(2))
            .unwrap();
        let root_astx = sup.ast.find(sup.root()).unwrap();
        let root_used_before = sup.ast.get(root_astx).unwrap().quota.unwrap().used;

        sup.set_quota_directory(pid, "q", 50).unwrap();
        let cell = sup.ast.get(astx).unwrap().quota.unwrap();
        // q's own directory page stays charged above; the two data
        // pages migrate into the new cell.
        assert_eq!(cell.used, 2, "2 data pages migrated, got {}", cell.used);
        let root_used_after = sup.ast.get(root_astx).unwrap().quota.unwrap().used;
        assert_eq!(
            root_used_before - root_used_after,
            cell.used,
            "charge moved, not copied"
        );

        // New growth under q charges q's cell, not the root's.
        sup.sup_write(seg_astx, 2 * mx_hw::PAGE_WORDS as u32, Word::new(3))
            .unwrap();
        assert_eq!(
            sup.ast.get(astx).unwrap().quota.unwrap().used,
            cell.used + 1
        );
        assert_eq!(
            sup.ast.get(root_astx).unwrap().quota.unwrap().used,
            root_used_after
        );

        // And the inverse operation migrates the charge back.
        sup.clear_quota_directory(pid, "q").unwrap();
        assert_eq!(
            sup.ast.get(root_astx).unwrap().quota.unwrap().used,
            root_used_before + 1
        );
    }

    #[test]
    fn deleting_inactive_segment_uncharges_its_own_quota_cell() {
        // Surfaced by the C1 chaos composition: after a recovery
        // bootload nothing is active, so deleting a surviving file took
        // `delete`'s inactive path — which anchored the quota walk at
        // the file's parent and therefore uncharged the cell *above*
        // the governing quota directory. The quota directory's cell
        // read high forever and the next growth under it spuriously
        // faulted on quota.
        let (mut sup, pid, user) = boot_with_user();
        sup.create_directory_in(sup.root(), "q", Acl::owner(user), Label::BOTTOM)
            .unwrap();
        sup.set_quota_directory(pid, "q", 3).unwrap();
        let (q_uid, _) = sup.resolve(pid, "q", AccessRight::Read).unwrap();
        let seg = sup
            .create_segment_in(q_uid, "data", Acl::owner(user), Label::BOTTOM)
            .unwrap();
        let seg_astx = sup.activate(seg).unwrap();
        sup.sup_write(seg_astx, 0, Word::new(5)).unwrap();
        sup.sync_to_disk().unwrap();

        // A fresh boot from the image: the file exists on disk but has
        // no AST entry, exactly the post-recovery state.
        let image = sup.machine.disks.clone();
        let mut rs =
            Supervisor::boot_from_image(crate::SupervisorConfig::default(), image).unwrap();
        let pid = rs.create_process(user, Label::BOTTOM).unwrap();
        let root_astx = rs.ast.find(rs.root()).unwrap();
        let root_before = rs.ast.get(root_astx).unwrap().quota.unwrap().used;
        let used = rs
            .resolve(pid, "q", AccessRight::Read)
            .unwrap()
            .1
            .quota_used;
        assert_eq!(used, 1, "the data page is charged to q's cell");

        rs.delete(pid, "q>data").unwrap();

        let q_uid = rs.resolve(pid, "q", AccessRight::Read).unwrap().0;
        let q_astx = rs.ast.find(q_uid).expect("q activated by the delete");
        let q_used = rs.ast.get(q_astx).unwrap().quota.unwrap().used;
        assert_eq!(q_used, 0, "q's own cell was uncharged");
        let root_after = rs.ast.get(root_astx).unwrap().quota.unwrap().used;
        assert_eq!(root_after, root_before, "the root cell was left alone");
    }

    #[test]
    fn delete_frees_records_and_uncharges() {
        let (mut sup, pid, user) = boot_with_user();
        let seg = sup
            .create_segment_in(sup.root(), "tmp", Acl::owner(user), Label::BOTTOM)
            .unwrap();
        let astx = sup.activate(seg).unwrap();
        sup.sup_write(astx, 0, Word::new(5)).unwrap();
        sup.flush_segment(astx).unwrap();
        let root_astx = sup.ast.find(sup.root()).unwrap();
        let before = sup.ast.get(root_astx).unwrap().quota.unwrap().used;
        sup.delete(pid, "tmp").unwrap();
        let after = sup.ast.get(root_astx).unwrap().quota.unwrap().used;
        assert_eq!(before - after, 1);
        assert_eq!(
            sup.resolve(pid, "tmp", AccessRight::Read).unwrap_err(),
            LegacyError::NoAccess
        );
    }
}
