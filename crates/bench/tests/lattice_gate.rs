//! The lattice gate's own regression harness.
//!
//! Pins the observed kernel edge set as a golden snapshot (sorted,
//! count-free — counts vary with battery size, the *set of pairs* is
//! the design), proves the ledger is deterministic across reruns and
//! worker counts, checks the legacy improper edges are reported rather
//! than absorbed, and ratchets the coverage floor: the number of
//! declared kernel pairs the battery exercises may grow, never shrink.

use mx_bench::g1::{battery, cheat_run, BATTERY_SEED};
use mx_deps::runtime::check;
use mx_hw::{EdgeKind, Subsystem};
use mx_load::{run_sharded, ShardSpec};

/// The complete cross-subsystem edge set the kernel battery observes.
/// A new line here means the kernel design grew a dependency — that is
/// a design review, not a test update.
const KERNEL_GOLDEN_EDGES: &[&str] = &[
    "answering_service->network",
    "answering_service->process_control",
    "directory_control->page_control",
    "directory_control->segment_control",
    "network->page_control",
    "network->segment_control",
    "process_control->page_control",
    "purifier->page_control",
    "salvager->page_control",
    "scheduler->page_control",
    "segment_control->page_control",
    "user_domain->answering_service",
    "user_domain->directory_control",
    "user_domain->gatekeeper",
    "user_domain->network",
    "user_domain->page_control",
    "user_domain->process_control",
    "user_domain->purifier",
    "user_domain->salvager",
    "user_domain->scheduler",
    "user_domain->segment_control",
];

/// Declared kernel pairs the battery exercises today. This floor may
/// only ratchet *up*: raising it requires driving a new declared pair;
/// lowering it means the battery lost coverage it used to have.
const KERNEL_COVERAGE_FLOOR: usize = 21;

#[test]
fn kernel_edge_set_matches_the_golden_snapshot() {
    let (kernel_edges, _) = battery();
    let report = check(&mx_kernel::kernel_runtime_lattice(), &kernel_edges);
    assert_eq!(
        report.edge_names(),
        KERNEL_GOLDEN_EDGES,
        "the kernel's observed dependency set changed"
    );
}

#[test]
fn the_ledger_is_byte_identical_across_reruns() {
    let (k1, l1) = battery();
    let (k2, l2) = battery();
    assert_eq!(k1, k2, "kernel ledger must not vary between reruns");
    assert_eq!(l1, l2, "legacy ledger must not vary between reruns");
}

#[test]
fn the_merged_ledger_is_independent_of_worker_count() {
    let spec = ShardSpec {
        sessions: 8,
        seed: BATTERY_SEED,
        shard_users: 4,
    };
    let one = run_sharded(&spec, 1);
    let four = run_sharded(&spec, 4);
    assert_eq!(
        one.kernel.edges, four.kernel.edges,
        "kernel edge merge must commute across shard workers"
    );
    assert_eq!(
        one.legacy.edges, four.legacy.edges,
        "legacy edge merge must commute across shard workers"
    );
}

#[test]
fn legacy_improper_edges_are_reported_not_absorbed() {
    let (_, legacy_edges) = battery();
    let report = check(&mx_legacy::legacy_runtime_lattice(), &legacy_edges);
    assert!(!report.is_clean(), "the old design must trip its own gate");
    let undeclared: Vec<(Subsystem, Subsystem, EdgeKind)> = report
        .undeclared
        .iter()
        .map(|e| (e.from, e.to, e.kind))
        .collect();
    assert!(undeclared.contains(&(
        Subsystem::PageControl,
        Subsystem::SegmentControl,
        EdgeKind::SharedData
    )));
    assert!(undeclared.contains(&(
        Subsystem::PageControl,
        Subsystem::DirectoryControl,
        EdgeKind::SharedData
    )));
    assert!(
        report
            .loops
            .iter()
            .any(|l| l.contains(&Subsystem::PageControl) && l.contains(&Subsystem::SegmentControl)),
        "the observed page/segment tangle must surface as a loop"
    );
}

#[test]
fn kernel_coverage_only_ratchets_up() {
    let (kernel_edges, _) = battery();
    let lattice = mx_kernel::kernel_runtime_lattice();
    let report = check(&lattice, &kernel_edges);
    let exercised = lattice.pairs().len() - report.unexercised.len();
    assert!(
        exercised >= KERNEL_COVERAGE_FLOOR,
        "battery coverage regressed: {exercised} declared pairs exercised, \
         floor is {KERNEL_COVERAGE_FLOOR}"
    );
    // Keep the floor honest: if coverage grew, raise the constant.
    assert_eq!(
        exercised, KERNEL_COVERAGE_FLOOR,
        "coverage grew past the floor — raise KERNEL_COVERAGE_FLOOR to {exercised}"
    );
}

/// A fleet run on its own — every machine's ledger merged — must come
/// back clean on the kernel gate: distributing the system across a
/// wire may not smuggle in a single undeclared crossing. Exercised in
/// both store configurations, since the specialized resident path is
/// exactly where a layering cheat would be most tempting.
#[test]
fn a_fleet_run_is_clean_on_the_kernel_gate() {
    use mx_load::{run_kernel_fleet, FleetSpec};
    for specialized in [false, true] {
        let mut spec = FleetSpec::new(2, 8, BATTERY_SEED);
        spec.specialized_store = specialized;
        let fleet = run_kernel_fleet(&spec, None);
        assert!(fleet.violations.is_empty(), "{:?}", fleet.violations);
        let report = check(&mx_kernel::kernel_runtime_lattice(), &fleet.edges);
        assert!(
            report.is_clean(),
            "fleet (specialized={specialized}) crossed an undeclared boundary:\n{}",
            mx_deps::runtime::render_report(&report)
        );
    }
}

#[test]
fn the_planted_cheat_is_the_only_violation_in_its_run() {
    let report = cheat_run(BATTERY_SEED);
    assert_eq!(report.undeclared.len(), 1);
    let e = &report.undeclared[0];
    assert_eq!(
        (e.from, e.to, e.kind),
        (
            Subsystem::PageControl,
            Subsystem::AnsweringService,
            EdgeKind::Invoke
        )
    );
    assert!(
        report
            .loops
            .iter()
            .all(|l| !l.contains(&Subsystem::AnsweringService) || l.len() <= 1),
        "the plant is a single upward call, not a loop"
    );
}
