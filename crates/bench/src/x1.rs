//! X1 — schedule exploration over the two-level scheduler and the
//! eventcount substrate.
//!
//! Sweeps every `mx-explore` scenario with the seeded-random and
//! PCT policies, exhaustively enumerates the handoff scenario with
//! bounded-preemption DFS, runs the legacy baseline of every scenario
//! the old design can execute, and checks the full oracle battery on
//! every schedule. The experiment *aborts* on any oracle violation or
//! parity break — a clean report is itself the measurement. It also
//! self-checks the harness by running the deliberately broken wakeup
//! and proving the violation is caught and replays from its printed
//! seed/schedule string alone.

use mx_explore::{
    explore_dfs, explore_pct, explore_random, replay, run_kernel, run_legacy, Exploration,
    ScenarioKind,
};
use mx_hw::meter::CounterSet;
use mx_hw::Clock;
use mx_sync::FifoPolicy;

/// Scenario seeds swept per policy family.
const SCENARIO_SEEDS: [u64; 2] = [1, 2];
/// Random/PCT schedules per (scenario, seed).
const RUNS_PER_SWEEP: usize = 24;
/// Cap for the bounded-preemption DFS on the kernel scenarios.
const DFS_CAP: usize = 48;

fn fail_on_violations(exp: &Exploration) {
    if let Some(bad) = exp.violations.first() {
        panic!(
            "X1 violation in {} under {}: seed={} schedule={} -> {:?}\n\
             replay: mx_explore::replay(ScenarioKind::{:?}, {}, \"{}\")",
            exp.kind.name(),
            exp.policy,
            bad.seed,
            bad.schedule,
            bad.violations,
            bad.kind,
            bad.seed,
            bad.schedule
        );
    }
}

/// Runs the full X1 sweep and renders the report.
///
/// # Panics
///
/// Panics on any oracle violation, parity break, or harness self-check
/// failure — the acceptance gate is `violations == 0`.
pub fn x1_schedule_exploration() -> String {
    let mut out = String::new();
    let mut total_schedules = 0usize;
    let mut total_distinct = 0usize;
    let mut total_violations = 0usize;

    out.push_str(&format!(
        "  {:<10} {:<7} {:>6} {:>10} {:>9} {:>10}\n",
        "scenario", "policy", "seeds", "schedules", "distinct", "violations"
    ));
    for kind in ScenarioKind::ALL {
        let mut row = |policy: &'static str, exps: Vec<Exploration>| {
            let schedules: usize = exps.iter().map(|e| e.schedules).sum();
            let distinct: usize = exps.iter().map(|e| e.distinct_outcomes).sum();
            let violations: usize = exps.iter().map(|e| e.violations.len()).sum();
            for e in &exps {
                fail_on_violations(e);
                assert!(
                    e.distinct_parities.len() <= 1,
                    "X1 {}: user-visible results varied with the schedule",
                    e.kind.name()
                );
            }
            total_schedules += schedules;
            total_distinct += distinct;
            total_violations += violations;
            out.push_str(&format!(
                "  {:<10} {:<7} {:>6} {:>10} {:>9} {:>10}\n",
                kind.name(),
                policy,
                exps.len(),
                schedules,
                distinct,
                violations
            ));
            exps
        };
        let random = row(
            "random",
            SCENARIO_SEEDS
                .iter()
                .map(|&s| explore_random(kind, s, RUNS_PER_SWEEP))
                .collect(),
        );
        row(
            "pct",
            SCENARIO_SEEDS
                .iter()
                .map(|&s| explore_pct(kind, s, RUNS_PER_SWEEP))
                .collect(),
        );
        let dfs = if kind == ScenarioKind::Handoff {
            // Small enough to enumerate every schedule.
            row("dfs", vec![explore_dfs(kind, 0, usize::MAX, 10_000)])
        } else {
            row(
                "dfs",
                SCENARIO_SEEDS
                    .iter()
                    .map(|&s| explore_dfs(kind, s, 1, DFS_CAP))
                    .collect(),
            )
        };
        if kind == ScenarioKind::Handoff {
            assert!(!dfs[0].truncated, "handoff DFS must be exhaustive");
        }

        // Old/new parity: the legacy baseline (its scheduler has no
        // policy hooks — one inherent schedule per seed) must agree
        // with every kernel schedule on user-visible results.
        if kind.has_legacy() {
            for (exp, &seed) in random.iter().zip(SCENARIO_SEEDS.iter()) {
                let baseline = run_legacy(kind, seed);
                assert!(
                    baseline.violations.is_empty(),
                    "X1 legacy {}: {:?}",
                    kind.name(),
                    baseline.violations
                );
                assert_eq!(
                    exp.distinct_parities,
                    vec![baseline.parity.clone()],
                    "X1 {}: kernel and 1974 supervisor disagree on user-visible results",
                    kind.name()
                );
                total_schedules += 1;
            }
            out.push_str(&format!(
                "  {:<10} {:<7} {:>6} {:>10} {:>9} {:>10}  (parity with every kernel schedule)\n",
                kind.name(),
                "legacy",
                SCENARIO_SEEDS.len(),
                SCENARIO_SEEDS.len(),
                1,
                0
            ));
        }
    }

    out.push_str(&format!(
        "\n  schedules explored             : {total_schedules}\n"
    ));
    out.push_str(&format!(
        "  distinct outcomes (summed)     : {total_distinct}\n"
    ));
    out.push_str(&format!(
        "  oracle violations              : {total_violations}\n"
    ));

    // Harness self-check: the deliberately broken wakeup (drops the
    // last woken waiter) must be caught, and the violation must replay
    // from nothing but the printed seed/schedule string.
    let bad = run_kernel(ScenarioKind::HandoffLossy, 0, Box::new(FifoPolicy));
    assert!(
        !bad.violations.is_empty(),
        "X1 self-check: the injected lost wakeup went unnoticed"
    );
    let printed_kind = bad.kind.name().to_string();
    let printed_seed = bad.seed;
    let printed_schedule = bad.schedule.clone();
    let again = replay(
        ScenarioKind::parse(&printed_kind).expect("printed kind parses"),
        printed_seed,
        &printed_schedule,
    );
    assert_eq!(
        again.violations, bad.violations,
        "X1 self-check: replay from the printed string did not reproduce"
    );
    out.push_str(&format!(
        "  injected-violation self-check  : caught ({}) and replayed from\n  \
         '{} seed={} schedule={}'\n",
        bad.violations[0].split(':').next().unwrap_or("violation"),
        printed_kind,
        printed_seed,
        printed_schedule
    ));

    let mut counters = CounterSet::new();
    counters.set("schedules_explored", total_schedules as u64);
    counters.set("distinct_outcomes", total_distinct as u64);
    counters.set("oracle_violations", total_violations as u64);
    crate::trace::publish("x1.explore", &Clock::new(), counters);

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x1_runs_clean_and_explores_enough() {
        let report = x1_schedule_exploration();
        assert!(report.contains("oracle violations              : 0"));
        let schedules: usize = report
            .lines()
            .find(|l| l.contains("schedules explored"))
            .and_then(|l| l.split(':').nth(1))
            .and_then(|n| n.trim().parse().ok())
            .expect("schedule count in report");
        assert!(
            schedules >= 500,
            "acceptance: at least 500 schedules, got {schedules}"
        );
    }
}
