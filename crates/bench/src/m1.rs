//! M1 — sharded parallel load: wall-clock scaling past the L1 wall.
//!
//! L1 certified the load harness at N = 1024 and stalled there: one OS
//! thread simulated both machines, and the single-machine engine's
//! per-operation cost grows with the co-resident population (directory
//! scans, quota walks, admission sweeps), so wall-clock per simulated
//! op climbs superlinearly with N. M1 runs the same population through
//! the sharded engine (`mx_load::shard`): a fixed, seed-pure partition
//! into ~1024-user shards, each shard on its own machine pair, driven by
//! K worker threads over the threaded eventcount/sequencer substrate and
//! merged in shard order. Simulated-cycle metrics stay deterministic and
//! byte-identical for every K; wall-clock ops/sec is reported as a
//! first-class figure next to them.
//!
//! Two checks ride every sweep: the full oracle battery per shard and
//! post-merge (any violation aborts), and — at the largest point — a
//! worker-count invariance proof: the whole merged result at K = 1 must
//! equal the K-worker result, label for label and sample for sample.

use crate::trace;
use mx_hw::meter::CounterSet;
use mx_hw::Clock;
use mx_load::shard::{run_sharded, ShardSpec, ShardedRun};
use mx_load::{run_both, LoadSpec};
use std::time::Instant;

/// The sweep, smallest to largest. `max_sessions` truncates it (CI
/// smoke runs with a 4096-user cap).
const SCALE: [usize; 4] = [1024, 4096, 16_384, 100_000];
/// Same seed as L1: each point is a prefix-independent population.
const SEED: u64 = 1977;
/// The N at which the sharded engine is raced against the classic
/// single-machine engine (the honest "bottleneck fixed" figure).
const BASELINE_N: usize = 4096;

fn row(out: &mut String, run: &ShardedRun, design_is_kernel: bool) {
    let m = if design_is_kernel {
        &run.kernel
    } else {
        &run.legacy
    };
    let pct = |p: u64| m.hist.percentile(p).expect("M1 points always retire ops");
    out.push_str(&format!(
        "  {:>6} {:>6} {:<7} {:>8} {:>9.3} {:>9.1} {:>6} {:>6} {:>7}\n",
        run.sessions,
        run.n_shards,
        m.design,
        m.ops,
        m.cycles as f64 / 1e6,
        m.ops as f64 * 1e6 / m.cycles.max(1) as f64,
        pct(50),
        pct(95),
        pct(99),
    ));
}

/// Runs the M1 sweep up to `max_sessions` users with `workers` OS
/// threads and renders the report.
///
/// # Panics
///
/// Panics on any per-shard or post-merge oracle violation, and if the
/// largest point's merged result differs in any way between K = 1 and
/// K = `workers`.
pub fn m1_parallel_load(max_sessions: usize, workers: usize) -> String {
    let workers = workers.max(1);
    let points: Vec<usize> = {
        let swept: Vec<usize> = SCALE
            .iter()
            .copied()
            .filter(|&n| n <= max_sessions)
            .collect();
        if swept.is_empty() {
            vec![max_sessions.max(1)]
        } else {
            swept
        }
    };

    let mut out = String::new();
    out.push_str(&format!(
        "  sharded parallel load: fixed seed-pure partition, ~1024 users/shard,\n  \
         K={workers} worker threads on the eventcount/sequencer substrate\n\n"
    ));
    out.push_str(&format!(
        "  {:>6} {:>6} {:<7} {:>8} {:>9} {:>9} {:>6} {:>6} {:>7}\n",
        "users", "shards", "design", "ops", "Mcycles", "ops/Mcy", "p50", "p95", "p99",
    ));

    let mut walls: Vec<(usize, usize, u128, f64)> = Vec::new();
    let mut last: Option<ShardedRun> = None;
    for &n in &points {
        let spec = ShardSpec::new(n, SEED);
        let run = run_sharded(&spec, workers);
        assert!(
            run.violations.is_empty(),
            "M1 N={n} K={workers}: {:?}",
            run.violations
        );
        row(&mut out, &run, true);
        row(&mut out, &run, false);
        walls.push((n, run.n_shards, run.wall_nanos, run.wall_ops_per_sec()));
        last = Some(run);
    }
    out.push_str(
        "  (simulated-cycle metrics: merged across shards in shard order;\n  \
         latencies in simulated cycles, power-of-two bucket bounds)\n",
    );

    out.push_str(&format!(
        "\n  simulator wall-clock (both designs' ops over the concurrent region):\n  {:>6} {:>6} {:>9} {:>10}\n",
        "users", "shards", "wall-s", "ops/s",
    ));
    for &(n, shards, nanos, ops_per_sec) in &walls {
        out.push_str(&format!(
            "  {:>6} {:>6} {:>9.2} {:>10.0}\n",
            n,
            shards,
            nanos as f64 / 1e9,
            ops_per_sec,
        ));
    }

    let top = last.expect("at least one scale point");
    let top_n = top.sessions;

    // Worker-count invariance: the whole merged result — labels,
    // cycles, histograms, per-user samples — must not know how many OS
    // threads drove the shards.
    let solo = run_sharded(&ShardSpec::new(top_n, SEED), 1);
    assert!(
        solo.violations.is_empty(),
        "M1 N={top_n} K=1: {:?}",
        solo.violations
    );
    assert_eq!(
        solo.kernel, top.kernel,
        "kernel merge differs between K=1 and K={workers}"
    );
    assert_eq!(
        solo.legacy, top.legacy,
        "legacy merge differs between K=1 and K={workers}"
    );
    out.push_str(&format!(
        "\n  worker-count invariance at N={top_n}: K=1 and K={workers} merged streams\n  \
         identical ({} labels, {} samples per design pair); wall ops/s\n  \
         K=1 {:.0} vs K={workers} {:.0} ({:.2}x)\n",
        top.kernel.parity.len() + top.legacy.parity.len(),
        top.kernel.hist.samples() + top.legacy.hist.samples(),
        solo.wall_ops_per_sec(),
        top.wall_ops_per_sec(),
        top.wall_ops_per_sec() / solo.wall_ops_per_sec().max(f64::MIN_POSITIVE),
    ));

    // The bottleneck-fix figure: the classic single-machine engine vs
    // the sharded engine at the same N. The sharded win here is
    // algorithmic — each shard machine's population stays ~1024, so the
    // engine never pays the superlinear co-population costs — and
    // thread parallelism multiplies on top of it when the host has
    // cores to offer.
    let base_n = BASELINE_N.min(top_n);
    let started = Instant::now();
    let (bk, bl) = run_both(&LoadSpec::new(base_n, SEED));
    let base_nanos = started.elapsed().as_nanos();
    let base_ops_per_sec = (bk.ops + bl.ops) as f64 * 1e9 / base_nanos.max(1) as f64;
    let sharded_at_base = walls
        .iter()
        .find(|&&(n, ..)| n == base_n)
        .map(|&(.., ops_per_sec)| ops_per_sec)
        .unwrap_or_else(|| run_sharded(&ShardSpec::new(base_n, SEED), workers).wall_ops_per_sec());
    out.push_str(&format!(
        "\n  unsharded baseline at N={base_n}: one machine pair, one thread —\n  \
         {:.2}s wall, {:.0} ops/s; sharded engine at the same N: {:.0} ops/s\n  \
         ({:.2}x, the single-thread bottleneck L1 hit)\n",
        base_nanos as f64 / 1e9,
        base_ops_per_sec,
        sharded_at_base,
        sharded_at_base / base_ops_per_sec.max(f64::MIN_POSITIVE),
    ));

    out.push_str(&format!(
        "\n  scale points swept             : {}\n",
        points.len()
    ));
    out.push_str(&format!(
        "  parity labels compared         : {}\n",
        top.kernel.parity.len()
    ));
    out.push_str("  oracle violations              : 0\n");

    let mut counters = CounterSet::new();
    counters.set("max_sessions", top_n as u64);
    counters.set("workers", workers as u64);
    counters.set("shards", top.n_shards as u64);
    counters.set("kernel_ops", top.kernel.ops);
    counters.set("kernel_cycles", top.kernel.cycles);
    counters.set("legacy_ops", top.legacy.ops);
    counters.set("legacy_cycles", top.legacy.cycles);
    counters.set("wall_ms", (top.wall_nanos / 1_000_000) as u64);
    counters.set("wall_ops_per_sec", top.wall_ops_per_sec() as u64);
    trace::publish("m1.load", &Clock::new(), counters);

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m1_runs_clean_below_the_first_scale_point() {
        // max_sessions below SCALE[0] exercises the single-point
        // fallback, which keeps this affordable in a debug test run.
        let report = m1_parallel_load(96, 2);
        assert!(report.contains("oracle violations              : 0"));
        assert!(report.contains("worker-count invariance at N=96"));
        assert!(report.contains("unsharded baseline at N=96"));
        let rows = report
            .lines()
            .filter(|l| l.contains(" kernel ") || l.contains(" legacy "))
            .count();
        assert_eq!(rows, 2);
    }
}
