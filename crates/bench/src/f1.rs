//! F1 — multi-machine Multics: a sharded fleet behind one answering
//! service.
//!
//! The paper's company argues that a small kernel makes *replication*
//! the growth path: several machines, each running the same certified
//! kernel, presenting one system to the user community. This experiment
//! drives the seeded load population through a fleet of M simulated
//! machines — sessions homed across the fleet by a seed-keyed hash,
//! every login routed through the single front answering service, every
//! remote file touch carried over a deterministic simulated wire — and
//! demands that the result be *user-indistinguishable from one
//! machine*: the merged label stream byte-identical to the
//! single-machine run, admission first-come-first-served at the same
//! queue pressure, and every record allocated anywhere in the fleet
//! referenced by exactly one file map somewhere in the fleet.
//!
//! Three probes ride along at M = 2:
//!
//! * **T3** — machine 0 as a dedicated file store, once as a general
//!   machine and once in the specialized resident configuration (short
//!   assembly dispatch under the network subsystem, no user-domain
//!   command layer, no gate on the read path). The paper projects a
//!   15–25% saving for specialized file-store configurations; the
//!   measured figure is printed next to the claim.
//! * **Migration** — member machines get deliberately small packs, so
//!   file growth forces full-pack relocation and each relocated session
//!   file migrates to the store over the wire; the label stream and the
//!   fleet-wide record count must survive the move.
//! * **Planted cheat** — one delivered data frame is silently
//!   discarded; the parity/conservation oracles must catch it, and the
//!   verdict must reproduce from the printed replay string alone.

use mx_hw::meter::CounterSet;
use mx_hw::Clock;
use mx_load::{
    run_kernel_fleet, run_kernel_load, run_legacy_fleet, run_legacy_load, FleetRun, FleetSpec,
    LoadRun,
};

/// The seed the scaling sweep runs under.
pub const SWEEP_SEED: u64 = 0xF1;
/// The fixed probe shapes (sessions, seed) for the M = 2 legs. Probes
/// are self-checks, not measurements, so they keep proven shapes
/// regardless of the sweep cap.
const T3_SHAPE: (usize, u64) = (12, 31);
const MIGRATION_SHAPE: (usize, u64) = (12, 5);
const CHEAT_SHAPE: (usize, u64) = (10, 23);
/// Which delivered data frame the cheat leg discards (1-based).
const CHEAT_DROP: u64 = 3;

fn row(out: &mut String, r: &FleetRun) {
    out.push_str(&format!(
        "  {:>8} {:<7} {:>7} {:>9.3} {:>9.3} {:>8.1} {:>6} {:>6} {:>6} {:>6}\n",
        r.machines,
        r.design,
        r.ops,
        r.cycles as f64 / 1e6,
        r.wall_cycles as f64 / 1e6,
        r.ops_per_mcycle(),
        r.frames_sent,
        r.frames_delivered,
        r.remote_ops,
        r.queued_peak,
    ));
}

fn must_be_clean(fleet: &FleetRun, single: &LoadRun, what: &str) {
    let problems = fleet.check_against(single);
    assert!(
        problems.is_empty(),
        "F1 {what}: the fleet is user-distinguishable from one machine: {problems:?}"
    );
}

/// The machine counts swept: powers of two up to `machines_max`,
/// plus `machines_max` itself when it is not a power of two.
fn sweep_points(machines_max: usize) -> Vec<usize> {
    let mut points = Vec::new();
    let mut m = 1;
    while m <= machines_max {
        points.push(m);
        m *= 2;
    }
    if points.last() != Some(&machines_max) {
        points.push(machines_max);
    }
    points
}

/// Parses `key=value` (decimal) out of the cheat leg's replay string.
fn replay_field(printed: &str, key: &str) -> u64 {
    printed
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("replay string missing {key}: '{printed}'"))
}

/// Runs the F1 fleet sweep up to `machines_max` machines with
/// `max_sessions` users and renders the report.
///
/// # Panics
///
/// Panics — failing CI — if any fleet point is user-distinguishable
/// from the single-machine run, if a rerun is not byte-identical, if
/// the specialized store fails to undercut the general configuration,
/// if migration loses a record or a label, or if the planted frame
/// drop goes unnoticed or fails to replay from its printed string.
pub fn f1_fleet_scaling(machines_max: usize, max_sessions: usize) -> String {
    assert!(machines_max >= 1, "a fleet has at least one machine");
    let sessions = max_sessions.max(1);
    let mut out = String::new();
    out.push_str(&format!(
        "  {:>8} {:<7} {:>7} {:>9} {:>9} {:>8} {:>6} {:>6} {:>6} {:>6}\n",
        "machines",
        "design",
        "ops",
        "Mcycles",
        "wall-Mcy",
        "ops/Mcy",
        "sent",
        "dlvd",
        "remote",
        "queued",
    ));

    let kernel_single = run_kernel_load(&FleetSpec::new(1, sessions, SWEEP_SEED).base(), None);
    let legacy_single = run_legacy_load(&FleetSpec::new(1, sessions, SWEEP_SEED).base());

    let mut last_kernel: Option<FleetRun> = None;
    for m in sweep_points(machines_max) {
        let spec = FleetSpec::new(m, sessions, SWEEP_SEED);
        let k = run_kernel_fleet(&spec, None);
        must_be_clean(&k, &kernel_single, &format!("kernel M={m}"));
        let l = run_legacy_fleet(&spec, None);
        must_be_clean(&l, &legacy_single, &format!("legacy M={m}"));
        row(&mut out, &k);
        row(&mut out, &l);
        last_kernel = Some(k);
    }
    out.push_str(
        "  (wall-Mcy = the busiest machine's load-phase cycles — the fleet's\n  \
         wall clock; Mcycles sums every machine, so ops/Mcy *falls* as the\n  \
         wire adds work while wall-Mcy shows the parallel speed-up)\n",
    );

    // The merged stream is the single-machine stream, at every point.
    let biggest = last_kernel.expect("at least one sweep point");
    out.push_str(&format!(
        "\n  user-indistinguishable         : {} labels byte-identical to one \
         machine at every point\n",
        biggest.parity.len()
    ));
    out.push_str(&format!(
        "  first-come-first-served        : {} post-storm admissions released \
         in arrival order\n",
        biggest.admitted_order.len()
    ));

    // Rerun determinism at the largest machine count.
    let again = run_kernel_fleet(
        &FleetSpec::new(biggest.machines, sessions, SWEEP_SEED),
        None,
    );
    assert!(
        again.parity == biggest.parity
            && again.cycles == biggest.cycles
            && again.frames_sent == biggest.frames_sent
            && again.per_machine_cycles == biggest.per_machine_cycles,
        "F1: rerun at M={} was not byte-identical",
        biggest.machines
    );
    out.push_str(&format!(
        "  rerun at M={}                   : byte-identical (labels, cycles, \
         frames)\n",
        biggest.machines
    ));

    let mut t3_saving_pct = 0.0;
    let mut migrations = 0u64;
    if machines_max >= 2 {
        // T3: the dedicated store, general vs specialized-resident.
        let (n, seed) = T3_SHAPE;
        let mut spec = FleetSpec::new(2, n, seed);
        spec.dedicated_store = true;
        let general = run_kernel_fleet(&spec, None);
        spec.specialized_store = true;
        let special = run_kernel_fleet(&spec, None);
        let single = run_kernel_load(&spec.base(), None);
        must_be_clean(&general, &single, "T3 general store");
        must_be_clean(&special, &single, "T3 specialized store");
        assert_eq!(
            general.parity, special.parity,
            "F1 T3: specialization must not change user-visible behavior"
        );
        assert!(
            special.store_cycles < general.store_cycles,
            "F1 T3: resident dispatch must undercut the command layer: {} vs {}",
            special.store_cycles,
            general.store_cycles
        );
        t3_saving_pct = (general.store_cycles - special.store_cycles) as f64 * 100.0
            / general.store_cycles as f64;
        // The saving on the code specialization actually deletes — the
        // command layer, the gates, the per-request dispatch — rather
        // than the segment/directory work both configurations share.
        let service = |r: &FleetRun| {
            use mx_hw::Subsystem as S;
            [S::Network, S::UserDomain, S::Gatekeeper]
                .iter()
                .map(|&s| r.store_meter.attributed_to(s))
                .sum::<u64>()
        };
        let (gen_svc, spe_svc) = (service(&general), service(&special));
        let svc_saving_pct = (gen_svc - spe_svc) as f64 * 100.0 / gen_svc as f64;
        out.push_str(&format!(
            "\n  T3 — specialized file store at M=2, store dedicated ({n} users):\n  \
             general store                  : {:>8} cycles ({gen_svc} in the \
             service path)\n  \
             specialized (resident) store   : {:>8} cycles ({spe_svc} in the \
             service path)\n  \
             measured saving                : {t3_saving_pct:>7.1}% of the whole \
             store, {svc_saving_pct:.1}% of the\n    \
             service path it rewrites (paper projects 15-25% of the supervisor)\n",
            general.store_cycles, special.store_cycles
        ));
        out.push_str("  store-machine attribution, specialized configuration:\n");
        out.push_str(&special.store_meter.render_text());

        // Migration: full packs on the members push files to the store.
        let (n, seed) = MIGRATION_SHAPE;
        let mut spec = FleetSpec::new(2, n, seed);
        spec.migratory = true;
        let fleet = run_kernel_fleet(&spec, None);
        let single = run_kernel_load(&spec.base(), None);
        must_be_clean(&fleet, &single, "migration");
        assert!(
            fleet.relocations > 0 && fleet.migrations > 0,
            "F1 migration: small member packs must force relocation ({}) and \
             migration ({})",
            fleet.relocations,
            fleet.migrations
        );
        migrations = fleet.migrations;
        out.push_str(&format!(
            "\n  pack migration at M=2 ({n} users, tight member packs):\n  \
             relocations / migrations       : {} / {} — labels and fleet-wide \
             record count intact\n",
            fleet.relocations, fleet.migrations
        ));

        // Self-check: drop one delivered data frame; the oracles must
        // notice, and the verdict must replay from the printed string.
        let (n, seed) = CHEAT_SHAPE;
        let single = run_kernel_load(&FleetSpec::new(2, n, seed).base(), None);
        let mut spec = FleetSpec::new(2, n, seed);
        spec.drop_frame = Some(CHEAT_DROP);
        let cheat = run_kernel_fleet(&spec, None);
        assert_eq!(cheat.frames_dropped, 1, "F1 cheat: the drop must land");
        let verdict = cheat.check_against(&single);
        assert!(
            !verdict.is_empty(),
            "F1 self-check: a lost wire frame went unnoticed"
        );
        let printed =
            format!("f1 cheat seed={seed} machines=2 sessions={n} schedule=fifo drop={CHEAT_DROP}");
        let mut respec = FleetSpec::new(
            replay_field(&printed, "machines") as usize,
            replay_field(&printed, "sessions") as usize,
            replay_field(&printed, "seed"),
        );
        respec.drop_frame = Some(replay_field(&printed, "drop"));
        let replay = run_kernel_fleet(&respec, None);
        let re_single = run_kernel_load(&respec.base(), None);
        assert_eq!(
            replay.check_against(&re_single),
            verdict,
            "F1 self-check: replay from the printed string did not reproduce"
        );
        out.push_str(&format!(
            "\n  planted-cheat self-check       : dropped data frame {CHEAT_DROP} \
             -> {} violation(s) caught and\n    replayed from '{printed}'\n",
            verdict.len()
        ));
    } else {
        out.push_str("\n  (T3, migration, and cheat probes need --machines >= 2 — skipped)\n");
    }

    out.push_str(&format!(
        "\n  machine counts swept           : {:?}\n",
        sweep_points(machines_max)
    ));
    out.push_str("  oracle violations              : 0\n");

    let mut counters = CounterSet::new();
    counters.set("machines_max", machines_max as u64);
    counters.set("sessions", sessions as u64);
    counters.set("kernel_ops", biggest.ops);
    counters.set("kernel_cycles", biggest.cycles);
    counters.set("kernel_wall_cycles", biggest.wall_cycles);
    counters.set("frames_sent", biggest.frames_sent);
    counters.set("frames_delivered", biggest.frames_delivered);
    counters.set("remote_ops", biggest.remote_ops);
    counters.set("t3_saving_bp", (t3_saving_pct * 100.0) as u64);
    counters.set("migrations", migrations);
    crate::trace::publish("f1.fleet", &Clock::new(), counters);

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f1_runs_clean_at_smoke_scale() {
        let report = f1_fleet_scaling(2, 8);
        assert!(report.contains("oracle violations              : 0"));
        assert!(report.contains("byte-identical"));
        assert!(report.contains("paper projects 15-25%"));
        assert!(report.contains("planted-cheat self-check       : dropped data frame"));
        let rows = report
            .lines()
            .filter(|l| l.contains(" kernel ") || l.contains(" legacy "))
            .count();
        assert_eq!(rows, 4, "two sweep points, two designs");
    }

    #[test]
    fn sweep_points_cover_the_cap() {
        assert_eq!(sweep_points(1), vec![1]);
        assert_eq!(sweep_points(4), vec![1, 2, 4]);
        assert_eq!(sweep_points(6), vec![1, 2, 4, 6]);
    }
}
