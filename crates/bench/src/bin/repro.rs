//! `repro` — regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! repro                       # everything
//! repro --only f2,t1          # selected experiments (ids per DESIGN.md)
//! repro --list                # list experiment ids
//! repro --trace report.json   # also write per-subsystem cycle attribution
//! repro --only r1 --stride 16 # subsample the crash matrix (CI smoke)
//! repro --only l1 --l1-max 64 # cap the load-scaling sweep (CI smoke)
//! repro --only c1 --c1-max 32 # cap the chaos population (CI smoke)
//! repro --only m1 --shards 4 --m1-max 4096 # sharded load (CI smoke)
//! repro --only s1 --s1-max 16 # cap the online-salvage population (CI smoke)
//! repro --only f1 --machines 2 --f1-max 64 # fleet scaling (CI smoke)
//! ```
//!
//! The id `s1` runs both S1 experiments: the mythical-identifier
//! semantics check and the online-salvage robustness composition.
//! Likewise `f1` runs both Figure 1 (the project plan) and the F1
//! fleet-scaling experiment.

use mx_bench::{
    a1_namespace_cache, a2_purifier_idle, a3_associative_memory, p1_linker, p2_namespace,
    p3_answering, p4_memory, p5_scheduler, p7_quota, p8_fault_path, r1_crash_recovery,
    s1_mythical_identifiers, s2_confinement, s3_relocation, TreeSpec,
};
use mx_census::multics::{standard_transforms, start_of_project, PLI_EQUIVALENT_SHRINK_PERMILLE};
use mx_census::plan::render_plan;
use mx_census::report::specialization_estimate;
use mx_census::{entry_point_stats, size_table, Region};
use mx_deps::render::{render_audit_costs, render_dot};
use mx_deps::render_ascii;

const ALL: &[&str] = &[
    "f1", "f2", "f3", "f4", "t1", "t2", "t3", "p1", "p2", "p3", "p4", "p5", "p6", "p7", "p8", "s1",
    "s2", "s3", "r1", "a1", "a2", "a3", "x1", "l1", "c1", "m1", "g1",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for id in ALL {
            println!("{id}");
        }
        return;
    }
    let mut dot = false;
    let mut stride: u64 = 1;
    let mut l1_max: usize = 1024;
    let mut c1_max: usize = 64;
    let mut s1_max: usize = 64;
    let mut m1_max: usize = 100_000;
    let mut shards: usize = 4;
    let mut machines: usize = 4;
    let mut f1_max: usize = 64;
    let mut trace_path: Option<String> = None;
    let mut selected: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--only" => {
                i += 1;
                if let Some(list) = args.get(i) {
                    selected.extend(list.split(',').map(|s| s.trim().to_lowercase()));
                }
            }
            "--trace" => {
                i += 1;
                match args.get(i) {
                    Some(path) => trace_path = Some(path.clone()),
                    None => {
                        eprintln!("--trace requires a file path");
                        std::process::exit(2);
                    }
                }
            }
            "--stride" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) if n > 0 => stride = n,
                    _ => {
                        eprintln!("--stride requires a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            "--l1-max" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) if n > 0 => l1_max = n,
                    _ => {
                        eprintln!("--l1-max requires a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            "--c1-max" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) if n > 0 => c1_max = n,
                    _ => {
                        eprintln!("--c1-max requires a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            "--s1-max" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) if n > 0 => s1_max = n,
                    _ => {
                        eprintln!("--s1-max requires a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            "--m1-max" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) if n > 0 => m1_max = n,
                    _ => {
                        eprintln!("--m1-max requires a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            "--shards" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) if n > 0 => shards = n,
                    _ => {
                        eprintln!("--shards requires a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            "--machines" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) if n > 0 => machines = n,
                    _ => {
                        eprintln!("--machines requires a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            "--f1-max" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) if n > 0 => f1_max = n,
                    _ => {
                        eprintln!("--f1-max requires a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            "--dot" => dot = true,
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    // A typo in --only must not green a CI smoke job by running nothing.
    let unknown: Vec<&String> = selected
        .iter()
        .filter(|s| !ALL.contains(&s.as_str()))
        .collect();
    if !unknown.is_empty() {
        for id in &unknown {
            eprintln!("unknown experiment id: {id}");
        }
        eprintln!("valid ids: {}", ALL.join(", "));
        std::process::exit(2);
    }
    let want = |id: &str| selected.is_empty() || selected.iter().any(|s| s == id);

    println!("================================================================");
    println!(" The Multics Kernel Design Project — reproduction report");
    println!(" (Schroeder, Clark, Saltzer; SOSP 1977)");
    println!("================================================================\n");

    if want("f1") {
        header("F1", "Figure 1 — the project plan");
        println!("{}", render_plan());
    }
    if want("f2") {
        header(
            "F2",
            "Figure 2 — superficial dependency structure (old Multics)",
        );
        let g = mx_legacy::superficial_structure();
        println!("{}", render_ascii(&g));
        if dot {
            println!("{}", render_dot(&g));
        }
    }
    if want("f3") {
        header("F3", "Figure 3 — actual dependency structure (old Multics)");
        let g = mx_legacy::actual_structure();
        println!("{}", render_ascii(&g));
        println!("{}", render_audit_costs(&g));
        let plan = mx_deps::suggest_breaks(&g);
        println!("{}", mx_deps::advisor::render_plan(&g, &plan));
        if dot {
            println!("{}", render_dot(&g));
        }
    }
    if want("f4") {
        header("F4", "Figure 4 — the new, loop-free Kernel/Multics design");
        let g = mx_kernel::kernel_structure();
        println!("{}", render_ascii(&g));
        println!("{}", render_audit_costs(&g));
        if dot {
            println!("{}", render_dot(&g));
        }
    }
    if want("t1") {
        header("T1", "The kernel-size table");
        let table = size_table(&start_of_project(), &standard_transforms());
        println!("{table}");
    }
    if want("t2") {
        header("T2", "Entry-point statistics");
        let c = start_of_project();
        let ring0_entries: u32 = c.in_region(Region::RingZero).map(|m| m.entry_points).sum();
        let ring0_gates: u32 = c.in_region(Region::RingZero).map(|m| m.user_gates).sum();
        println!("  supervisor entry points        : {ring0_entries} (paper: ~1,200)");
        println!("  user-callable gates            : {ring0_gates} (paper: 157)");
        let s = entry_point_stats(&c, "linker");
        println!(
            "  linker extraction removes      : {:.1}% of object code (paper: 5%)",
            s.object_code_pct
        );
        println!(
            "                                   {:.1}% of entry points (paper: 2.5%)",
            s.entry_point_pct
        );
        println!(
            "                                   {:.1}% of user gates (paper: 11%)",
            s.user_gate_pct
        );
        println!(
            "  Kernel/Multics user gates      : {} (this reproduction's whole interface)\n",
            mx_kernel::Kernel::USER_GATES.len()
        );
    }
    if want("t3") {
        header("T3", "Growth history, recoding factors, specialization");
        let added: u32 = mx_census::multics::growth_history()
            .iter()
            .map(|e| e.lines_added)
            .sum();
        println!("  ring zero at the 9/1973 census : 44K source lines");
        for e in mx_census::multics::growth_history() {
            println!("    {} +{}K  {}", e.period, e.lines_added / 1000, e.cause);
        }
        println!(
            "  ring zero by 1977              : {}K  (x{:.2}; paper: 'almost doubled')",
            (44_000 + added) / 1000,
            (44_000 + added) as f64 / 44_000.0
        );
        let c = start_of_project();
        let equiv: u32 = c
            .in_region(Region::RingZero)
            .map(|m| m.pli_equivalent_lines(PLI_EQUIVALENT_SHRINK_PERMILLE))
            .sum();
        println!(
            "  ring zero in uniform PL/I      : {}K (paper: 36K; source 44K)",
            equiv / 1000
        );
        let pct = specialization_estimate(&c, &standard_transforms());
        println!("  file-store specialization      : another {pct:.0}% at most (paper: 15-25%)\n");
    }
    if want("p1") {
        header("P1", "Performance — the dynamic linker");
        println!("{}", p1_linker(24));
        println!("  paper: \"the dynamic linker ran somewhat slower when removed\"\n");
    }
    if want("p2") {
        header("P2", "Performance — the name space manager");
        println!("{}", p2_namespace(TreeSpec::small(), 4));
        println!("  paper: \"the name space manager ran somewhat faster\"\n");
    }
    if want("p3") {
        header("P3", "Performance — the answering service");
        let c = p3_answering(10);
        println!("{c}");
        println!(
            "  paper: \"ran about 3% slower\"; measured: {:+.1}%\n",
            c.kernel_vs_legacy_pct() - 100.0
        );
    }
    if want("p4") {
        header(
            "P4",
            "Performance — the memory manager (ample -> cramped core)",
        );
        let rows = p4_memory(&[80, 56, 44, 36], 40, 1500, 10);
        println!(
            "  {:>7} {:>14} {:>9} {:>14} {:>14} {:>9}",
            "pgable", "old cycles", "faults", "new total", "new user", "faults"
        );
        for r in &rows {
            println!(
                "  {:>7} {:>14} {:>9} {:>14} {:>14} {:>9}",
                r.frames,
                r.legacy_cycles,
                r.legacy_faults,
                r.kernel_total_cycles,
                r.kernel_user_cycles,
                r.kernel_faults
            );
        }
        println!(
            "  paper: \"the performance impact of the new design would be negative, but \
             not\n  significant unless the system were cramped for memory and thrashing\"\n"
        );
    }
    if want("p5") {
        header(
            "P5",
            "Performance — one-level vs two-level processor multiplexing",
        );
        let rows = p5_scheduler(&[1, 2, 3, 6, 10], 60);
        println!(
            "  {:>6} {:>16} {:>16} {:>12}",
            "procs", "old cyc/disp", "new cyc/disp", "cheap VP %"
        );
        for r in &rows {
            println!(
                "  {:>6} {:>16} {:>16} {:>11.0}%",
                r.processes, r.legacy_cycles, r.kernel_cycles, r.cheap_switch_pct
            );
        }
        println!("  paper: \"a performance about the same as the current system\"\n");
    }
    if want("p6") {
        header("P6", "The eventcount substrate (deterministic counters)");
        let mut table = mx_sync::EventTable::new();
        let ec = table.create();
        for w in 0..4 {
            table.await_value(ec, u64::from(w) / 2 + 1, mx_sync::WaiterId(w));
        }
        let woke1 = table.advance(ec).len();
        let woke2 = table.advance(ec).len();
        println!(
            "  4 waiters on thresholds 1,1,2,2: advance #1 wakes {woke1}, advance #2 wakes {woke2}"
        );
        println!("  the advancer never names a waiter: broadcast, receiver-blind");
        println!("  (wall-clock threaded measurements: `cargo bench --bench eventcount`)\n");
    }
    if want("p7") {
        header("P7", "Performance — quota: dynamic walk vs static cell");
        let rows = p7_quota(&[1, 2, 4, 6, 8], 6);
        println!(
            "  {:>6} {:>16} {:>12} {:>16}",
            "depth", "old cyc/grow", "walk levels", "new cyc/grow"
        );
        for r in &rows {
            println!(
                "  {:>6} {:>16} {:>12.1} {:>16}",
                r.depth, r.legacy_cycles, r.legacy_walk_levels, r.kernel_cycles
            );
        }
        println!("  the new design's growth cost is depth-blind: the cell is named, not found\n");
    }
    if want("p8") {
        header(
            "P8",
            "Performance — missing-page service and the lock window",
        );
        println!("{}", p8_fault_path(8, 4));
        println!();
    }
    if want("a1") {
        header("A1", "Ablation — the name-space prefix cache");
        println!("{}", a1_namespace_cache(TreeSpec::small(), 4));
        println!();
    }
    if want("a2") {
        header("A2", "Ablation — the purifier's idle-priority execution");
        println!("{}", a2_purifier_idle(36, 40, 1500, 10));
        println!();
    }
    if want("a3") {
        header("A3", "Ablation — the descriptor-walk associative memory");
        for c in a3_associative_memory(80, 40, 1200, 10) {
            println!("{c}");
        }
        println!(
            "  the driver asserts hits + misses == lookups and that every charged\n  \
             cycle is attributed to a subsystem; a violation aborts the run\n"
        );
    }
    if want("s1") {
        header("S1", "Semantics — mythical identifiers");
        println!("{}", s1_mythical_identifiers());
    }
    if want("s2") {
        header("S2", "Semantics — zero-page accounting vs confinement");
        println!("{}", s2_confinement());
    }
    if want("s3") {
        header("S3", "Semantics — full packs and the upward signal");
        println!("{}", s3_relocation());
    }
    if want("r1") {
        header("R1", "Robustness — crash matrix, salvager-driven recovery");
        if stride > 1 {
            println!("  (crash matrix subsampled: every {stride}th write ordinal)\n");
        }
        println!("{}", r1_crash_recovery(stride));
        println!(
            "  paper: the salvager turns operational failures into repairable\n  \
             inconsistencies; every enumerated crash point above recovered\n"
        );
    }

    if want("x1") {
        header("X1", "Exploration — schedules of the two-level scheduler");
        println!("{}", mx_bench::x1_schedule_exploration());
        println!(
            "  every schedule passed meter conservation, record conservation,\n  \
             wakeup exactness, ticket total-order, and old/new user-visible parity;\n  \
             any violation replays from its printed seed/schedule string alone\n"
        );
    }

    if want("l1") {
        header("L1", "Load — multi-user throughput/latency scaling");
        if l1_max < 1024 {
            println!("  (sweep capped at {l1_max} users)\n");
        }
        println!("{}", mx_bench::l1_load_scaling(l1_max));
        println!(
            "  every scale point passed meter conservation, record conservation,\n  \
             and old/new user-visible parity; with 2 CPUs both retire user work\n"
        );
    }

    if want("c1") {
        header("C1", "Chaos — load x crashes x adversarial schedules");
        if c1_max < 64 {
            println!("  (population capped at {c1_max} users)\n");
        }
        println!("{}", mx_bench::c1_chaos_composition(c1_max));
        println!(
            "  the same logical stream survived three mid-load power failures per\n  \
             design and schedule: salvage converged, queued logins were re-admitted\n  \
             in FIFO order, and the old/new label streams stayed identical\n"
        );
    }

    if want("m1") {
        header("M1", "Scale — sharded parallel load, wall-clock ops/sec");
        if m1_max < 100_000 {
            println!("  (sweep capped at {m1_max} users)\n");
        }
        println!("{}", mx_bench::m1_parallel_load(m1_max, shards));
        println!(
            "  every point passed the oracle battery per shard and post-merge, and\n  \
             the largest point's merged stream is byte-identical at K=1 and K={shards}\n"
        );
    }

    if want("s1") {
        header(
            "S1",
            "Robustness — online salvage under re-admitted traffic",
        );
        if s1_max < 64 {
            println!("  (population capped at {s1_max} users)\n");
        }
        println!("{}", mx_bench::s1_online_salvage(s1_max));
        println!(
            "  the same crash plan as C1, but the population is re-admitted while\n  \
             the salvager still holds most of the hierarchy: every directory release\n  \
             passed the oracle battery, blocked references retried within budget,\n  \
             and the user-visible stream is identical to stop-the-world recovery\n"
        );
    }

    if want("g1") {
        header(
            "G1",
            "Gate — the runtime dependency lattice, from meter events",
        );
        println!("{}", mx_bench::g1_lattice_gate());
        println!(
            "  the battery's own meter events prove the kernel design stays inside\n  \
             its declared lattice (any new edge or loop aborts this run), show the\n  \
             old supervisor's Figure-3 improper edges live, and rank which to break\n"
        );
    }

    if want("f1") {
        header(
            "F1",
            "Fleet — multi-machine Multics behind one answering service",
        );
        if machines != 4 || f1_max != 64 {
            println!("  (fleet capped at {machines} machines, {f1_max} users)\n");
        }
        println!("{}", mx_bench::f1_fleet_scaling(machines, f1_max));
        println!(
            "  every machine count produced the single-machine label stream, FIFO\n  \
             admission, and fleet-wide record conservation; the specialized file\n  \
             store's saving is measured against the paper's 15-25% projection\n"
        );
    }

    if let Some(path) = trace_path {
        let runs = mx_bench::trace::drain();
        let json = mx_bench::trace::render_json(&runs);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write trace to {path}: {e}");
            std::process::exit(1);
        }
        println!(
            "cycle-attribution trace: {} runs written to {path}",
            runs.len()
        );
    }
}

fn header(id: &str, title: &str) {
    println!("----------------------------------------------------------------");
    println!(" [{id}] {title}");
    println!("----------------------------------------------------------------");
}
