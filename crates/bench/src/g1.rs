//! G1 — the runtime dependency lattice, derived from meter events.
//!
//! Every experiment in the battery already meters which subsystem each
//! cycle belongs to; since the meter also records every scope crossing
//! and every tagged cross-subsystem mutation into the bounded edge
//! ledger, the battery doubles as a *measurement of the dependency
//! structure the running system actually obeys*. This experiment runs
//! the battery on both designs, folds the ledgers, and diffs each
//! against the lattice its design declares:
//!
//! * the kernel design must come back **clean** — zero undeclared edges,
//!   zero loops. Any regression (a new crossing, a new tangle) fails CI
//!   right here, which is the paper's certification argument turned into
//!   a gate;
//! * the 1974 supervisor is expected to come back **indicted** — the
//!   quota walk's direct AST reference and the full-pack relocation
//!   reach upward from page control, exactly Figure 3's improper edges —
//!   and the advisor ranks which of them to break first;
//! * declared pairs the battery never drives are reported as coverage
//!   gaps (they can only ratchet down; `tests/lattice_gate.rs` pins the
//!   floor).
//!
//! The gate also distrusts itself: every invocation plants a known
//! layering cheat (page control invoking the answering service) in a
//! scratch kernel and proves the gate reports exactly that edge, with a
//! replay string that reproduces the verdict from the parsed seed alone.

use mx_aim::Label;
use mx_deps::runtime::{check, observed_graph, render_report, GateReport};
use mx_deps::suggest_breaks;
use mx_explore::{
    run_kernel as scenario_kernel, run_legacy as scenario_legacy, PctPolicy, ScenarioKind,
    SeededRandomPolicy,
};
use mx_hw::meter::{CounterSet, EdgeSet};
use mx_hw::{Clock, EdgeKind, Subsystem};
use mx_kernel::demux::FramingSpec;
use mx_kernel::{Kernel, KernelConfig, UserId};
use mx_load::{
    run_both, run_kernel_c1, run_kernel_fleet, run_kernel_s1, run_legacy_c1, run_legacy_fleet,
    run_legacy_s1, run_sharded, C1Policy, C1Spec, FleetSpec, LoadSpec, S1Spec, ShardSpec,
};
use mx_sync::FifoPolicy;

/// The seed every battery leg runs under; printed in the self-check's
/// replay string.
pub const BATTERY_SEED: u64 = 0x61;

/// A small kernel for the single-machine legs (demultiplexer driver,
/// planted cheat).
fn scratch_kernel() -> Kernel {
    Kernel::boot(KernelConfig {
        frames: 128,
        records_per_pack: 256,
        toc_slots_per_pack: 64,
        pt_slots: 24,
        max_processes: 4,
        root_quota: 200,
        ..KernelConfig::default()
    })
}

/// Drives the kernel demultiplexer so the `user_domain -> network` pair
/// is exercised: attach a framing spec, claim a channel, deliver a
/// frame, read it back. (The legacy design routes terminals through the
/// answering service; it has no separate network scope to exercise.)
fn demux_leg(kernel_edges: &mut EdgeSet) {
    let mut k = scratch_kernel();
    k.register_account("net", UserId(1), 7, Label::BOTTOM);
    let pid = k.login_residue("net", 7, Label::BOTTOM).expect("login");
    let stream = k.demux_attach(FramingSpec::ARPANET);
    k.demux_claim(pid, stream, 7).expect("claim");
    k.demux_receive(stream, &[0, 0, 7, b'm', b'x', b'\r'])
        .expect("receive");
    let bytes = k.demux_read(pid, stream, 7).expect("read");
    assert_eq!(bytes, b"mx\r", "demux leg must round-trip the frame");
    kernel_edges.merge(k.machine.clock.edge_set());
}

/// A P-series leg: the P4/A2 cramped-memory shape — a seeded reference
/// string through a too-small frame pool with the purifier run at idle
/// every 16 references — so the paging, quota, and purifier mechanisms
/// the P-series measures also contribute their edges. (The other
/// P-series mechanisms — linking, name resolution, answering service,
/// dispatch, quota growth, fault path — are the load scripts' and
/// scenarios' ops, already in the battery.)
fn purifier_leg(kernel_edges: &mut EdgeSet) {
    use mx_hw::Word;
    let mut k = Kernel::boot(KernelConfig {
        frames: 36 + 13,
        pt_slots: 16,
        max_processes: 4,
        records_per_pack: 2048,
        toc_slots_per_pack: 64,
        root_quota: 1200,
        ..KernelConfig::default()
    });
    k.register_account("p", UserId(1), 1, Label::BOTTOM);
    let pid = k.login_residue("p", 1, Label::BOTTOM).expect("login");
    let root = k.root_token();
    let tok = k
        .create_entry(
            pid,
            root,
            "data",
            mx_kernel::Acl::owner(UserId(1)),
            Label::BOTTOM,
            false,
        )
        .expect("segment");
    let segno = k.initiate(pid, tok).expect("initiate");
    let string = crate::workload::RefString::generate(41, 40, 1500, 10);
    for (i, (page, write)) in string.refs.iter().enumerate() {
        let wordno = page * mx_hw::PAGE_WORDS as u32;
        if *write {
            k.write_word(pid, segno, wordno, Word::new(u64::from(*page) + 1))
                .expect("write");
        } else {
            k.read_word(pid, segno, wordno).expect("read");
        }
        if i % 16 == 15 {
            k.run_purifier(4).expect("purifier");
        }
    }
    kernel_edges.merge(k.machine.clock.edge_set());
}

/// Runs the full battery — ample and tight load, sharded load, chaos
/// composition, online salvage, every exploration scenario under three
/// policies, the P-series cramped-memory/purifier leg, and the
/// demultiplexer driver — folding each leg's edge ledger into one set
/// per design.
pub fn battery() -> (EdgeSet, EdgeSet) {
    let mut kernel = EdgeSet::new();
    let mut legacy = EdgeSet::new();

    for spec in [
        LoadSpec::new(6, BATTERY_SEED),
        LoadSpec::tight(6, BATTERY_SEED),
    ] {
        let (k, l) = run_both(&spec);
        kernel.merge(&k.edges);
        legacy.merge(&l.edges);
    }
    let sharded = run_sharded(
        &ShardSpec {
            sessions: 8,
            seed: BATTERY_SEED,
            shard_users: 4,
        },
        2,
    );
    kernel.merge(&sharded.kernel.edges);
    legacy.merge(&sharded.legacy.edges);

    let c1 = C1Spec::new(6, BATTERY_SEED, 0xFA11, 2, C1Policy::Fifo);
    kernel.merge(&run_kernel_c1(&c1).edges);
    legacy.merge(&run_legacy_c1(&c1).edges);
    let s1 = S1Spec::new(6, BATTERY_SEED, 0xFA11, 2, C1Policy::Fifo);
    kernel.merge(&run_kernel_s1(&s1).edges);
    legacy.merge(&run_legacy_s1(&s1).edges);

    for kind in ScenarioKind::ALL {
        kernel.merge(&scenario_kernel(kind, 1, Box::new(FifoPolicy)).edges);
        kernel.merge(&scenario_kernel(kind, 1, Box::new(SeededRandomPolicy::new(7))).edges);
        kernel.merge(&scenario_kernel(kind, 1, Box::new(PctPolicy::new(7))).edges);
        if kind.has_legacy() {
            legacy.merge(&scenario_legacy(kind, 1).edges);
        }
    }

    fleet_leg(&mut kernel, &mut legacy);

    purifier_leg(&mut kernel);
    demux_leg(&mut kernel);
    (kernel, legacy)
}

/// The F1 leg: a two-machine fleet on each design, the kernel one in
/// the specialized file-store configuration so the resident service
/// path (network-scoped dispatch reaching into segment and page
/// control) and the answering service's admission directives on the
/// wire contribute their edges. The fleet must itself be clean — a
/// dirty leg would smuggle noise into the very ledger the gate trusts.
fn fleet_leg(kernel_edges: &mut EdgeSet, legacy_edges: &mut EdgeSet) {
    let mut fspec = FleetSpec::new(2, 6, BATTERY_SEED);
    fspec.specialized_store = true;
    let fk = run_kernel_fleet(&fspec, None);
    assert!(
        fk.violations.is_empty(),
        "G1 fleet leg (kernel): {:?}",
        fk.violations
    );
    assert!(fk.remote_ops > 0, "G1 fleet leg must cross the wire");
    kernel_edges.merge(&fk.edges);

    let fl = run_legacy_fleet(&FleetSpec::new(2, 6, BATTERY_SEED), None);
    assert!(
        fl.violations.is_empty(),
        "G1 fleet leg (legacy): {:?}",
        fl.violations
    );
    legacy_edges.merge(&fl.edges);

    store_leg(kernel_edges);
}

/// The specialized store with its pages gone cold: a scratch kernel
/// writes a served file, sweeps everything to disk (`sync_to_disk`
/// deactivates every segment), then reads the file back through the
/// resident network entry — so the reactivation and the page-in it
/// takes are attributed to the network scope, deterministically
/// exercising the declared `network -> segment_control` and
/// `network -> page_control` pairs (which a warm store never shows:
/// its daemon just wrote the pages).
fn store_leg(kernel_edges: &mut EdgeSet) {
    use mx_hw::{EdgeKind, Subsystem, Word};
    let mut k = scratch_kernel();
    k.register_account("store", UserId(1), 7, Label::BOTTOM);
    let pid = k.login_residue("store", 7, Label::BOTTOM).expect("login");
    let root = k.root_token();
    let acl = mx_kernel::Acl::owner(UserId(1));
    let served = k
        .create_entry(pid, root, "served", acl, Label::BOTTOM, false)
        .expect("segment");
    let sa = k.initiate(pid, served).expect("initiate");
    k.write_word(pid, sa, 0, Word::new(0xF1EE)).expect("write");
    k.sync_to_disk().expect("sweep");
    let before = k.machine.clock.edge_snapshot();
    let w = k.resident_read_word(pid, sa, 0).expect("resident read");
    assert_eq!(w, Word::new(0xF1EE), "the cold read must return the bytes");
    let delta = before.delta(k.machine.clock.edge_set());
    for to in [Subsystem::SegmentControl, Subsystem::PageControl] {
        assert!(
            delta.count(EdgeKind::Invoke, Subsystem::Network, to) > 0,
            "store leg: the cold resident read must fault through {}",
            to.name()
        );
    }
    kernel_edges.merge(k.machine.clock.edge_set());
}

/// Boots a scratch kernel, plants the known layering cheat `1 + seed %
/// 3` times, and gates the *delta* ledger (so boot traffic cannot mask
/// the plant). The cheat count depends on the seed, which is what makes
/// the replay string a real reproduction recipe rather than a label.
pub fn cheat_run(seed: u64) -> GateReport {
    let mut k = scratch_kernel();
    let before = k.machine.clock.edge_snapshot();
    for _ in 0..(1 + seed % 3) {
        k.plant_lattice_cheat_for_test();
    }
    let delta = before.delta(k.machine.clock.edge_set());
    check(&mx_kernel::kernel_runtime_lattice(), &delta)
}

fn indent(s: &str) -> String {
    s.lines().map(|l| format!("  {l}\n")).collect()
}

/// Runs the G1 lattice gate and renders the report.
///
/// # Panics
///
/// Panics — failing CI — if the kernel battery shows any undeclared
/// edge or loop, if the legacy battery fails to show the Figure-3
/// improper edges, or if the planted-cheat self-check does not report
/// exactly the planted edge and replay from its printed seed.
pub fn g1_lattice_gate() -> String {
    let (kernel_edges, legacy_edges) = battery();
    let kernel_report = check(&mx_kernel::kernel_runtime_lattice(), &kernel_edges);
    let legacy_report = check(&mx_legacy::legacy_runtime_lattice(), &legacy_edges);

    let mut out = String::new();
    out.push_str("  kernel design (must be clean — this is the CI gate):\n");
    out.push_str(&indent(&render_report(&kernel_report)));
    assert!(
        kernel_report.is_clean(),
        "G1: the kernel design crossed a boundary its lattice forbids\n{}",
        render_report(&kernel_report)
    );

    out.push_str("\n  1974 supervisor (expected to trip the gate):\n");
    out.push_str(&indent(&render_report(&legacy_report)));
    assert!(
        !legacy_report.is_clean(),
        "G1: the battery stopped driving the old design's improper paths — \
         the legacy gate came back clean, which would make the kernel's \
         clean verdict vacuous"
    );
    let has = |from: Subsystem, to: Subsystem, kind: EdgeKind| {
        legacy_report
            .undeclared
            .iter()
            .any(|e| e.from == from && e.to == to && e.kind == kind)
    };
    assert!(
        has(
            Subsystem::PageControl,
            Subsystem::SegmentControl,
            EdgeKind::SharedData
        ),
        "G1: the quota walk's direct AST reference must be observed"
    );
    assert!(
        has(
            Subsystem::PageControl,
            Subsystem::DirectoryControl,
            EdgeKind::SharedData
        ),
        "G1: full-pack relocation from the page path must be observed"
    );

    // Rank the old design's observed tangle: which edges to break first.
    let g = observed_graph(&legacy_edges);
    let plan = suggest_breaks(&g);
    out.push_str("\n  break advice for the observed legacy tangle:\n");
    out.push_str(&indent(&mx_deps::advisor::render_plan(&g, &plan)));

    // Self-check: the gate must catch a cheat it knows about, and the
    // verdict must reproduce from the printed string alone.
    let cheat = cheat_run(BATTERY_SEED);
    assert!(
        !cheat.is_clean(),
        "G1 self-check: the planted layering cheat went unnoticed"
    );
    assert_eq!(
        cheat.undeclared.len(),
        1,
        "G1 self-check: expected exactly the planted edge, got {:?}",
        cheat.undeclared
    );
    let planted = &cheat.undeclared[0];
    assert_eq!(
        (planted.from, planted.to, planted.kind),
        (
            Subsystem::PageControl,
            Subsystem::AnsweringService,
            EdgeKind::Invoke
        ),
        "G1 self-check: wrong edge attributed"
    );
    let printed = format!("g1 cheat seed={BATTERY_SEED:#x}");
    let parsed_seed = printed
        .rsplit("seed=")
        .next()
        .and_then(|s| s.strip_prefix("0x"))
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .expect("printed replay string parses");
    let again = cheat_run(parsed_seed);
    assert_eq!(
        again.undeclared, cheat.undeclared,
        "G1 self-check: replay from the printed string did not reproduce"
    );
    out.push_str(&format!(
        "\n  planted-cheat self-check       : caught {} -> {} [{}] x{} and \
         replayed from '{printed}'\n",
        planted.from.name(),
        planted.to.name(),
        planted.kind.name(),
        planted.count
    ));

    let kernel_lattice = mx_kernel::kernel_runtime_lattice();
    let exercised_pairs = kernel_lattice.pairs().len() - kernel_report.unexercised.len();
    out.push_str(&format!(
        "  kernel coverage                : {exercised_pairs}/{} declared pairs exercised\n",
        kernel_lattice.pairs().len()
    ));

    let mut counters = CounterSet::new();
    counters.set("kernel_observed_edges", kernel_report.observed.len() as u64);
    counters.set("kernel_undeclared", kernel_report.undeclared.len() as u64);
    counters.set("kernel_loops", kernel_report.loops.len() as u64);
    counters.set("kernel_exercised_pairs", exercised_pairs as u64);
    counters.set("legacy_observed_edges", legacy_report.observed.len() as u64);
    counters.set("legacy_undeclared", legacy_report.undeclared.len() as u64);
    counters.set("legacy_loops", legacy_report.loops.len() as u64);
    crate::trace::publish("g1.lattice", &Clock::new(), counters);

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn g1_gates_clean_kernel_and_indicts_legacy() {
        let report = g1_lattice_gate();
        assert!(report.contains("-> CLEAN"), "kernel verdict line");
        assert!(report.contains("-> VIOLATION"), "legacy verdict line");
        assert!(report.contains("undeclared: page_control -> segment_control [shared-data]"));
        assert!(report.contains("planted-cheat self-check       : caught"));
    }

    #[test]
    fn the_cheat_count_tracks_the_seed() {
        let r1 = cheat_run(0);
        let r2 = cheat_run(1);
        assert_eq!(r1.undeclared[0].count, 1);
        assert_eq!(r2.undeclared[0].count, 2);
    }
}
