//! C1 — the chaos composition: load × crashes × adversarial schedules.
//!
//! The earlier experiments each hold two of the three hard variables
//! still: L1 runs the multi-user load with no faults, R1 crashes a
//! small fixed workload with no concurrency, X1 perturbs schedules on
//! microscenarios with no storage pressure. C1 composes all three. A
//! long-horizon `crates/load` population runs on tight storage; at
//! every epoch boundary a seeded fault plan tears or drops the final
//! in-flight transfer and power fails mid-`sync_to_disk`; a fresh
//! system boots from the surviving image, salvages twice (repair, then
//! a must-be-clean check), re-admits the queued population through the
//! answering service in the original FIFO order, re-opens surviving
//! sessions at their script positions, and the identical logical
//! stream continues. The kernel runs the whole composition under FIFO,
//! seeded-random, and PCT schedules; the 1974 supervisor's inherent
//! schedule is the parity baseline.
//!
//! Oracles at every epoch boundary: meter conservation, per-pack
//! record conservation, wakeup exactness, salvage idempotence,
//! conservation of sessions (no stranded or lost logins), FIFO
//! admission fairness across the crash, label-by-label old/new parity
//! per epoch, and byte-identical reruns from the same (seed, plan,
//! schedule) triple. Any violation aborts the experiment printing the
//! replayable repro string. A built-in self-check runs a deliberately
//! broken recovery (a queued login dropped) and proves the oracles
//! catch it — and that the printed triple replays to the identical
//! violations.

use mx_hw::meter::CounterSet;
use mx_hw::Clock;
use mx_load::{run_kernel_c1, run_legacy_c1, C1Policy, C1Run, C1SelfCheck, C1Spec};

/// Stream seed for the scripted population.
const SEED: u64 = 0x0C1_1977;
/// Seed of the crash-mode stream.
const PLAN_SEED: u64 = 0xFA17_0C1A;
/// Schedule seed for the random and PCT policies.
const SCHED_SEED: u64 = 0x5C4E_D011;
/// Crash/salvage/re-admit boundaries cut into the stream.
const CRASHES: u32 = 3;

/// Cross-run checks the single-design harness cannot do alone: parity
/// against the legacy baseline per epoch, identical epoch bounds and
/// admission order, and byte-identical reruns.
fn cross_checks(k: &C1Run, k2: &C1Run, l: &C1Run, spec: &C1Spec) -> Vec<String> {
    let repro = spec.repro(k.design);
    let mut out = Vec::new();
    if k.transcript() != k2.transcript() {
        out.push(format!(
            "rerun of the same triple diverged — the run is not a pure function of \
             (seed, plan, schedule) [{repro}]"
        ));
    }
    if k.epoch_bounds != l.epoch_bounds {
        out.push(format!(
            "epoch bounds differ: kernel {:?}, legacy {:?} [{repro}]",
            k.epoch_bounds, l.epoch_bounds
        ));
    }
    if k.parity.len() != l.parity.len() {
        out.push(format!(
            "parity: kernel emitted {} labels, legacy {} [{repro}]",
            k.parity.len(),
            l.parity.len()
        ));
    }
    // Label-by-label, reported against the epoch the divergence is in.
    let mut bounds = k.epoch_bounds.clone();
    bounds.push(k.parity.len().min(l.parity.len()));
    let mut start = 0usize;
    for (e, &end) in bounds.iter().enumerate() {
        for i in start..end {
            if k.parity.get(i) != l.parity.get(i) {
                out.push(format!(
                    "parity: epoch {e} label {i} differs — kernel {:?}, legacy {:?} [{repro}]",
                    k.parity.get(i),
                    l.parity.get(i)
                ));
                break;
            }
        }
        start = end;
    }
    if k.admitted_order != l.admitted_order {
        out.push(format!(
            "admission fairness: kernel admitted {:?}, legacy {:?} [{repro}]",
            k.admitted_order, l.admitted_order
        ));
    }
    if !k.admitted_order.windows(2).all(|w| w[0] < w[1]) {
        out.push(format!(
            "admission fairness: kernel admissions out of FIFO order: {:?} [{repro}]",
            k.admitted_order
        ));
    }
    let crashed = k.epochs.iter().filter(|e| e.crashed).count();
    if crashed != spec.crashes as usize {
        out.push(format!(
            "only {crashed} of {} crash epochs completed — the stream drained early [{repro}]",
            spec.crashes
        ));
    }
    if let Some(first) = k.epochs.first() {
        if first.queued_at_crash == 0 {
            out.push(format!(
                "first crash hit an empty admission queue — re-admission across the \
                 boundary was not exercised [{repro}]"
            ));
        }
        if first.live_at_crash == 0 {
            out.push(format!(
                "first crash hit no live sessions — recovery under traffic was not \
                 exercised [{repro}]"
            ));
        }
    }
    out
}

/// The deliberately broken run: recovery drops a queued login. The
/// oracles must catch it, the violation must carry the repro triple,
/// and replaying the triple must reproduce the identical violations.
fn self_check() -> String {
    let mut spec = C1Spec::new(8, SEED, PLAN_SEED, 2, C1Policy::Fifo);
    spec.self_check = C1SelfCheck::DropQueuedLogin;
    let broken = run_kernel_c1(&spec);
    assert!(
        !broken.violations.is_empty(),
        "C1 self-check: a recovery that drops a queued login went uncaught"
    );
    assert!(
        broken
            .violations
            .iter()
            .any(|v| v.contains("seed=") && v.contains("plan=") && v.contains("schedule=")),
        "C1 self-check: violations lack the replayable repro string: {:?}",
        broken.violations
    );
    let replay = run_kernel_c1(&spec);
    assert_eq!(
        broken.violations, replay.violations,
        "C1 self-check: the repro triple did not replay to identical violations"
    );
    format!(
        "self-check: dropped queued login caught ({} violations, e.g. \"{}\"), \
         and the repro triple replays identically",
        broken.violations.len(),
        broken.violations[0]
    )
}

fn row(out: &mut String, r: &C1Run) {
    let crashed = r.epochs.iter().filter(|e| e.crashed).count();
    let problems: usize = r.epochs.iter().map(|e| e.salvage_problems).sum();
    let repairs: usize = r.epochs.iter().map(|e| e.salvage_repairs).sum();
    out.push_str(&format!(
        "  {:<7} {:<12} {:>6} {:>7} {:>9.3} {:>9.3} {:>5} {:>5} {:>6} {:>6} {:>7}\n",
        r.design,
        r.schedule,
        r.ops,
        crashed,
        r.load_cycles as f64 / 1e6,
        r.recovery_cycles as f64 / 1e6,
        r.hist.percentile(50).expect("C1 rows always retire ops"),
        r.hist.percentile(99).expect("C1 rows always retire ops"),
        r.queued_peak,
        problems,
        repairs,
    ));
}

/// Runs the chaos composition at `sessions` users and renders the
/// report. `sessions` is floored at 8 so the composition always has an
/// admission storm to recover.
///
/// # Panics
///
/// Panics on any oracle violation, printing the replayable
/// `seed=… plan=… schedule=…` string, and if the self-check's broken
/// recovery goes uncaught.
pub fn c1_chaos_composition(sessions: usize) -> String {
    let sessions = sessions.max(8);
    let base = C1Spec::new(sessions, SEED, PLAN_SEED, CRASHES, C1Policy::Fifo);

    let legacy = run_legacy_c1(&base);
    let legacy2 = run_legacy_c1(&base);
    let mut violations: Vec<String> = legacy.violations.clone();
    if legacy.transcript() != legacy2.transcript() {
        violations.push(format!(
            "legacy rerun diverged — not a pure function of the triple [{}]",
            base.repro("legacy")
        ));
    }

    let mut out = String::new();
    out.push_str(&format!(
        "  {:<7} {:<12} {:>6} {:>7} {:>9} {:>9} {:>5} {:>5} {:>6} {:>6} {:>7}\n",
        "design",
        "schedule",
        "ops",
        "crashes",
        "loadMcy",
        "recovMcy",
        "p50",
        "p99",
        "queued",
        "salv-p",
        "salv-r",
    ));
    row(&mut out, &legacy);

    let policies = [
        C1Policy::Fifo,
        C1Policy::Random(SCHED_SEED),
        C1Policy::Pct(SCHED_SEED),
    ];
    let mut fifo_run: Option<C1Run> = None;
    for policy in policies {
        let spec = C1Spec { policy, ..base };
        let k = run_kernel_c1(&spec);
        let k2 = run_kernel_c1(&spec);
        violations.extend(k.violations.iter().cloned());
        violations.extend(cross_checks(&k, &k2, &legacy, &spec));
        row(&mut out, &k);
        if policy == C1Policy::Fifo {
            fifo_run = Some(k);
        }
    }

    if let Some(bad) = violations.first() {
        panic!(
            "C1 violation ({} total): {bad}\n\
             (replay: rebuild the C1Spec from the bracketed seed/plan/schedule string)",
            violations.len()
        );
    }

    out.push_str(
        "  (loadMcy = engine cycles summed over epochs; recovMcy = bootload+salvage+\n  \
         reconcile cycles summed over crashes; salv-p/salv-r = problems found and\n  \
         repairs made by the repairing salvage pass across all crash images)\n",
    );

    let fifo = fifo_run.expect("fifo policy is in the sweep");
    out.push_str("\n  per-epoch detail (kernel under fifo vs legacy inherent):\n");
    out.push_str(&format!(
        "  {:<7} {:>5} {:>6} {:>9} {:>5} {:>6} {:>8} {:>6} {:>6} {:>9}\n",
        "design",
        "epoch",
        "ops",
        "Mcycles",
        "live",
        "queued",
        "crashed",
        "salv-p",
        "salv-r",
        "recovMcy",
    ));
    for r in [&fifo, &legacy] {
        for (i, e) in r.epochs.iter().enumerate() {
            out.push_str(&format!(
                "  {:<7} {:>5} {:>6} {:>9.3} {:>5} {:>6} {:>8} {:>6} {:>6} {:>9.3}\n",
                r.design,
                i,
                e.ops,
                e.cycles as f64 / 1e6,
                e.live_at_crash,
                e.queued_at_crash,
                e.crashed,
                e.salvage_problems,
                e.salvage_repairs,
                e.recovery_cycles as f64 / 1e6,
            ));
        }
    }

    out.push_str(&format!("\n  {}\n", self_check()));
    out.push_str(&format!(
        "\n  sessions scripted              : {sessions}\n"
    ));
    out.push_str(&format!(
        "  crash/salvage/re-admit epochs  : {CRASHES} (per design and schedule)\n"
    ));
    out.push_str(&format!(
        "  schedules swept                : {} (kernel) + inherent (legacy)\n",
        policies.len()
    ));
    out.push_str(&format!(
        "  parity labels compared         : {} (per schedule, label-by-label)\n",
        legacy.parity.len()
    ));
    out.push_str("  reruns byte-identical          : yes (every design and schedule)\n");
    out.push_str("  oracle violations              : 0\n");

    let mut counters = CounterSet::new();
    counters.set("sessions", sessions as u64);
    counters.set("crashes", u64::from(CRASHES));
    counters.set("kernel_ops", fifo.ops);
    counters.set("kernel_load_cycles", fifo.load_cycles);
    counters.set("kernel_recovery_cycles", fifo.recovery_cycles);
    counters.set("legacy_ops", legacy.ops);
    counters.set("legacy_load_cycles", legacy.load_cycles);
    counters.set("legacy_recovery_cycles", legacy.recovery_cycles);
    counters.set("queued_peak", fifo.queued_peak as u64);
    counters.set(
        "salvage_repairs",
        fifo.epochs.iter().map(|e| e.salvage_repairs as u64).sum(),
    );
    crate::trace::publish("c1.chaos", &Clock::new(), counters);

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c1_runs_clean_at_smoke_scale() {
        let report = c1_chaos_composition(12);
        assert!(report.contains("oracle violations              : 0"));
        assert!(report.contains("self-check: dropped queued login caught"));
        // One legacy row plus three kernel schedule rows.
        assert!(report.contains(" inherent "));
        assert!(report.contains(" fifo "));
        assert!(report.contains(" random:"));
        assert!(report.contains(" pct:"));
    }

    #[test]
    fn c1_report_is_deterministic() {
        assert_eq!(c1_chaos_composition(8), c1_chaos_composition(8));
    }
}
