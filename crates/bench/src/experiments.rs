//! The experiment drivers: one function per reproduced result.
//!
//! Every driver is deterministic: it boots fresh systems, runs a seeded
//! workload, and reports simulated cycles from the [`mx_hw::Clock`].
//! The paper's claims are about *shape* (who is slower, by roughly what
//! factor, where behaviour crosses over), and these drivers exist to
//! regenerate those shapes.

use mx_aim::{CompartmentSet, Label, Level};
use mx_hw::Word;
use mx_kernel::{Kernel, KernelConfig, KernelError};
use mx_legacy::{Acl as LAcl, LegacyError, Supervisor, SupervisorConfig, UserId as LUserId};
use mx_user::{publish_library, AnsweringService, NameSpace, UserLinker};
use std::collections::HashMap;

use crate::workload::{symbol_table, RefString, TreeSpec};

/// A two-system cycle comparison.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// What was measured.
    pub name: &'static str,
    /// Unit of the per-item figures (e.g. "cycles/link").
    pub unit: &'static str,
    /// Old-supervisor cycles per item.
    pub legacy: u64,
    /// New-design cycles per item.
    pub kernel: u64,
    /// Free-form observations (counters, crossovers).
    pub notes: Vec<String>,
}

impl Comparison {
    /// `kernel / legacy` as a percentage (100 = parity; >100 = the new
    /// design is slower).
    pub fn kernel_vs_legacy_pct(&self) -> f64 {
        if self.legacy == 0 {
            return 0.0;
        }
        self.kernel as f64 / self.legacy as f64 * 100.0
    }
}

impl core::fmt::Display for Comparison {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "{}", self.name)?;
        writeln!(f, "  old supervisor : {:>12} {}", self.legacy, self.unit)?;
        writeln!(f, "  Kernel/Multics : {:>12} {}", self.kernel, self.unit)?;
        writeln!(
            f,
            "  new vs old     : {:>11.1}%",
            self.kernel_vs_legacy_pct()
        )?;
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------- setup --

fn boot_legacy() -> (Supervisor, mx_legacy::ProcessId) {
    let mut sup = Supervisor::boot_default();
    let pid = sup
        .create_process(LUserId(1), Label::BOTTOM)
        .expect("process");
    (sup, pid)
}

fn boot_kernel() -> (Kernel, mx_kernel::ProcessId) {
    let mut k = Kernel::boot_default();
    k.register_account("bench", mx_kernel::UserId(1), 1, Label::BOTTOM);
    let pid = k.login_residue("bench", 1, Label::BOTTOM).expect("login");
    (k, pid)
}

/// Builds the tree on the old supervisor; returns path → uid.
fn build_legacy_tree(sup: &mut Supervisor, spec: &TreeSpec) -> HashMap<String, mx_legacy::SegUid> {
    let acl = LAcl::owner(LUserId(1));
    let mut map: HashMap<String, mx_legacy::SegUid> = HashMap::new();
    for dir in spec.dir_paths() {
        let (parent_uid, name) = match dir.rfind('>') {
            Some(0) => (sup.root(), &dir[1..]),
            Some(i) => (map[&dir[..i]], &dir[i + 1..]),
            None => unreachable!("paths start with >"),
        };
        let uid = sup
            .create_directory_in(parent_uid, name, acl.clone(), Label::BOTTOM)
            .expect("tree dir");
        map.insert(dir.clone(), uid);
    }
    for file in spec.file_paths() {
        let i = file.rfind('>').expect("file under a dir");
        let parent_uid = if i == 0 { sup.root() } else { map[&file[..i]] };
        let uid = sup
            .create_segment_in(parent_uid, &file[i + 1..], acl.clone(), Label::BOTTOM)
            .expect("tree file");
        map.insert(file.clone(), uid);
    }
    map
}

/// Builds the same tree through the kernel gates; returns path → token.
fn build_kernel_tree(
    k: &mut Kernel,
    pid: mx_kernel::ProcessId,
    spec: &TreeSpec,
) -> HashMap<String, mx_kernel::ObjToken> {
    let acl = mx_kernel::Acl::owner(mx_kernel::UserId(1));
    let mut map: HashMap<String, mx_kernel::ObjToken> = HashMap::new();
    let root = k.root_token();
    for dir in spec.dir_paths() {
        let (parent, name) = match dir.rfind('>') {
            Some(0) => (root, &dir[1..]),
            Some(i) => (map[&dir[..i]], &dir[i + 1..]),
            None => unreachable!(),
        };
        let tok = k
            .create_entry(pid, parent, name, acl.clone(), Label::BOTTOM, true)
            .expect("tree dir");
        map.insert(dir.clone(), tok);
    }
    for file in spec.file_paths() {
        let i = file.rfind('>').expect("file under a dir");
        let parent = if i == 0 { root } else { map[&file[..i]] };
        let tok = k
            .create_entry(
                pid,
                parent,
                &file[i + 1..],
                acl.clone(),
                Label::BOTTOM,
                false,
            )
            .expect("tree file");
        map.insert(file.clone(), tok);
    }
    map
}

// ------------------------------------------------------------ P1: linker --

/// P1 — the dynamic linker, in the kernel vs. extracted.
pub fn p1_linker(n_symbols: usize) -> Comparison {
    let symbols = symbol_table(n_symbols);
    let defs: Vec<(&str, u32)> = symbols.iter().map(|(s, o)| (s.as_str(), *o)).collect();

    // Old: the in-kernel linker.
    let (mut sup, lpid) = boot_legacy();
    let lib = sup
        .create_segment_in(
            sup.root(),
            "libbench",
            LAcl::owner(LUserId(1)),
            Label::BOTTOM,
        )
        .expect("lib");
    sup.publish_definitions(lib, &defs);
    let before = sup.machine.clock.now();
    for (sym, off) in &defs {
        let l = sup.link(lpid, "libbench", sym).expect("legacy link");
        assert_eq!(l.offset, *off);
    }
    let legacy = (sup.machine.clock.now() - before) / n_symbols as u64;

    // New: the user-domain linker over the gates.
    let (mut k, kpid) = boot_kernel();
    let root = k.root_token();
    k.create_entry(
        kpid,
        root,
        "libbench",
        mx_kernel::Acl::owner(mx_kernel::UserId(1)),
        Label::BOTTOM,
        false,
    )
    .expect("lib");
    let mut ns = NameSpace::new(&mut k, kpid);
    let segno = ns.initiate(&mut k, ">libbench").expect("initiate lib");
    publish_library(&mut k, kpid, segno, &defs).expect("publish");
    let mut linker = UserLinker::new(kpid);
    let before = k.machine.clock.now();
    for (sym, off) in &defs {
        let l = linker
            .link(&mut k, &mut ns, ">libbench", sym)
            .expect("user link");
        assert_eq!(l.offset, *off);
    }
    let kernel = (k.machine.clock.now() - before) / n_symbols as u64;

    crate::trace::publish("p1.legacy", &sup.machine.clock, sup.stats.counters());
    crate::trace::publish("p1.kernel", &k.machine.clock, k.stats.counters());
    Comparison {
        name: "P1  dynamic linker (cold links)",
        unit: "cycles/link",
        legacy,
        kernel,
        notes: vec![format!(
            "user-domain linker scans the symbol table through ordinary reads; \
             {} gate crossings vs in-kernel privilege",
            k.machine.clock.gate_crossings()
        )],
    }
}

// --------------------------------------------------------- P2: name space --

/// P2 — pathname resolution, buried in the kernel vs. user-domain with
/// the search primitive and a prefix cache.
pub fn p2_namespace(spec: TreeSpec, rounds: usize) -> Comparison {
    let paths = spec.file_paths();

    let (mut sup, lpid) = boot_legacy();
    build_legacy_tree(&mut sup, &spec);
    let before = sup.machine.clock.now();
    for _ in 0..rounds {
        for p in &paths {
            sup.resolve(lpid, p, mx_legacy::AccessRight::Read)
                .expect("legacy resolve");
        }
    }
    let n = (rounds * paths.len()) as u64;
    let legacy = (sup.machine.clock.now() - before) / n;

    let (mut k, kpid) = boot_kernel();
    build_kernel_tree(&mut k, kpid, &spec);
    let mut ns = NameSpace::new(&mut k, kpid);
    let before = k.machine.clock.now();
    for _ in 0..rounds {
        for p in &paths {
            ns.resolve(&mut k, p).expect("kernel resolve");
        }
    }
    let kernel = (k.machine.clock.now() - before) / n;

    crate::trace::publish("p2.legacy", &sup.machine.clock, sup.stats.counters());
    crate::trace::publish("p2.kernel", &k.machine.clock, k.stats.counters());
    Comparison {
        name: "P2  name-space manager (repeated resolutions)",
        unit: "cycles/resolution",
        legacy,
        kernel,
        notes: vec![format!(
            "prefix cache: {} searches for {} resolutions ({} hits)",
            ns.searches, n, ns.cache_hits
        )],
    }
}

// ------------------------------------------------------- P3: answering --

/// P3 — login/logout sessions, monolithic vs. residue + user domain.
pub fn p3_answering(sessions: usize) -> Comparison {
    let mut sup = Supervisor::boot_default();
    sup.register_user("bench", LUserId(1), "pw", Label::BOTTOM);
    let before = sup.machine.clock.now();
    for _ in 0..sessions {
        let pid = sup
            .login("bench", "pw", Label::BOTTOM)
            .expect("legacy login");
        sup.dispatch();
        sup.logout("bench", pid).expect("legacy logout");
    }
    let legacy = (sup.machine.clock.now() - before) / sessions as u64;

    let mut k = Kernel::boot_default();
    let mut svc = AnsweringService::new();
    svc.register(&mut k, "bench", mx_kernel::UserId(1), "pw", Label::BOTTOM);
    let before = k.machine.clock.now();
    for _ in 0..sessions {
        let pid = svc
            .login(&mut k, "bench", "pw", Label::BOTTOM)
            .expect("kernel login");
        k.schedule();
        svc.logout(&mut k, pid).expect("kernel logout");
    }
    let kernel = (k.machine.clock.now() - before) / sessions as u64;

    crate::trace::publish("p3.legacy", &sup.machine.clock, sup.stats.counters());
    crate::trace::publish("p3.kernel", &k.machine.clock, k.stats.counters());
    Comparison {
        name: "P3  answering service (login+logout sessions)",
        unit: "cycles/session",
        legacy,
        kernel,
        notes: vec!["policy, parsing and billing run unprivileged; only the \
             authentication residue crosses the gate"
            .to_string()],
    }
}

// ----------------------------------------------------------- P4: memory --

/// One row of the memory-manager sweep.
#[derive(Debug, Clone)]
pub struct MemoryRow {
    /// Pageable frames each system was given.
    pub frames: usize,
    /// Old supervisor: total cycles.
    pub legacy_cycles: u64,
    /// Old supervisor: faults serviced.
    pub legacy_faults: u64,
    /// New design: total cycles including the purifier daemon.
    pub kernel_total_cycles: u64,
    /// New design: user-visible cycles (purifier work subtracted — it
    /// runs "at a low priority, when the processor might otherwise have
    /// been idle").
    pub kernel_user_cycles: u64,
    /// New design: faults serviced.
    pub kernel_faults: u64,
}

/// P4 — the memory manager under the same reference string, from ample
/// memory to cramped. The sweep is over *pageable* frames: each system
/// is given whatever total core makes its pageable pool exactly that
/// size (their wired layouts differ).
pub fn p4_memory(
    pageable_sweep: &[usize],
    pages: u32,
    refs: usize,
    working_set: u32,
) -> Vec<MemoryRow> {
    let string = RefString::generate(41, pages, refs, working_set);
    let mut rows = Vec::new();
    for &pageable in pageable_sweep {
        // Old supervisor: wired = 1 scratch + 4 page-table frames
        // (16 AST slots) + 4 dsegs.
        let frames = pageable + 9;
        let mut sup = Supervisor::boot(SupervisorConfig {
            frames,
            ast_slots: 16,
            max_processes: 4,
            records_per_pack: 2048,
            toc_slots_per_pack: 64,
            root_quota_pages: 1200,
            ..SupervisorConfig::default()
        });
        let lpid = sup
            .create_process(LUserId(1), Label::BOTTOM)
            .expect("process");
        sup.create_segment_in(sup.root(), "data", LAcl::owner(LUserId(1)), Label::BOTTOM)
            .expect("segment");
        let segno = sup.initiate(lpid, "data").expect("initiate");
        let before = sup.machine.clock.snapshot();
        for (page, write) in &string.refs {
            let wordno = page * mx_hw::PAGE_WORDS as u32 + (page % 100);
            if *write {
                sup.user_write(lpid, segno, wordno, Word::new(u64::from(*page) + 1))
                    .expect("legacy write");
            } else {
                sup.user_read(lpid, segno, wordno).expect("legacy read");
            }
        }
        let ldelta = before.delta(&sup.machine.clock.snapshot());

        // New design, purifier run in idle gaps. Wired = 1 scratch +
        // 8 core-segment frames (VP states, cell table, 4 page-table
        // frames, system space) + 4 dsegs.
        let kframes = pageable + 13;
        let mut k = Kernel::boot(KernelConfig {
            frames: kframes,
            pt_slots: 16,
            max_processes: 4,
            records_per_pack: 2048,
            toc_slots_per_pack: 64,
            root_quota: 1200,
            ..KernelConfig::default()
        });
        k.register_account("bench", mx_kernel::UserId(1), 1, Label::BOTTOM);
        let kpid = k.login_residue("bench", 1, Label::BOTTOM).expect("login");
        let root = k.root_token();
        let tok = k
            .create_entry(
                kpid,
                root,
                "data",
                mx_kernel::Acl::owner(mx_kernel::UserId(1)),
                Label::BOTTOM,
                false,
            )
            .expect("segment");
        let ksegno = k.initiate(kpid, tok).expect("initiate");
        let before = k.machine.clock.snapshot();
        let mut purifier_cycles = 0u64;
        for (i, (page, write)) in string.refs.iter().enumerate() {
            let wordno = page * mx_hw::PAGE_WORDS as u32 + (page % 100);
            if *write {
                k.write_word(kpid, ksegno, wordno, Word::new(u64::from(*page) + 1))
                    .expect("kernel write");
            } else {
                k.read_word(kpid, ksegno, wordno).expect("kernel read");
            }
            if i % 16 == 15 {
                // An idle gap: the purifier daemon gets the processor.
                let p0 = k.machine.clock.now();
                k.run_purifier(4).expect("purifier");
                purifier_cycles += k.machine.clock.now() - p0;
            }
        }
        let kdelta = before.delta(&k.machine.clock.snapshot());

        crate::trace::publish(
            &format!("p4.legacy.{pageable}"),
            &sup.machine.clock,
            sup.stats.counters(),
        );
        crate::trace::publish(
            &format!("p4.kernel.{pageable}"),
            &k.machine.clock,
            k.stats.counters(),
        );
        debug_assert_eq!(sup.frames.pageable() as usize, pageable);
        debug_assert_eq!(k.pfm.pageable() as usize, pageable);
        rows.push(MemoryRow {
            frames: pageable,
            legacy_cycles: ldelta.cycles,
            legacy_faults: ldelta.faults,
            kernel_total_cycles: kdelta.cycles,
            kernel_user_cycles: kdelta.cycles - purifier_cycles,
            kernel_faults: kdelta.faults,
        });
    }
    rows
}

// -------------------------------------------------------- P5: scheduler --

/// One row of the scheduler sweep.
#[derive(Debug, Clone)]
pub struct SchedulerRow {
    /// Processes in the mix.
    pub processes: u32,
    /// Old one-level scheduler: cycles per dispatch.
    pub legacy_cycles: u64,
    /// New two-level scheduler: cycles per dispatch.
    pub kernel_cycles: u64,
    /// Share of new-design dispatches that were cheap VP switches.
    pub cheap_switch_pct: f64,
}

/// P5 — one-level vs. two-level processor multiplexing.
pub fn p5_scheduler(process_counts: &[u32], passes: usize) -> Vec<SchedulerRow> {
    let mut rows = Vec::new();
    for &n in process_counts {
        let mut sup = Supervisor::boot(SupervisorConfig {
            max_processes: n + 2,
            ..SupervisorConfig::default()
        });
        for i in 0..n {
            sup.create_process(LUserId(i), Label::BOTTOM)
                .expect("legacy process");
        }
        let before = sup.machine.clock.now();
        for _ in 0..passes {
            sup.dispatch();
        }
        let legacy = (sup.machine.clock.now() - before) / passes as u64;

        let mut k = Kernel::boot(KernelConfig {
            max_processes: n + 2,
            ..KernelConfig::default()
        });
        for i in 0..n {
            let name = format!("u{i}");
            k.register_account(&name, mx_kernel::UserId(i), 1, Label::BOTTOM);
            k.login_residue(&name, 1, Label::BOTTOM)
                .expect("kernel process");
        }
        let loads_before = k.upm.loads;
        let before = k.machine.clock.now();
        for _ in 0..passes {
            k.schedule();
        }
        let kernel = (k.machine.clock.now() - before) / passes as u64;
        let loads = k.upm.loads - loads_before;
        crate::trace::publish(
            &format!("p5.legacy.{n}"),
            &sup.machine.clock,
            sup.stats.counters(),
        );
        crate::trace::publish(
            &format!("p5.kernel.{n}"),
            &k.machine.clock,
            k.stats.counters(),
        );
        rows.push(SchedulerRow {
            processes: n,
            legacy_cycles: legacy,
            kernel_cycles: kernel,
            cheap_switch_pct: 100.0 * (passes as f64 - loads as f64) / passes as f64,
        });
    }
    rows
}

// ------------------------------------------------------------ P7: quota --

/// One row of the quota sweep.
#[derive(Debug, Clone)]
pub struct QuotaRow {
    /// Directory depth of the growing segment.
    pub depth: u32,
    /// Old supervisor: cycles per page of growth (includes the walk).
    pub legacy_cycles: u64,
    /// Old supervisor: quota-walk levels per growth.
    pub legacy_walk_levels: f64,
    /// New design: cycles per page of growth (static cell, no walk).
    pub kernel_cycles: u64,
}

/// P7 — quota enforcement: dynamic hierarchy walk vs. static cell.
pub fn p7_quota(depths: &[u32], pages: u32) -> Vec<QuotaRow> {
    let mut rows = Vec::new();
    for &depth in depths {
        // Old supervisor: a chain of `depth` directories.
        let (mut sup, lpid) = boot_legacy();
        let mut parent = sup.root();
        let mut path = String::new();
        for lvl in 0..depth {
            parent = sup
                .create_directory_in(
                    parent,
                    &format!("c{lvl}"),
                    LAcl::owner(LUserId(1)),
                    Label::BOTTOM,
                )
                .expect("chain dir");
            path.push_str(&format!(">c{lvl}"));
        }
        sup.create_segment_in(parent, "grow", LAcl::owner(LUserId(1)), Label::BOTTOM)
            .expect("segment");
        path.push_str(">grow");
        let segno = sup.initiate(lpid, &path).expect("initiate");
        let walks_before = (sup.stats.quota_walks, sup.stats.quota_walk_levels);
        let before = sup.machine.clock.now();
        for p in 0..pages {
            sup.user_write(lpid, segno, p * mx_hw::PAGE_WORDS as u32, Word::new(1))
                .expect("grow");
        }
        let legacy = (sup.machine.clock.now() - before) / u64::from(pages);
        let walks = sup.stats.quota_walks - walks_before.0;
        let levels = sup.stats.quota_walk_levels - walks_before.1;

        // New design: same chain through the gates.
        let (mut k, kpid) = boot_kernel();
        let mut parent = k.root_token();
        for lvl in 0..depth {
            parent = k
                .create_entry(
                    kpid,
                    parent,
                    &format!("c{lvl}"),
                    mx_kernel::Acl::owner(mx_kernel::UserId(1)),
                    Label::BOTTOM,
                    true,
                )
                .expect("chain dir");
        }
        let tok = k
            .create_entry(
                kpid,
                parent,
                "grow",
                mx_kernel::Acl::owner(mx_kernel::UserId(1)),
                Label::BOTTOM,
                false,
            )
            .expect("segment");
        let ksegno = k.initiate(kpid, tok).expect("initiate");
        let before = k.machine.clock.now();
        for p in 0..pages {
            k.write_word(kpid, ksegno, p * mx_hw::PAGE_WORDS as u32, Word::new(1))
                .expect("grow");
        }
        let kernel = (k.machine.clock.now() - before) / u64::from(pages);

        crate::trace::publish(
            &format!("p7.legacy.{depth}"),
            &sup.machine.clock,
            sup.stats.counters(),
        );
        crate::trace::publish(
            &format!("p7.kernel.{depth}"),
            &k.machine.clock,
            k.stats.counters(),
        );
        rows.push(QuotaRow {
            depth,
            legacy_cycles: legacy,
            legacy_walk_levels: if walks == 0 {
                0.0
            } else {
                levels as f64 / walks as f64
            },
            kernel_cycles: kernel,
        });
    }
    rows
}

// ------------------------------------------------------- P8: fault path --

/// P8 — missing-page service: interpretive retranslation vs. the
/// hardware lock bit, plus the two-processor race behaviour.
pub fn p8_fault_path(pages: u32, rounds: usize) -> Comparison {
    // Old supervisor: write pages, then repeatedly flush + fault back.
    let (mut sup, lpid) = boot_legacy();
    sup.create_segment_in(sup.root(), "hot", LAcl::owner(LUserId(1)), Label::BOTTOM)
        .expect("segment");
    let segno = sup.initiate(lpid, "hot").expect("initiate");
    for p in 0..pages {
        sup.user_write(
            lpid,
            segno,
            p * mx_hw::PAGE_WORDS as u32,
            Word::new(u64::from(p) + 1),
        )
        .expect("seed");
    }
    let hot_uid = sup
        .resolve(lpid, "hot", mx_legacy::AccessRight::Read)
        .expect("resolve")
        .0;
    let astx = sup.ast.find(hot_uid).expect("active");
    let mut legacy_faults = 0u64;
    let before = sup.machine.clock.now();
    for _ in 0..rounds {
        sup.flush_segment(astx).expect("flush");
        for p in 0..pages {
            sup.user_read(lpid, segno, p * mx_hw::PAGE_WORDS as u32)
                .expect("fault back");
            legacy_faults += 1;
        }
    }
    let legacy = (sup.machine.clock.now() - before) / legacy_faults;
    let retranslations = sup.stats.retranslations;

    // New design.
    let (mut k, kpid) = boot_kernel();
    let root = k.root_token();
    let tok = k
        .create_entry(
            kpid,
            root,
            "hot",
            mx_kernel::Acl::owner(mx_kernel::UserId(1)),
            Label::BOTTOM,
            false,
        )
        .expect("segment");
    let ksegno = k.initiate(kpid, tok).expect("initiate");
    for p in 0..pages {
        k.write_word(
            kpid,
            ksegno,
            p * mx_hw::PAGE_WORDS as u32,
            Word::new(u64::from(p) + 1),
        )
        .expect("seed");
    }
    let uid = k.uid_of_token(tok).expect("uid");
    let mut kernel_faults = 0u64;
    let before = k.machine.clock.now();
    for _ in 0..rounds {
        let handle = k.segm.get(uid).expect("active").handle;
        k.pfm
            .flush(&mut k.machine, &mut k.drm, &mut k.qcm, handle)
            .expect("flush");
        for p in 0..pages {
            k.read_word(kpid, ksegno, p * mx_hw::PAGE_WORDS as u32)
                .expect("fault back");
            kernel_faults += 1;
        }
    }
    let kernel = (k.machine.clock.now() - before) / kernel_faults;

    crate::trace::publish("p8.legacy", &sup.machine.clock, sup.stats.counters());
    crate::trace::publish("p8.kernel", &k.machine.clock, k.stats.counters());
    Comparison {
        name: "P8  missing-page service (flush + refault)",
        unit: "cycles/fault",
        legacy,
        kernel,
        notes: vec![
            format!(
                "old design performed {retranslations} interpretive retranslations; \
                 the lock bit makes them unnecessary ({} lock-waits observed)",
                k.stats.locked_waits
            ),
            "write-backs moved off the fault path into the purifier daemon".to_string(),
        ],
    }
}

// --------------------------------------------------------- S1/S2/S3 demos --

/// S1 — the mythical-identifier interface: no information leaks through
/// inaccessible directories. Returns a human-readable transcript.
pub fn s1_mythical_identifiers() -> String {
    let mut k = Kernel::boot_default();
    k.register_account("alice", mx_kernel::UserId(1), 1, Label::BOTTOM);
    k.register_account("bob", mx_kernel::UserId(2), 2, Label::BOTTOM);
    let alice = k.login_residue("alice", 1, Label::BOTTOM).unwrap();
    let bob = k.login_residue("bob", 2, Label::BOTTOM).unwrap();
    let root = k.root_token();
    let private = k
        .create_entry(
            alice,
            root,
            "private",
            mx_kernel::Acl::owner(mx_kernel::UserId(1)),
            Label::BOTTOM,
            true,
        )
        .unwrap();
    k.create_entry(
        alice,
        private,
        "exists",
        mx_kernel::Acl::owner(mx_kernel::UserId(1)),
        Label::BOTTOM,
        false,
    )
    .unwrap();

    let mut out = String::from("S1  Bratt's mythical identifiers\n");
    let t_real = k.dir_search(bob, private, "exists").unwrap();
    let t_ghost = k.dir_search(bob, private, "ghost").unwrap();
    let t_ghost2 = k.dir_search(bob, private, "ghost").unwrap();
    out.push_str(&format!(
        "  search(inaccessible dir, existing name)  -> token {:#018x}\n",
        t_real.0
    ));
    out.push_str(&format!(
        "  search(inaccessible dir, missing name)   -> token {:#018x}\n",
        t_ghost.0
    ));
    out.push_str(&format!(
        "  repeated probe is stable                  -> {}\n",
        t_ghost == t_ghost2
    ));
    let e_real = k.initiate(bob, t_real).unwrap_err();
    let e_ghost = k.initiate(bob, t_ghost).unwrap_err();
    out.push_str(&format!(
        "  initiate(real-but-forbidden) = {e_real:?}; initiate(mythical) = {e_ghost:?}\n"
    ));
    out.push_str(&format!(
        "  indistinguishable                        -> {}\n",
        e_real == e_ghost
    ));
    out.push_str(&format!(
        "  mythical identifiers issued so far        : {}\n",
        k.dirm.stats.mythical_issued
    ));
    out
}

/// S2 — the zero-page accounting confinement violation: a read by a
/// high-labelled process writes a low-labelled quota cell.
pub fn s2_confinement() -> String {
    let mut k = Kernel::boot_default();
    let secret = Label::new(Level(2), CompartmentSet::empty());
    k.register_account("owner", mx_kernel::UserId(1), 1, Label::BOTTOM);
    k.register_account("spy-high", mx_kernel::UserId(2), 2, secret);
    let owner = k.login_residue("owner", 1, Label::BOTTOM).unwrap();
    let high = k.login_residue("spy-high", 2, secret).unwrap();
    let root = k.root_token();
    let mut acl = mx_kernel::Acl::owner(mx_kernel::UserId(1));
    acl.grant(mx_kernel::UserId(2), &[mx_kernel::AccessRight::Read]);
    let tok = k
        .create_entry(owner, root, "sparse", acl, Label::BOTTOM, false)
        .unwrap();
    // The owner writes page 0 and page 9: pages 1..9 stay zero flags.
    let oseg = k.initiate(owner, tok).unwrap();
    k.write_word(owner, oseg, 0, Word::new(1)).unwrap();
    k.write_word(owner, oseg, 9 * mx_hw::PAGE_WORDS as u32, Word::new(2))
        .unwrap();

    let violations_before = k.flows.violation_count();
    let (_, records_before) = k.segment_meta(owner, oseg).unwrap();

    // The high process merely READS a hole.
    let hseg = k.initiate(high, tok).unwrap();
    let value = k
        .read_word(high, hseg, 4 * mx_hw::PAGE_WORDS as u32)
        .unwrap();

    let (_, records_after) = k.segment_meta(owner, oseg).unwrap();
    let violations_after = k.flows.violation_count();

    let mut out = String::from("S2  zero-page accounting: a read that writes\n");
    out.push_str(&format!(
        "  high-labelled read of a hole returned   : {value}\n"
    ));
    out.push_str(&format!(
        "  records charged before/after the read   : {records_before} -> {records_after}\n"
    ));
    out.push_str(&format!(
        "  unlawful information flows recorded      : {} -> {}\n",
        violations_before, violations_after
    ));
    out.push_str(
        "  \"a read implicitly causes information to be written, perhaps on\n   \
         the other side of a protection boundary\" (Lampson's confinement)\n",
    );
    // The charge reverts when the page is reclaimed still-zero.
    let uid = k.uid_of_token(tok).unwrap();
    let handle = k.segm.get(uid).unwrap().handle;
    k.pfm
        .flush(&mut k.machine, &mut k.drm, &mut k.qcm, handle)
        .unwrap();
    let (_, records_final) = k.segment_meta(owner, oseg).unwrap();
    out.push_str(&format!(
        "  after page removal's zero scan           : {records_final} records charged\n"
    ));
    out
}

/// S3 — full-pack relocation driven by the quota-trap exception and the
/// upward signal.
pub fn s3_relocation() -> String {
    let mut k = Kernel::boot(KernelConfig {
        packs: 2,
        records_per_pack: 8,
        toc_slots_per_pack: 16,
        root_quota: 64,
        ..KernelConfig::default()
    });
    // A roomy third pack for the move.
    let big = k.machine.disks.attach(128, 32);
    k.register_account("grower", mx_kernel::UserId(1), 1, Label::BOTTOM);
    let pid = k.login_residue("grower", 1, Label::BOTTOM).unwrap();
    let root = k.root_token();
    let tok = k
        .create_entry(
            pid,
            root,
            "bulky",
            mx_kernel::Acl::owner(mx_kernel::UserId(1)),
            Label::BOTTOM,
            false,
        )
        .unwrap();
    let segno = k.initiate(pid, tok).unwrap();
    let mut out = String::from("S3  full pack -> relocation -> upward signal\n");
    for p in 0..12u32 {
        k.write_word(
            pid,
            segno,
            p * mx_hw::PAGE_WORDS as u32,
            Word::new(u64::from(p) + 1),
        )
        .expect("growth never fails visibly: the signal is consumed inside");
    }
    let uid = k.uid_of_token(tok).unwrap();
    let home = k.dirm.home_of(uid).unwrap();
    out.push_str(&format!(
        "  relocations performed        : {}\n",
        k.segm.stats.relocations
    ));
    out.push_str(&format!(
        "  upward signals raised        : {}\n",
        k.segm.stats.upward_signals
    ));
    out.push_str(&format!(
        "  signals consumed (trampoline): {}\n",
        k.stats.trampolines
    ));
    out.push_str(&format!(
        "  directory-entry moves written: {}\n",
        k.dirm.stats.moves_recorded
    ));
    out.push_str(&format!(
        "  segment now lives on pack {} (big pack = {})\n",
        home.pack.0, big.0
    ));
    // Every page survived the move.
    let ok = (0..12u32).all(|p| {
        k.read_word(pid, segno, p * mx_hw::PAGE_WORDS as u32)
            .map(|w| w == Word::new(u64::from(p) + 1))
            .unwrap_or(false)
    });
    out.push_str(&format!("  all data intact after move   : {ok}\n"));
    out
}

// ------------------------------------------------------------ ablations --

/// A1 — ablate the name-space prefix cache: DESIGN.md calls the cache
/// out as the source of the extracted manager's speedup; without it the
/// user-domain resolver should fall back to roughly gate-per-component
/// cost.
pub fn a1_namespace_cache(spec: TreeSpec, rounds: usize) -> Comparison {
    let paths = spec.file_paths();
    let n = (rounds * paths.len()) as u64;

    let (mut k, kpid) = boot_kernel();
    build_kernel_tree(&mut k, kpid, &spec);
    let mut ns = NameSpace::new(&mut k, kpid);
    let before = k.machine.clock.now();
    for _ in 0..rounds {
        for p in &paths {
            ns.resolve(&mut k, p).expect("cached resolve");
        }
    }
    let with_cache = (k.machine.clock.now() - before) / n;

    let (mut k, kpid) = boot_kernel();
    build_kernel_tree(&mut k, kpid, &spec);
    let mut ns = NameSpace::new(&mut k, kpid);
    let before = k.machine.clock.now();
    for _ in 0..rounds {
        for p in &paths {
            ns.flush_cache();
            ns.resolve(&mut k, p).expect("uncached resolve");
        }
    }
    let without_cache = (k.machine.clock.now() - before) / n;

    Comparison {
        name: "A1  name-space prefix cache ablation",
        unit: "cycles/resolution",
        legacy: without_cache,
        kernel: with_cache,
        notes: vec!["'legacy' row = cache disabled; 'kernel' row = cache enabled".into()],
    }
}

/// A2 — ablate the purifier's idle-time execution: with no idle gaps
/// the write-behind work lands on the user path (synchronous purifies
/// inside frame claims), which is the cost the paper says the dedicated
/// low-priority process wins back.
///
/// The reference string uses P4's seed so that, called at P4's cramped
/// configuration (`pageable = 36, pages = 40, refs = 1500, ws = 10`),
/// the idle-gaps arm reruns exactly P4's kernel measurement and the
/// user-visible figures of the two experiments coincide.
pub fn a2_purifier_idle(pageable: usize, pages: u32, refs: usize, ws: u32) -> Comparison {
    let string = RefString::generate(41, pages, refs, ws);
    let run = |idle_purify: bool| -> u64 {
        let mut k = Kernel::boot(KernelConfig {
            frames: pageable + 13,
            pt_slots: 16,
            max_processes: 4,
            records_per_pack: 2048,
            toc_slots_per_pack: 64,
            root_quota: 1200,
            ..KernelConfig::default()
        });
        k.register_account("bench", mx_kernel::UserId(1), 1, Label::BOTTOM);
        let pid = k.login_residue("bench", 1, Label::BOTTOM).expect("login");
        let root = k.root_token();
        let tok = k
            .create_entry(
                pid,
                root,
                "data",
                mx_kernel::Acl::owner(mx_kernel::UserId(1)),
                Label::BOTTOM,
                false,
            )
            .expect("segment");
        let segno = k.initiate(pid, tok).expect("initiate");
        let before = k.machine.clock.now();
        let mut daemon_cycles = 0;
        for (i, (page, write)) in string.refs.iter().enumerate() {
            let wordno = page * mx_hw::PAGE_WORDS as u32;
            if *write {
                k.write_word(pid, segno, wordno, Word::new(u64::from(*page) + 1))
                    .expect("w");
            } else {
                k.read_word(pid, segno, wordno).expect("r");
            }
            if idle_purify && i % 16 == 15 {
                let p0 = k.machine.clock.now();
                k.run_purifier(4).expect("purifier");
                daemon_cycles += k.machine.clock.now() - p0;
            }
        }
        (k.machine.clock.now() - before) - daemon_cycles
    };
    Comparison {
        name: "A2  purifier idle-time ablation (user-visible cycles)",
        unit: "cycles total",
        legacy: run(false),
        kernel: run(true),
        notes: vec![
            "'legacy' row = no idle gaps (write-behind lands on the user path);              'kernel' row = daemon runs at idle"
                .into(),
        ],
    }
}

/// Switches the descriptor-walk associative memory on or off on every
/// processor, starting from a cold cache either way.
fn set_associative_memory(machine: &mut mx_hw::Machine, on: bool) {
    for cpu in &mut machine.cpus {
        cpu.features.associative_memory = on;
    }
    machine.tlb_clear();
}

/// Component-wise difference of two TLB tallies (later minus earlier).
fn tlb_delta(before: &mx_hw::TlbStats, after: &mx_hw::TlbStats) -> mx_hw::TlbStats {
    mx_hw::TlbStats {
        lookups: after.lookups - before.lookups,
        hits: after.hits - before.hits,
        misses: after.misses - before.misses,
        fills: after.fills - before.fills,
        invalidations: after.invalidations - before.invalidations,
    }
}

/// The A3 driver's own conservation checks: the TLB tallies must be
/// internally consistent and every charged cycle must be attributed to
/// a subsystem. `repro --only a3` relies on these panicking loudly.
fn a3_check(label: &str, clock: &mx_hw::Clock, tlb: &mx_hw::TlbStats) {
    assert_eq!(
        tlb.hits + tlb.misses,
        tlb.lookups,
        "{label}: TLB counter conservation (hits + misses == lookups)"
    );
    assert_eq!(
        clock.meter().attributed_total(),
        clock.now(),
        "{label}: meter conservation (sum(per-subsystem) == Clock::now())"
    );
}

/// A3 — ablate the hardware associative memory (the descriptor-walk
/// translation cache of [`mx_hw::Tlb`]). With it off, every data
/// reference pays the walk's two descriptor fetches; with it on, a
/// repeated reference hits the cache and pays none — the 6180 behaviour
/// both feature levels model. Two workloads: a P2-style hot set
/// repeatedly referenced through the old supervisor's user access path
/// (pathname resolution itself runs on supervisor absolute addressing
/// and never consults the associative memory), and a P4-style
/// ample-core reference string through the kernel gates.
pub fn a3_associative_memory(pageable: usize, pages: u32, refs: usize, ws: u32) -> Vec<Comparison> {
    // -- P2-style: repeated references to a small hot set, old
    // supervisor. Eight pages with a tight working set: after the first
    // touch every reference repeats, which is where the cache pays.
    let hot = RefString::generate(43, 8, refs, 4);
    let run_p2 = |tlb_on: bool| -> (u64, mx_hw::TlbStats) {
        let (mut sup, lpid) = boot_legacy();
        sup.create_segment_in(sup.root(), "data", LAcl::owner(LUserId(1)), Label::BOTTOM)
            .expect("segment");
        let segno = sup.initiate(lpid, "data").expect("initiate");
        set_associative_memory(&mut sup.machine, tlb_on);
        let t0 = sup.machine.tlb_stats();
        let before = sup.machine.clock.now();
        for (page, write) in &hot.refs {
            let wordno = page * mx_hw::PAGE_WORDS as u32 + (page % 100);
            if *write {
                sup.user_write(lpid, segno, wordno, Word::new(u64::from(*page) + 1))
                    .expect("a3 write");
            } else {
                sup.user_read(lpid, segno, wordno).expect("a3 read");
            }
        }
        let per = (sup.machine.clock.now() - before) / hot.refs.len() as u64;
        let tlb = tlb_delta(&t0, &sup.machine.tlb_stats());
        let label = if tlb_on { "a3.p2.on" } else { "a3.p2.off" };
        a3_check(label, &sup.machine.clock, &tlb);
        let mut counters = sup.stats.counters();
        for (name, v) in tlb.counters().iter() {
            counters.set(name, v);
        }
        crate::trace::publish(label, &sup.machine.clock, counters);
        (per, tlb)
    };
    let (p2_off, p2_off_tlb) = run_p2(false);
    let (p2_on, p2_on_tlb) = run_p2(true);
    assert_eq!(
        p2_off_tlb.lookups, 0,
        "a3.p2.off: a disabled associative memory must never be consulted"
    );

    // -- P4-style: ample-core reference string, kernel gates ------------
    let string = RefString::generate(47, pages, refs, ws);
    let run_p4 = |tlb_on: bool| -> (u64, mx_hw::TlbStats) {
        let mut k = Kernel::boot(KernelConfig {
            frames: pageable + 13,
            pt_slots: 16,
            max_processes: 4,
            records_per_pack: 2048,
            toc_slots_per_pack: 64,
            root_quota: 1200,
            ..KernelConfig::default()
        });
        k.register_account("bench", mx_kernel::UserId(1), 1, Label::BOTTOM);
        let pid = k.login_residue("bench", 1, Label::BOTTOM).expect("login");
        let root = k.root_token();
        let tok = k
            .create_entry(
                pid,
                root,
                "data",
                mx_kernel::Acl::owner(mx_kernel::UserId(1)),
                Label::BOTTOM,
                false,
            )
            .expect("segment");
        let segno = k.initiate(pid, tok).expect("initiate");
        set_associative_memory(&mut k.machine, tlb_on);
        let t0 = k.machine.tlb_stats();
        let before = k.machine.clock.now();
        for (page, write) in &string.refs {
            let wordno = page * mx_hw::PAGE_WORDS as u32;
            if *write {
                k.write_word(pid, segno, wordno, Word::new(u64::from(*page) + 1))
                    .expect("a3 write");
            } else {
                k.read_word(pid, segno, wordno).expect("a3 read");
            }
        }
        let per = (k.machine.clock.now() - before) / string.refs.len() as u64;
        let tlb = tlb_delta(&t0, &k.machine.tlb_stats());
        let label = if tlb_on { "a3.p4.on" } else { "a3.p4.off" };
        a3_check(label, &k.machine.clock, &tlb);
        let mut counters = k.stats.counters();
        for (name, v) in tlb.counters().iter() {
            counters.set(name, v);
        }
        crate::trace::publish(label, &k.machine.clock, counters);
        (per, tlb)
    };
    let (p4_off, p4_off_tlb) = run_p4(false);
    let (p4_on, p4_on_tlb) = run_p4(true);
    assert_eq!(
        p4_off_tlb.lookups, 0,
        "a3.p4.off: a disabled associative memory must never be consulted"
    );

    let hit_pct = |t: &mx_hw::TlbStats| {
        if t.lookups == 0 {
            0.0
        } else {
            t.hits as f64 / t.lookups as f64 * 100.0
        }
    };
    vec![
        Comparison {
            name: "A3a associative-memory ablation — P2-style hot set (old supervisor)",
            unit: "cycles/reference",
            legacy: p2_off,
            kernel: p2_on,
            notes: vec![format!(
                "'legacy' row = TLB off; 'kernel' row = TLB on ({} lookups, {:.1}% hits, \
                 {} invalidations)",
                p2_on_tlb.lookups,
                hit_pct(&p2_on_tlb),
                p2_on_tlb.invalidations
            )],
        },
        Comparison {
            name: "A3b associative-memory ablation — P4 ample-core references (kernel)",
            unit: "cycles/reference",
            legacy: p4_off,
            kernel: p4_on,
            notes: vec![format!(
                "'legacy' row = TLB off; 'kernel' row = TLB on ({} lookups, {:.1}% hits, \
                 {} invalidations)",
                p4_on_tlb.lookups,
                hit_pct(&p4_on_tlb),
                p4_on_tlb.invalidations
            )],
        },
    ]
}

/// Convenience: run a kernel growth to quota exhaustion (used by tests).
pub fn grow_to_quota_error(k: &mut Kernel, pid: mx_kernel::ProcessId, segno: u32) -> KernelError {
    for p in 0..mx_kernel::page_frame::PT_WORDS {
        if let Err(e) = k.write_word(pid, segno, p * mx_hw::PAGE_WORDS as u32, Word::new(1)) {
            return e;
        }
    }
    KernelError::SegmentTooBig
}

/// Convenience: the legacy counterpart.
pub fn legacy_grow_to_quota_error(
    sup: &mut Supervisor,
    pid: mx_legacy::ProcessId,
    segno: u32,
) -> LegacyError {
    for p in 0..256 {
        if let Err(e) = sup.user_write(pid, segno, p * mx_hw::PAGE_WORDS as u32, Word::new(1)) {
            return e;
        }
    }
    LegacyError::SegmentTooBig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p1_the_extracted_linker_is_slower() {
        let c = p1_linker(12);
        assert!(
            c.kernel > c.legacy,
            "paper: 'the dynamic linker ran somewhat slower when removed from the kernel' \
             (old {}, new {})",
            c.legacy,
            c.kernel
        );
        assert!(
            c.kernel_vs_legacy_pct() < 1000.0,
            "slower, but not absurdly so: {:.0}%",
            c.kernel_vs_legacy_pct()
        );
    }

    #[test]
    fn p2_the_extracted_name_space_is_faster() {
        let c = p2_namespace(TreeSpec::small(), 4);
        assert!(
            c.kernel < c.legacy,
            "paper: 'the name space manager ran somewhat faster' (old {}, new {})",
            c.legacy,
            c.kernel
        );
    }

    #[test]
    fn p3_the_restructured_answering_service_is_slightly_slower() {
        let c = p3_answering(12);
        let pct = c.kernel_vs_legacy_pct();
        assert!(
            pct > 100.0,
            "paper: 'about 3% slower' — must be slower at all (old {}, new {})",
            c.legacy,
            c.kernel
        );
        assert!(pct < 125.0, "but only slightly: {pct:.1}%");
    }

    #[test]
    fn p5_two_level_scheduling_is_about_the_same_for_small_mixes() {
        let rows = p5_scheduler(&[2], 40);
        let r = &rows[0];
        let ratio = r.kernel_cycles as f64 / r.legacy_cycles as f64;
        assert!(
            (0.2..=1.5).contains(&ratio),
            "paper: 'about the same as the current system' (old {}, new {})",
            r.legacy_cycles,
            r.kernel_cycles
        );
        assert!(
            r.cheap_switch_pct > 50.0,
            "most switches stay at the VP level"
        );
    }

    #[test]
    fn p7_the_static_cell_beats_the_walk_and_depth_insensitivity() {
        let rows = p7_quota(&[1, 6], 6);
        assert!(
            rows[1].legacy_walk_levels > rows[0].legacy_walk_levels,
            "the old walk lengthens with depth"
        );
        // The new design's growth cost must not grow with depth the way
        // the old walk does.
        let old_growth = rows[1].legacy_cycles as i64 - rows[0].legacy_cycles as i64;
        let new_growth = rows[1].kernel_cycles as i64 - rows[0].kernel_cycles as i64;
        assert!(
            new_growth < old_growth,
            "depth sensitivity: old +{old_growth}, new +{new_growth}"
        );
    }

    #[test]
    fn p8_fault_service_counters_tell_the_story() {
        let c = p8_fault_path(6, 3);
        assert!(c.legacy > 0 && c.kernel > 0);
        assert!(c.notes[0].contains("retranslations"));
    }

    #[test]
    fn a3_the_associative_memory_wins_on_both_workloads() {
        let cs = a3_associative_memory(80, 24, 400, 8);
        assert_eq!(cs.len(), 2);
        for c in &cs {
            assert!(
                c.kernel < c.legacy,
                "TLB on must measurably cut {}: off {} vs on {}",
                c.unit,
                c.legacy,
                c.kernel
            );
            assert!(c.notes[0].contains("hits"), "hit rate reported");
        }
    }

    #[test]
    fn s_demos_produce_their_claims() {
        let s1 = s1_mythical_identifiers();
        assert!(s1.contains("indistinguishable                        -> true"));
        let s2 = s2_confinement();
        assert!(s2.contains("-> 1\n") || s2.contains("unlawful"));
        let s3 = s3_relocation();
        assert!(s3.contains("all data intact after move   : true"));
    }
}
