//! Synthetic workload generators.
//!
//! The paper's installation workloads (AFDSC time-sharing users) are
//! gone; these generators produce the same *kinds* of load — directory
//! trees, page reference strings with locality, login sessions, link
//! traces — deterministically from a seed, so both systems see byte-
//! identical work.

use mx_hw::rng::SplitMix64;

/// Shape of a generated directory tree.
#[derive(Debug, Clone, Copy)]
pub struct TreeSpec {
    /// Directory depth below the root.
    pub depth: u32,
    /// Subdirectories per directory on the spine.
    pub fanout: u32,
    /// Data segments in each leaf directory.
    pub files_per_dir: u32,
}

impl TreeSpec {
    /// A small default: depth 3, fanout 2, 3 files per directory.
    pub fn small() -> Self {
        Self {
            depth: 3,
            fanout: 2,
            files_per_dir: 3,
        }
    }

    /// Enumerates the full `>`-separated paths of every data segment
    /// the spec implies (directories are `d<i>`, files `f<j>`).
    pub fn file_paths(&self) -> Vec<String> {
        let mut paths = Vec::new();
        fn walk(prefix: &str, level: u32, spec: &TreeSpec, out: &mut Vec<String>) {
            if level == spec.depth {
                for f in 0..spec.files_per_dir {
                    out.push(format!("{prefix}>f{f}"));
                }
                return;
            }
            for d in 0..spec.fanout {
                walk(&format!("{prefix}>d{d}"), level + 1, spec, out);
            }
        }
        walk("", 0, self, &mut paths);
        paths
    }

    /// Enumerates every directory path, shallowest first.
    pub fn dir_paths(&self) -> Vec<String> {
        let mut paths = Vec::new();
        fn walk(prefix: &str, level: u32, spec: &TreeSpec, out: &mut Vec<String>) {
            if level == spec.depth {
                return;
            }
            for d in 0..spec.fanout {
                let p = format!("{prefix}>d{d}");
                out.push(p.clone());
                walk(&p, level + 1, spec, out);
            }
        }
        walk("", 0, self, &mut paths);
        paths
    }
}

/// A page reference string with temporal locality.
#[derive(Debug, Clone)]
pub struct RefString {
    /// `(page, is_write)` references.
    pub refs: Vec<(u32, bool)>,
}

impl RefString {
    /// Generates `len` references over `pages` pages: a moving working
    /// set of `working_set` pages captures 90% of references, the rest
    /// are uniform; one third of references are writes.
    pub fn generate(seed: u64, pages: u32, len: usize, working_set: u32) -> Self {
        let mut rng = SplitMix64::new(seed);
        let ws = working_set.clamp(1, pages);
        let mut base = 0u32;
        let mut refs = Vec::with_capacity(len);
        for i in 0..len {
            // Drift the working set every 64 references.
            if i % 64 == 63 {
                base = (base + rng.range_u32(0, ws)) % pages;
            }
            let page = if rng.below(10) < 9 {
                (base + rng.range_u32(0, ws)) % pages
            } else {
                rng.range_u32(0, pages)
            };
            let write = rng.below(3) == 0;
            refs.push((page, write));
        }
        Self { refs }
    }

    /// Number of distinct pages touched.
    pub fn distinct_pages(&self) -> usize {
        let mut seen: Vec<u32> = self.refs.iter().map(|(p, _)| *p).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }
}

/// Deterministic pseudo-user names for session workloads.
pub fn user_names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("user{i:03}")).collect()
}

/// A deterministic library symbol list.
pub fn symbol_table(n: usize) -> Vec<(String, u32)> {
    (0..n)
        .map(|i| (format!("entry_{i:04}"), 100 + i as u32 * 8))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_paths_match_spec_arithmetic() {
        let spec = TreeSpec {
            depth: 2,
            fanout: 3,
            files_per_dir: 2,
        };
        let files = spec.file_paths();
        assert_eq!(files.len(), 9 * 2, "fanout^depth leaves × files");
        assert!(files[0].starts_with(">d0>d0>f0"));
        let dirs = spec.dir_paths();
        assert_eq!(dirs.len(), 3 + 9, "3 at level 1, 9 at level 2");
    }

    #[test]
    fn ref_string_is_deterministic_and_local() {
        let a = RefString::generate(7, 64, 1000, 8);
        let b = RefString::generate(7, 64, 1000, 8);
        assert_eq!(a.refs, b.refs);
        assert!(a.distinct_pages() <= 64);
        // Locality: far fewer distinct pages than references.
        assert!(a.distinct_pages() < 400);
        let c = RefString::generate(8, 64, 1000, 8);
        assert_ne!(a.refs, c.refs, "seeds differ");
    }

    #[test]
    fn helpers_are_deterministic() {
        assert_eq!(user_names(2), vec!["user000", "user001"]);
        assert_eq!(symbol_table(1), vec![("entry_0000".to_string(), 100)]);
    }
}
