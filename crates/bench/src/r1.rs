//! R1 — deterministic crash matrix with salvager-driven recovery.
//!
//! The robustness claim under test: the salvager recovers the storage
//! hierarchy from *operational* failures — power gone mid-write, a torn
//! or dropped sector, a pack briefly offline — without fsck-style human
//! help. The harness makes that claim mechanical:
//!
//! 1. run a fixed workload (directory + quota-cell building, file
//!    writes, segment growth that forces a whole-segment relocation)
//!    once with an empty [`FaultPlan`] to learn the write ordinals;
//! 2. for every write ordinal `n` (optionally strided), rerun the
//!    workload on a fresh system with power failing on write `n` — the
//!    payload torn at a deterministic word boundary or dropped outright;
//! 3. boot a *fresh* system from the surviving disk image, run the
//!    salvager with repair on, and assert: a second pass is clean
//!    (salvage converges and is idempotent), every record on every pack
//!    is referenced by exactly one file map (no storage leaked, no
//!    double claims), and every object that reached the disk before the
//!    crash survives with intact contents.
//!
//! "Reached the disk" is the durability bar: an operation counts as
//! complete once `sync_to_disk` has flushed it. Changes still in core
//! when power fails are legitimately lost — the salvager's job is a
//! consistent hierarchy, not a redo log.
//!
//! The same matrix runs against the 1974 supervisor and the new kernel,
//! so the experiment reports recovery outcome and recovery cost in
//! cycles for both designs. Everything is keyed off the machine's own
//! transfer ordinals and a [`SplitMix64`] stream seeded per crash
//! point, so a given stride replays exactly.

use mx_aim::Label;
use mx_hw::{CrashWrite, DiskError, FaultPlan, SplitMix64, Word, PAGE_WORDS};
use mx_kernel::{Kernel, KernelConfig, KernelError};
use mx_legacy::{
    AccessRight, Acl as LAcl, LegacyError, Supervisor, SupervisorConfig, UserId as LUserId,
};

use crate::experiments::Comparison;

/// Seed for the per-crash-point mode draws.
const SEED: u64 = 0x5231_C4A5_11E7_0001;
/// Phase-1 files created under the quota directory.
const FILES: u32 = 2;
/// Pages written per phase-1 file.
const PAGES: u32 = 2;
/// Pages written to the growing segment (enough to overflow its home
/// pack and force a relocation).
const GROW_PAGES: u32 = 12;
/// Quota placed on the phase-1 directory.
const QUOTA_LIMIT: u32 = 16;
/// Geometry of the roomy pack attached for the relocation to land on.
const BIG_PACK: (u32, u32) = (64, 32);

const PW: u32 = PAGE_WORDS as u32;

/// The value written at word `slot` of page `p` of phase-1 file `i`.
fn val(i: u32, p: u32, slot: u32) -> Word {
    Word::new(u64::from(0o4000 + i * 256 + p * 16 + slot))
}

/// The deterministic crash mode for write ordinal `n`: dropped, or torn
/// at a word boundary strictly inside the record.
fn crash_mode(n: u64) -> CrashWrite {
    let mut rng = SplitMix64::new(SEED ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    if rng.chance(1, 2) {
        CrashWrite::Dropped
    } else {
        CrashWrite::Torn {
            words: rng.range_usize(1, PAGE_WORDS),
        }
    }
}

/// Per-design crash-matrix tallies.
#[derive(Debug, Clone, Copy)]
pub struct MatrixSummary {
    /// Disk writes in the fault-free run (the crash-point universe).
    pub total_writes: u64,
    /// Crash points actually run (every `stride`-th ordinal).
    pub tested: u32,
    /// Crash points where the first salvage pass found damage.
    pub damage_found: u32,
    /// Repairs performed across the matrix.
    pub repairs: u64,
    /// Crash points late enough that phase-1 durability was verified.
    pub durable_verified: u32,
    /// Mean cycles from recovery bootload through the clean check.
    pub avg_recovery_cycles: u64,
    /// Worst-case recovery cycles over the matrix.
    pub max_recovery_cycles: u64,
}

// ------------------------------------------------------------- kernel --

fn kernel_config() -> KernelConfig {
    KernelConfig {
        packs: 2,
        records_per_pack: 8,
        toc_slots_per_pack: 16,
        root_quota: 64,
        ..KernelConfig::default()
    }
}

struct KRig {
    k: Kernel,
    pid: mx_kernel::ProcessId,
}

/// Boots the kernel rig and installs `plan` so that write ordinals
/// count workload transfers only (bootload writes are excluded).
fn kernel_rig(plan: FaultPlan) -> KRig {
    let mut k = Kernel::boot(kernel_config());
    k.machine.disks.attach(BIG_PACK.0, BIG_PACK.1);
    k.register_account("r1", mx_kernel::UserId(1), 1, Label::BOTTOM);
    let pid = k.login_residue("r1", 1, Label::BOTTOM).expect("login");
    k.machine.faults.install(plan);
    KRig { k, pid }
}

/// The shared workload, kernel side. Records the write ordinal at which
/// the phase-1 sync completed into `sync1_at`.
fn kernel_workload(r: &mut KRig, sync1_at: &mut Option<u64>) -> Result<(), KernelError> {
    let acl = mx_kernel::Acl::owner(mx_kernel::UserId(1));
    let root = r.k.root_token();
    let d =
        r.k.create_entry(r.pid, root, "d", acl.clone(), Label::BOTTOM, true)?;
    r.k.set_quota(r.pid, d, QUOTA_LIMIT)?;
    for i in 0..FILES {
        let f = r.k.create_entry(
            r.pid,
            d,
            &format!("f{i}"),
            acl.clone(),
            Label::BOTTOM,
            false,
        )?;
        let segno = r.k.initiate(r.pid, f)?;
        for p in 0..PAGES {
            r.k.write_word(r.pid, segno, p * PW, val(i, p, 0))?;
            r.k.write_word(r.pid, segno, p * PW + PW - 1, val(i, p, 1))?;
        }
    }
    r.k.sync_to_disk()?;
    *sync1_at = Some(r.k.machine.faults.writes);
    let g =
        r.k.create_entry(r.pid, root, "grow", acl, Label::BOTTOM, false)?;
    let segno = r.k.initiate(r.pid, g)?;
    for p in 0..GROW_PAGES {
        r.k.write_word(r.pid, segno, p * PW, Word::new(u64::from(p) + 1))?;
    }
    r.k.sync_to_disk()
}

/// Checks phase-1 contents on a recovered kernel via the ordinary gates.
fn kernel_verify_phase1(rk: &mut Kernel) {
    rk.register_account("check", mx_kernel::UserId(1), 1, Label::BOTTOM);
    let pid = rk.login_residue("check", 1, Label::BOTTOM).expect("login");
    let root = rk.root_token();
    let d = rk.dir_search(pid, root, "d").expect("synced dir survives");
    for i in 0..FILES {
        let f = rk
            .dir_search(pid, d, &format!("f{i}"))
            .expect("synced file survives");
        let segno = rk.initiate(pid, f).expect("initiate survivor");
        for p in 0..PAGES {
            assert_eq!(
                rk.read_word(pid, segno, p * PW).expect("read survivor"),
                val(i, p, 0),
                "file f{i} page {p} lost its first word"
            );
            assert_eq!(
                rk.read_word(pid, segno, p * PW + PW - 1)
                    .expect("read survivor"),
                val(i, p, 1),
                "file f{i} page {p} lost its last word"
            );
        }
    }
}

/// Asserts that after salvage every allocated record on every pack is
/// referenced by exactly one file map — nothing leaked, nothing
/// double-claimed (claims (c) and (d)).
fn assert_storage_conserved(disks: &mx_hw::DiskSystem, design: &str, n: u64) {
    for pack in disks.packs() {
        let allocated = pack.allocated_record_nos().len();
        let referenced: usize = pack
            .entries()
            .map(|(_, e)| e.file_map.iter().flatten().count())
            .sum();
        assert_eq!(
            allocated, referenced,
            "{design} crash point {n}: {allocated} records allocated but \
             {referenced} referenced after salvage"
        );
    }
}

/// Runs the kernel half of the crash matrix.
fn kernel_matrix(stride: u64) -> MatrixSummary {
    // Dry run: learn the write-ordinal universe and sanity-check that
    // the workload really exercises relocation.
    let mut rig = kernel_rig(FaultPlan::new());
    let mut sync1 = None;
    kernel_workload(&mut rig, &mut sync1).expect("fault-free run");
    let total = rig.k.machine.faults.writes;
    let sync1 = sync1.expect("phase-1 checkpoint");
    assert!(
        rig.k.segm.stats.relocations > 0,
        "workload must force a relocation (got none in {total} writes)"
    );

    let mut tested = 0;
    let mut damage_found = 0;
    let mut repairs = 0u64;
    let mut durable_verified = 0;
    let mut cycles_sum = 0u64;
    let mut cycles_max = 0u64;
    let mut last = None;
    for n in (1..=total).step_by(stride.max(1) as usize) {
        let mut rig = kernel_rig(FaultPlan::new().crash_after_writes(n, crash_mode(n)));
        let mut s1 = None;
        let err = kernel_workload(&mut rig, &mut s1)
            .expect_err("the crash plan must fire before the workload ends");
        assert!(
            matches!(err, KernelError::Disk(_)),
            "kernel crash point {n}: power failure must surface typed, got {err:?}"
        );
        let image = rig.k.machine.disks.clone();
        let mut rk = Kernel::boot_from_image(kernel_config(), image).expect("recovery bootload");
        let repaired = rk.salvage(true).expect("salvage with repair");
        let check = rk.salvage(false).expect("salvage check pass");
        assert!(
            check.clean(),
            "kernel crash point {n}: second salvage pass still sees {:?}",
            check.problems
        );
        assert_storage_conserved(&rk.machine.disks, "kernel", n);
        let cycles = rk.machine.clock.now();
        if s1.is_some_and(|c| n > c) {
            kernel_verify_phase1(&mut rk);
            durable_verified += 1;
        }
        tested += 1;
        if !repaired.problems.is_empty() {
            damage_found += 1;
        }
        repairs += repaired.repairs.len() as u64;
        cycles_sum += cycles;
        cycles_max = cycles_max.max(cycles);
        last = Some(rk);
    }
    let _ = sync1;
    if let Some(rk) = last {
        crate::trace::publish("r1.kernel", &rk.machine.clock, rk.stats.counters());
    }
    MatrixSummary {
        total_writes: total,
        tested,
        damage_found,
        repairs,
        durable_verified,
        avg_recovery_cycles: cycles_sum / u64::from(tested.max(1)),
        max_recovery_cycles: cycles_max,
    }
}

// ------------------------------------------------------------- legacy --

fn legacy_config() -> SupervisorConfig {
    SupervisorConfig {
        packs: 2,
        records_per_pack: 8,
        toc_slots_per_pack: 16,
        root_quota_pages: 64,
        ..SupervisorConfig::default()
    }
}

struct LRig {
    sup: Supervisor,
    pid: mx_legacy::ProcessId,
}

fn legacy_rig(plan: FaultPlan) -> LRig {
    let mut sup = Supervisor::boot(legacy_config());
    sup.machine.disks.attach(BIG_PACK.0, BIG_PACK.1);
    let pid = sup
        .create_process(LUserId(1), Label::BOTTOM)
        .expect("process");
    sup.machine.faults.install(plan);
    LRig { sup, pid }
}

/// The shared workload, old-supervisor side.
fn legacy_workload(r: &mut LRig, sync1_at: &mut Option<u64>) -> Result<(), LegacyError> {
    let acl = LAcl::owner(LUserId(1));
    let root = r.sup.root();
    let d = r
        .sup
        .create_directory_in(root, "d", acl.clone(), Label::BOTTOM)?;
    r.sup.set_quota_directory(r.pid, ">d", QUOTA_LIMIT)?;
    for i in 0..FILES {
        let f = r
            .sup
            .create_segment_in(d, &format!("f{i}"), acl.clone(), Label::BOTTOM)?;
        let astx = r.sup.activate(f)?;
        for p in 0..PAGES {
            r.sup.sup_write(astx, p * PW, val(i, p, 0))?;
            r.sup.sup_write(astx, p * PW + PW - 1, val(i, p, 1))?;
        }
    }
    r.sup.sync_to_disk()?;
    *sync1_at = Some(r.sup.machine.faults.writes);
    let g = r.sup.create_segment_in(root, "grow", acl, Label::BOTTOM)?;
    let astx = r.sup.activate(g)?;
    for p in 0..GROW_PAGES {
        r.sup.sup_write(astx, p * PW, Word::new(u64::from(p) + 1))?;
    }
    r.sup.sync_to_disk()
}

/// Checks phase-1 contents on a recovered supervisor.
fn legacy_verify_phase1(rs: &mut Supervisor) {
    let pid = rs
        .create_process(LUserId(1), Label::BOTTOM)
        .expect("post-recovery process");
    for i in 0..FILES {
        let (uid, _entry) = rs
            .resolve(pid, &format!(">d>f{i}"), AccessRight::Read)
            .expect("synced file survives");
        let astx = rs.activate(uid).expect("activate survivor");
        for p in 0..PAGES {
            assert_eq!(
                rs.sup_read(astx, p * PW).expect("read survivor"),
                val(i, p, 0),
                "file f{i} page {p} lost its first word"
            );
            assert_eq!(
                rs.sup_read(astx, p * PW + PW - 1).expect("read survivor"),
                val(i, p, 1),
                "file f{i} page {p} lost its last word"
            );
        }
    }
}

/// Runs the old-supervisor half of the crash matrix.
fn legacy_matrix(stride: u64) -> MatrixSummary {
    let mut rig = legacy_rig(FaultPlan::new());
    let mut sync1 = None;
    legacy_workload(&mut rig, &mut sync1).expect("fault-free run");
    let total = rig.sup.machine.faults.writes;
    let _sync1 = sync1.expect("phase-1 checkpoint");
    assert!(
        rig.sup.stats.relocations > 0,
        "workload must force a relocation (got none in {total} writes)"
    );

    let mut tested = 0;
    let mut damage_found = 0;
    let mut repairs = 0u64;
    let mut durable_verified = 0;
    let mut cycles_sum = 0u64;
    let mut cycles_max = 0u64;
    let mut last = None;
    for n in (1..=total).step_by(stride.max(1) as usize) {
        let mut rig = legacy_rig(FaultPlan::new().crash_after_writes(n, crash_mode(n)));
        let mut s1 = None;
        let err = legacy_workload(&mut rig, &mut s1)
            .expect_err("the crash plan must fire before the workload ends");
        assert!(
            matches!(err, LegacyError::Disk(_)),
            "legacy crash point {n}: power failure must surface typed, got {err:?}"
        );
        let image = rig.sup.machine.disks.clone();
        let mut rs =
            Supervisor::boot_from_image(legacy_config(), image).expect("recovery bootload");
        let repaired = rs.salvage(true).expect("salvage with repair");
        let check = rs.salvage(false).expect("salvage check pass");
        assert!(
            check.clean(),
            "legacy crash point {n}: second salvage pass still sees {:?}",
            check.problems
        );
        assert_storage_conserved(&rs.machine.disks, "legacy", n);
        let cycles = rs.machine.clock.now();
        if s1.is_some_and(|c| n > c) {
            legacy_verify_phase1(&mut rs);
            durable_verified += 1;
        }
        tested += 1;
        if !repaired.problems.is_empty() {
            damage_found += 1;
        }
        repairs += repaired.repairs.len() as u64;
        cycles_sum += cycles;
        cycles_max = cycles_max.max(cycles);
        last = Some(rs);
    }
    if let Some(rs) = last {
        crate::trace::publish("r1.legacy", &rs.machine.clock, rs.stats.counters());
    }
    MatrixSummary {
        total_writes: total,
        tested,
        damage_found,
        repairs,
        durable_verified,
        avg_recovery_cycles: cycles_sum / u64::from(tested.max(1)),
        max_recovery_cycles: cycles_max,
    }
}

// ------------------------------------------------- graceful degradation --

/// Exercises the non-crash fault modes on both designs: a transient
/// read absorbed by the retry budget, budget exhaustion surfacing as a
/// typed error, and a pack going offline and coming back. Panics if any
/// path misbehaves; returns one note line per design.
fn degradation_notes() -> Vec<String> {
    let mut notes = Vec::new();

    // Kernel side.
    let mut r = kernel_rig(FaultPlan::new());
    let acl = mx_kernel::Acl::owner(mx_kernel::UserId(1));
    let root = r.k.root_token();
    let t =
        r.k.create_entry(r.pid, root, "t", acl, Label::BOTTOM, false)
            .expect("probe file");
    let segno = r.k.initiate(r.pid, t).expect("initiate probe");
    r.k.write_word(r.pid, segno, 0, Word::new(0o7777))
        .expect("probe write");
    r.k.sync_to_disk().expect("probe sync");
    let uid = r.k.uid_of_token(t).expect("probe uid");
    let home = r.k.dirm.home_of(uid).expect("probe home");
    let rec =
        r.k.machine
            .disks
            .pack(home.pack)
            .expect("probe pack")
            .entry(home.toc)
            .expect("probe toc")
            .file_map[0]
            .expect("probe record");
    r.k.machine
        .faults
        .install(FaultPlan::new().transient_read(home.pack, rec, 1));
    assert_eq!(
        r.k.read_word(r.pid, segno, 0).expect("absorbed read"),
        Word::new(0o7777)
    );
    assert!(r.k.pfm.stats.transient_retries >= 1, "retry not counted");
    r.k.sync_to_disk().expect("re-sync");
    let mut plan = FaultPlan::new();
    for kth in 1..=u64::from(mx_kernel::page_frame::READ_RETRY_BUDGET) + 1 {
        plan = plan.transient_read(home.pack, rec, kth);
    }
    r.k.machine.faults.install(plan);
    let err =
        r.k.read_word(r.pid, segno, 0)
            .expect_err("budget exhausted");
    assert!(
        matches!(err, KernelError::Disk(DiskError::TransientRead { .. })),
        "exhaustion must be typed, got {err:?}"
    );
    r.k.machine.faults.clear();
    r.k.sync_to_disk().expect("re-sync");
    r.k.machine.faults.set_offline(home.pack, true);
    let err = r.k.read_word(r.pid, segno, 0).expect_err("pack offline");
    assert!(
        matches!(err, KernelError::Disk(DiskError::PackOffline { .. })),
        "offline must be typed, got {err:?}"
    );
    r.k.machine.faults.set_offline(home.pack, false);
    assert_eq!(
        r.k.read_word(r.pid, segno, 0).expect("pack back online"),
        Word::new(0o7777)
    );
    notes.push(format!(
        "kernel: transient read absorbed ({} retries), retry exhaustion \
         and offline pack surface typed, pack return resumes service",
        r.k.pfm.stats.transient_retries
    ));

    // Old-supervisor side.
    let mut r = legacy_rig(FaultPlan::new());
    let acl = LAcl::owner(LUserId(1));
    let root = r.sup.root();
    let t = r
        .sup
        .create_segment_in(root, "t", acl, Label::BOTTOM)
        .expect("probe file");
    let astx = r.sup.activate(t).expect("activate probe");
    r.sup
        .sup_write(astx, 0, Word::new(0o7777))
        .expect("probe write");
    r.sup.sync_to_disk().expect("probe sync");
    let (_uid, e) = r
        .sup
        .resolve(r.pid, ">t", AccessRight::Read)
        .expect("probe entry");
    let rec = r
        .sup
        .machine
        .disks
        .pack(e.pack)
        .expect("probe pack")
        .entry(e.toc)
        .expect("probe toc")
        .file_map[0]
        .expect("probe record");
    r.sup
        .machine
        .faults
        .install(FaultPlan::new().transient_read(e.pack, rec, 1));
    let astx = r.sup.activate(t).expect("re-activate");
    assert_eq!(
        r.sup.sup_read(astx, 0).expect("absorbed read"),
        Word::new(0o7777)
    );
    assert!(r.sup.stats.disk_retries >= 1, "retry not counted");
    r.sup.sync_to_disk().expect("re-sync");
    let mut plan = FaultPlan::new();
    for kth in 1..=u64::from(mx_legacy::page_control::READ_RETRY_BUDGET) + 1 {
        plan = plan.transient_read(e.pack, rec, kth);
    }
    r.sup.machine.faults.install(plan);
    let astx = r.sup.activate(t).expect("re-activate");
    let err = r.sup.sup_read(astx, 0).expect_err("budget exhausted");
    assert!(
        matches!(err, LegacyError::Disk(DiskError::TransientRead { .. })),
        "exhaustion must be typed, got {err:?}"
    );
    r.sup.machine.faults.clear();
    r.sup.sync_to_disk().expect("re-sync");
    r.sup.machine.faults.set_offline(e.pack, true);
    // The old supervisor stores directory representations in segments,
    // so even re-activation pages against the offline pack — and must
    // degrade to a typed error rather than a panic.
    let err = r.sup.activate(t).expect_err("pack offline");
    assert!(
        matches!(err, LegacyError::Disk(DiskError::PackOffline { .. })),
        "offline must be typed, got {err:?}"
    );
    r.sup.machine.faults.set_offline(e.pack, false);
    let astx = r.sup.activate(t).expect("re-activate");
    assert_eq!(
        r.sup.sup_read(astx, 0).expect("pack back online"),
        Word::new(0o7777)
    );
    notes.push(format!(
        "legacy: transient read absorbed ({} retries), retry exhaustion \
         and offline pack surface typed, pack return resumes service",
        r.sup.stats.disk_retries
    ));
    notes
}

// ---------------------------------------------------------- experiment --

/// R1 — the crash matrix, both designs, every `stride`-th write of the
/// workload taken as a crash point. Panics (failing the experiment) if
/// any crash point fails to recover to a clean, conserved hierarchy
/// with durable contents intact.
pub fn r1_crash_recovery(stride: u64) -> Comparison {
    let kernel = kernel_matrix(stride);
    let legacy = legacy_matrix(stride);
    let mut notes = vec![
        format!(
            "legacy: {}/{} crash points run, damage at {}, {} repairs, \
             durable contents verified at {} points, worst recovery {} cycles",
            legacy.tested,
            legacy.total_writes,
            legacy.damage_found,
            legacy.repairs,
            legacy.durable_verified,
            legacy.max_recovery_cycles
        ),
        format!(
            "kernel: {}/{} crash points run, damage at {}, {} repairs, \
             durable contents verified at {} points, worst recovery {} cycles",
            kernel.tested,
            kernel.total_writes,
            kernel.damage_found,
            kernel.repairs,
            kernel.durable_verified,
            kernel.max_recovery_cycles
        ),
        "every point recovered: salvage converged (second pass clean), \
         records conserved, synced objects intact"
            .to_string(),
    ];
    notes.extend(degradation_notes());
    Comparison {
        name: "R1  crash matrix: salvager-driven recovery",
        unit: "cycles/recovery (mean)",
        legacy: legacy.avg_recovery_cycles,
        kernel: kernel.avg_recovery_cycles,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Satellite: salvage-with-repair is idempotent from every crash
    /// state — the matrix asserts the second pass is clean at each
    /// point. Subsampled here to keep the test quick; `repro --only r1`
    /// runs the full matrix.
    #[test]
    fn subsampled_crash_matrix_recovers_both_designs() {
        let k = kernel_matrix(7);
        assert!(k.tested > 0);
        assert!(k.durable_verified > 0, "late crash points must be tested");
        let l = legacy_matrix(7);
        assert!(l.tested > 0);
        assert!(l.durable_verified > 0, "late crash points must be tested");
    }

    /// Same seed, same matrix: the experiment is replayable.
    #[test]
    fn crash_matrix_is_deterministic() {
        let a = kernel_matrix(11);
        let b = kernel_matrix(11);
        assert_eq!(a.total_writes, b.total_writes);
        assert_eq!(a.damage_found, b.damage_found);
        assert_eq!(a.repairs, b.repairs);
        assert_eq!(a.avg_recovery_cycles, b.avg_recovery_cycles);
        assert_eq!(a.max_recovery_cycles, b.max_recovery_cycles);
    }

    /// The non-crash fault modes behave on both designs.
    #[test]
    fn degradation_paths_hold() {
        assert_eq!(degradation_notes().len(), 2);
    }
}
