//! S1 — online salvage: repair the hierarchy while serving re-admitted
//! traffic.
//!
//! C1 proved the composition recovers; its recovery is stop-the-world —
//! nobody logs in until the salvager has walked the whole hierarchy
//! twice and the reconcile has replayed every survivor. S1 runs the
//! identical crash plan with the salvager *incremental and concurrent
//! with service*: after `boot_from_image` only the root and a repair
//! frontier are quarantined, the answering service re-admits the queued
//! population immediately, and sessions run against already-salvaged
//! subtrees while the salvager claims one directory at a time,
//! releasing each as it is proven clean. A reference into a directory
//! still in quarantine surfaces as a typed `SalvageBusy` and is retried
//! on a bounded budget — graceful degradation, never a hang.
//!
//! Oracles: the per-directory-release battery (meter conservation and
//! per-pack record conservation on the serving half, per-directory
//! repair idempotence via the release-time recheck) at every release;
//! label-by-label kernel/legacy parity; FIFO re-admission across every
//! crash; byte-identical reruns; and the strongest one — the
//! user-visible stream must be IDENTICAL to C1's stop-the-world
//! recovery, so the overlap buys availability without changing a single
//! outcome. The kernel additionally runs under seeded-random and PCT
//! schedules racing the salvager's claim sequence. A built-in
//! self-check plants a salvager that releases a directory before
//! repairing its torn quota cell and proves the release-time battery
//! catches it, deterministically.

use mx_hw::meter::CounterSet;
use mx_hw::Clock;
use mx_load::{
    run_kernel_c1, run_kernel_s1, run_legacy_c1, run_legacy_s1, C1Policy, C1Run, C1Spec, S1Run,
    S1SelfCheck, S1Spec,
};

/// Stream seed for the scripted population (C1's, so the stop-the-world
/// baseline is the same stream).
const SEED: u64 = 0x0C1_1977;
/// Seed of the crash-mode stream.
const PLAN_SEED: u64 = 0xFA17_0C1A;
/// Schedule seed for the random and PCT policies.
const SCHED_SEED: u64 = 0x5C4E_D011;
/// Crash/online-salvage/re-admit boundaries cut into the stream.
const CRASHES: u32 = 3;

/// Cross-run checks: parity against the legacy baseline, identical
/// bounds and admission order, byte-identical reruns, and the crashes
/// actually exercising recovery under traffic.
fn cross_checks(k: &S1Run, k2: &S1Run, l: &S1Run, spec: &S1Spec) -> Vec<String> {
    let repro = spec.repro(k.design);
    let mut out = Vec::new();
    if k.transcript() != k2.transcript() {
        out.push(format!(
            "rerun of the same triple diverged — the run is not a pure function of \
             (seed, plan, schedule) [{repro}]"
        ));
    }
    if k.epoch_bounds != l.epoch_bounds {
        out.push(format!(
            "epoch bounds differ: kernel {:?}, legacy {:?} [{repro}]",
            k.epoch_bounds, l.epoch_bounds
        ));
    }
    if k.parity != l.parity {
        let i = k
            .parity
            .iter()
            .zip(&l.parity)
            .position(|(a, b)| a != b)
            .unwrap_or(k.parity.len().min(l.parity.len()));
        out.push(format!(
            "parity: label {i} differs — kernel {:?}, legacy {:?} [{repro}]",
            k.parity.get(i),
            l.parity.get(i)
        ));
    }
    if k.admitted_order != l.admitted_order {
        out.push(format!(
            "admission fairness: kernel admitted {:?}, legacy {:?} [{repro}]",
            k.admitted_order, l.admitted_order
        ));
    }
    if !k.admitted_order.windows(2).all(|w| w[0] < w[1]) {
        out.push(format!(
            "admission fairness: kernel admissions out of FIFO order: {:?} [{repro}]",
            k.admitted_order
        ));
    }
    let crashed = k.epochs.iter().filter(|e| e.crashed).count();
    if crashed != spec.crashes as usize {
        out.push(format!(
            "only {crashed} of {} crash epochs completed — the stream drained early [{repro}]",
            spec.crashes
        ));
    }
    for r in [k, l] {
        if !r
            .epochs
            .iter()
            .filter(|e| e.crashed)
            .all(|e| e.dirs_released > 0)
        {
            out.push(format!(
                "{}: a recovery released no directories — salvage was not incremental [{repro}]",
                r.design
            ));
        }
        if !r.epochs.iter().any(|e| e.overlap_ops > 0) {
            out.push(format!(
                "{}: no op ever overlapped a live salvage — service never shared the \
                 machine with repair [{repro}]",
                r.design
            ));
        }
        if r.parity.iter().any(|lbl| lbl == "busy") {
            out.push(format!(
                "{}: a salvage retry budget was exhausted mid-stream [{repro}]",
                r.design
            ));
        }
    }
    out
}

/// The outcome-equivalence oracle: online salvage must produce the
/// byte-identical user-visible stream the stop-the-world recovery does.
fn outcome_checks(design: &str, online: &S1Run, offline: &C1Run, spec: &S1Spec) -> Vec<String> {
    let repro = spec.repro(design);
    let mut out = Vec::new();
    if online.parity != offline.parity {
        let i = online
            .parity
            .iter()
            .zip(&offline.parity)
            .position(|(a, b)| a != b)
            .unwrap_or(online.parity.len().min(offline.parity.len()));
        out.push(format!(
            "{design}: online salvage changed outcome at label {i} — online {:?}, \
             stop-the-world {:?} [{repro}]",
            online.parity.get(i),
            offline.parity.get(i)
        ));
    }
    if online.admitted_order != offline.admitted_order {
        out.push(format!(
            "{design}: online salvage changed the admission order [{repro}]"
        ));
    }
    out
}

/// The deliberately broken salvager: releases each directory before
/// repairing its quota cell. The release-time battery must catch it and
/// the printed triple must replay to identical violations.
fn self_check() -> String {
    let mut spec = S1Spec::new(8, SEED, PLAN_SEED, 2, C1Policy::Fifo);
    spec.self_check = S1SelfCheck::ReleaseBeforeCellRepair;
    let broken = run_kernel_s1(&spec);
    assert!(
        !broken.violations.is_empty(),
        "S1 self-check: a salvager that releases before repairing went uncaught"
    );
    assert!(
        broken
            .violations
            .iter()
            .any(|v| v.contains("seed=") && v.contains("plan=") && v.contains("schedule=")),
        "S1 self-check: violations lack the replayable repro string: {:?}",
        broken.violations
    );
    let replay = run_kernel_s1(&spec);
    assert_eq!(
        broken.violations, replay.violations,
        "S1 self-check: the repro triple did not replay to identical violations"
    );
    format!(
        "self-check: release-before-repair caught at the release ({} violations, e.g. \
         \"{}\"), and the repro triple replays identically",
        broken.violations.len(),
        broken.violations[0]
    )
}

fn row(out: &mut String, r: &S1Run) {
    let crashed = r.epochs.iter().filter(|e| e.crashed).count();
    let released: u32 = r.epochs.iter().map(|e| e.dirs_released).sum();
    let overlap: u64 = r.epochs.iter().map(|e| e.overlap_ops).sum();
    let blocked: u64 = r.epochs.iter().map(|e| e.blocked_ops).sum();
    let blocked_cy: u64 = r.epochs.iter().map(|e| e.blocked_cycles).sum();
    out.push_str(&format!(
        "  {:<7} {:<12} {:>6} {:>7} {:>9.3} {:>9.3} {:>8} {:>8} {:>8} {:>9.1} {:>5} {:>5}\n",
        r.design,
        r.schedule,
        r.ops,
        crashed,
        r.load_cycles as f64 / 1e6,
        r.recovery_cycles as f64 / 1e6,
        released,
        overlap,
        blocked,
        if blocked == 0 {
            0.0
        } else {
            blocked_cy as f64 / blocked as f64 / 1e3
        },
        r.hist.percentile(50).expect("S1 rows always retire ops"),
        r.hist.percentile(99).expect("S1 rows always retire ops"),
    ));
}

/// Runs online salvage under live traffic at `sessions` users and
/// renders the report, including the stop-the-world (C1) baseline
/// comparison. `sessions` is floored at 8 so every recovery has an
/// admission storm to re-admit.
///
/// # Panics
///
/// Panics on any oracle violation, printing the replayable
/// `seed=… plan=… schedule=…` string, and if the self-check's planted
/// cheat goes uncaught.
pub fn s1_online_salvage(sessions: usize) -> String {
    let sessions = sessions.max(8);
    let base = S1Spec::new(sessions, SEED, PLAN_SEED, CRASHES, C1Policy::Fifo);
    let c1_base = C1Spec::new(sessions, SEED, PLAN_SEED, CRASHES, C1Policy::Fifo);

    let legacy = run_legacy_s1(&base);
    let legacy2 = run_legacy_s1(&base);
    let mut violations: Vec<String> = legacy.violations.clone();
    if legacy.transcript() != legacy2.transcript() {
        violations.push(format!(
            "legacy rerun diverged — not a pure function of the triple [{}]",
            base.repro("legacy")
        ));
    }

    let mut out = String::new();
    out.push_str(&format!(
        "  {:<7} {:<12} {:>6} {:>7} {:>9} {:>9} {:>8} {:>8} {:>8} {:>9} {:>5} {:>5}\n",
        "design",
        "schedule",
        "ops",
        "crashes",
        "loadMcy",
        "resumMcy",
        "released",
        "overlap",
        "blocked",
        "blkKcy/op",
        "p50",
        "p99",
    ));
    row(&mut out, &legacy);

    let policies = [
        C1Policy::Fifo,
        C1Policy::Random(SCHED_SEED),
        C1Policy::Pct(SCHED_SEED),
    ];
    let mut fifo_run: Option<S1Run> = None;
    for policy in policies {
        let spec = S1Spec { policy, ..base };
        let k = run_kernel_s1(&spec);
        let k2 = run_kernel_s1(&spec);
        violations.extend(k.violations.iter().cloned());
        violations.extend(cross_checks(&k, &k2, &legacy, &spec));
        row(&mut out, &k);
        if policy == C1Policy::Fifo {
            fifo_run = Some(k);
        }
    }
    let fifo = fifo_run.expect("fifo policy is in the sweep");

    // The stop-the-world baseline: same stream, same crash plan,
    // C1-style offline recovery. Outcomes must be identical; the
    // figures quantify what the overlap bought.
    let kernel_c1 = run_kernel_c1(&c1_base);
    let legacy_c1 = run_legacy_c1(&c1_base);
    violations.extend(kernel_c1.violations.iter().cloned());
    violations.extend(legacy_c1.violations.iter().cloned());
    violations.extend(outcome_checks("kernel", &fifo, &kernel_c1, &base));
    violations.extend(outcome_checks("legacy", &legacy, &legacy_c1, &base));

    if let Some(bad) = violations.first() {
        panic!(
            "S1 violation ({} total): {bad}\n\
             (replay: rebuild the S1Spec from the bracketed seed/plan/schedule string)",
            violations.len()
        );
    }

    out.push_str(
        "  (resumMcy = bootload-to-stream-resume cycles summed over crashes; released =\n  \
         directories claimed/repaired/released one at a time; overlap = ops completed\n  \
         while the salvager still held part of the hierarchy; blocked = ops that hit a\n  \
         SalvageBusy barrier at least once, blkKcy/op = mean kcycles such an op spent\n  \
         blocked; service-time percentiles include any barrier stalls)\n",
    );

    out.push_str("\n  availability vs the stop-the-world baseline (same stream, same crashes):\n");
    for (design, online, offline) in [
        ("kernel", &fifo, &kernel_c1),
        ("legacy", &legacy, &legacy_c1),
    ] {
        let window: u64 = online.epochs.iter().map(|e| e.salvage_window).sum();
        let first_op: u64 = online.epochs.iter().map(|e| e.first_op_cycles).sum();
        let n = CRASHES as f64;
        out.push_str(&format!(
            "  {:<7} downtime/crash {:>9.3} -> {:>7.3} Mcy  salvage window {:>7.3} Mcy  \
             first op at {:>7.3} Mcy\n",
            design,
            offline.recovery_cycles as f64 / n / 1e6,
            online.recovery_cycles as f64 / n / 1e6,
            window as f64 / n / 1e6,
            first_op as f64 / n / 1e6,
        ));
    }
    out.push_str(
        "  (downtime = cycles from recovery bootload until the population's stream\n  \
         resumes: stop-the-world pays two full salvage passes before anyone logs in;\n  \
         online quarantines, re-admits, and repairs under traffic — identical labels,\n  \
         identical admission order, on both designs)\n",
    );

    out.push_str("\n  per-epoch detail (kernel under fifo vs legacy inherent):\n");
    out.push_str(&format!(
        "  {:<7} {:>5} {:>6} {:>9} {:>5} {:>6} {:>8} {:>8} {:>8} {:>8} {:>7} {:>9}\n",
        "design",
        "epoch",
        "ops",
        "Mcycles",
        "live",
        "queued",
        "crashed",
        "released",
        "overlap",
        "blocked",
        "retries",
        "resumMcy",
    ));
    for r in [&fifo, &legacy] {
        for (i, e) in r.epochs.iter().enumerate() {
            out.push_str(&format!(
                "  {:<7} {:>5} {:>6} {:>9.3} {:>5} {:>6} {:>8} {:>8} {:>8} {:>8} {:>7} {:>9.3}\n",
                r.design,
                i,
                e.ops,
                e.cycles as f64 / 1e6,
                e.live_at_crash,
                e.queued_at_crash,
                e.crashed,
                e.dirs_released,
                e.overlap_ops,
                e.blocked_ops,
                e.retries,
                e.recovery_cycles as f64 / 1e6,
            ));
        }
    }

    out.push_str(&format!("\n  {}\n", self_check()));
    out.push_str(&format!(
        "\n  sessions scripted              : {sessions}\n"
    ));
    out.push_str(&format!(
        "  crash/online-salvage epochs    : {CRASHES} (per design and schedule)\n"
    ));
    out.push_str(&format!(
        "  schedules swept                : {} (kernel) + inherent (legacy)\n",
        policies.len()
    ));
    out.push_str(&format!(
        "  parity labels compared         : {} (per schedule, and against the\n  \
                                   stop-the-world C1 baseline, label-by-label)\n",
        legacy.parity.len()
    ));
    out.push_str("  reruns byte-identical          : yes (every design and schedule)\n");
    out.push_str("  oracle violations              : 0\n");

    let mut counters = CounterSet::new();
    counters.set("sessions", sessions as u64);
    counters.set("crashes", u64::from(CRASHES));
    counters.set("kernel_ops", fifo.ops);
    counters.set("kernel_resume_cycles", fifo.recovery_cycles);
    counters.set("kernel_stw_recovery_cycles", kernel_c1.recovery_cycles);
    counters.set("legacy_ops", legacy.ops);
    counters.set("legacy_resume_cycles", legacy.recovery_cycles);
    counters.set("legacy_stw_recovery_cycles", legacy_c1.recovery_cycles);
    counters.set(
        "dirs_released",
        fifo.epochs.iter().map(|e| u64::from(e.dirs_released)).sum(),
    );
    counters.set(
        "overlap_ops",
        fifo.epochs.iter().map(|e| e.overlap_ops).sum(),
    );
    counters.set(
        "blocked_ops",
        fifo.epochs.iter().map(|e| e.blocked_ops).sum(),
    );
    crate::trace::publish("s1.online_salvage", &Clock::new(), counters);

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s1_runs_clean_at_smoke_scale() {
        let report = s1_online_salvage(12);
        assert!(report.contains("oracle violations              : 0"));
        assert!(report.contains("self-check: release-before-repair caught"));
        // One legacy row plus three kernel schedule rows, and the
        // stop-the-world comparison for both designs.
        assert!(report.contains(" inherent "));
        assert!(report.contains(" fifo "));
        assert!(report.contains(" random:"));
        assert!(report.contains(" pct:"));
        assert!(report.contains("availability vs the stop-the-world baseline"));
    }
}
