//! Workloads and experiment drivers for every table and figure.
//!
//! Each experiment in DESIGN.md's index has a driver here that builds
//! both systems (the looped 1974 supervisor from `mx-legacy` and the
//! loop-free Kernel/Multics from `mx-kernel` + `mx-user`), runs the same
//! synthetic workload on each, and reports deterministic simulated-cycle
//! results. The `repro` binary prints them all; the benches under
//! `benches/` re-measure the same drivers in wall-clock time through the
//! local [`harness`].

pub mod c1;
pub mod experiments;
pub mod f1;
pub mod g1;
pub mod harness;
pub mod l1;
pub mod m1;
pub mod r1;
pub mod s1;
pub mod trace;
pub mod workload;
pub mod x1;

pub use c1::c1_chaos_composition;
pub use experiments::{
    a1_namespace_cache, a2_purifier_idle, a3_associative_memory, p1_linker, p2_namespace,
    p3_answering, p4_memory, p5_scheduler, p7_quota, p8_fault_path, s1_mythical_identifiers,
    s2_confinement, s3_relocation, Comparison, MemoryRow, QuotaRow, SchedulerRow,
};
pub use f1::f1_fleet_scaling;
pub use g1::g1_lattice_gate;
pub use l1::l1_load_scaling;
pub use m1::m1_parallel_load;
pub use r1::r1_crash_recovery;
pub use s1::s1_online_salvage;
pub use workload::{RefString, TreeSpec};
pub use x1::x1_schedule_exploration;
