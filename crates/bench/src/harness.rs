//! A minimal wall-clock benchmark harness.
//!
//! The build environment carries no external crates, so the Criterion
//! dependency is replaced by this drop-in subset: `criterion_group!` /
//! `criterion_main!`, [`Criterion::bench_function`], benchmark groups
//! with `sample_size`, and parameterised `bench_with_input`. Timings are
//! reported as min/median/mean nanoseconds per iteration.
//!
//! After every benchmark the harness drains the cycle-attribution
//! collector (see [`crate::trace`]) and prints the same per-subsystem
//! breakdown the `repro --trace` report contains, so wall-clock numbers
//! and simulated-cycle attribution appear side by side.

use crate::trace;
use std::time::{Duration, Instant};

pub use crate::{criterion_group, criterion_main};

/// Target measuring time per benchmark (split across samples).
const TARGET_MEASURE: Duration = Duration::from_millis(300);
/// Warm-up time per benchmark.
const WARMUP: Duration = Duration::from_millis(50);

/// Top-level harness handle, passed to every bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// A harness with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(name, 20, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }
}

/// A named group of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    /// Runs one parameterised benchmark within the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id.0), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (kept for Criterion API compatibility).
    pub fn finish(&mut self) {}
}

/// A benchmark identifier built from a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id that is just the parameter, e.g. `group/32`.
    pub fn from_parameter(p: impl std::fmt::Display) -> Self {
        Self(p.to_string())
    }

    /// An id with a function name and a parameter, e.g. `group/f/32`.
    pub fn new(name: impl Into<String>, p: impl std::fmt::Display) -> Self {
        Self(format!("{}/{}", name.into(), p))
    }
}

/// Per-benchmark timing driver handed to the closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples_ns: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, running it enough times for stable samples.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm up and calibrate the per-sample iteration count.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let budget = TARGET_MEASURE.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter) as u64).max(1);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed().as_secs_f64();
            self.samples_ns
                .push(elapsed * 1e9 / iters_per_sample as f64);
        }
    }
}

fn run_benchmark(name: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    // Attribution from earlier benchmarks must not leak into this one.
    trace::drain();
    let mut b = Bencher {
        samples_ns: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples_ns.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    let mut sorted = b.samples_ns.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    println!(
        "{name:<48} min {:>12}  median {:>12}  mean {:>12}",
        format_ns(min),
        format_ns(median),
        format_ns(mean)
    );
    // Profiling hook: show where the simulated cycles of the benched
    // workload went, per subsystem. Sampling publishes one snapshot per
    // iteration; keep only the last per label so the breakdown prints
    // once, not once per sample.
    let mut last_by_label: Vec<trace::TraceRun> = Vec::new();
    for run in trace::drain() {
        if let Some(slot) = last_by_label.iter_mut().find(|r| r.label == run.label) {
            *slot = run;
        } else {
            last_by_label.push(run);
        }
    }
    for run in last_by_label {
        let breakdown = run.meter.render_text();
        if !breakdown.is_empty() {
            println!("  cycles[{}]:", run.label);
            for line in breakdown.lines() {
                println!("  {line}");
            }
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a function that runs the listed bench functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::harness::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` to run the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_the_requested_samples() {
        let mut b = Bencher {
            samples_ns: Vec::new(),
            sample_size: 3,
        };
        let mut n = 0u64;
        b.iter(|| {
            n = n.wrapping_add(1);
            n
        });
        assert_eq!(b.samples_ns.len(), 3);
        assert!(b.samples_ns.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn benchmark_ids_render_like_criterion() {
        assert_eq!(BenchmarkId::from_parameter(32).0, "32");
        assert_eq!(BenchmarkId::new("walk", 4).0, "walk/4");
    }

    #[test]
    fn ns_formatting_picks_sane_units() {
        assert_eq!(format_ns(12.3), "12.3 ns");
        assert_eq!(format_ns(12_300.0), "12.300 µs");
        assert_eq!(format_ns(12_300_000.0), "12.300 ms");
        assert_eq!(format_ns(2_500_000_000.0), "2.500 s");
    }
}
