//! L1 — multi-user throughput/latency scaling under the load harness.
//!
//! Drives the same seeded session population — login storm through the
//! answering service, dynamic links, name-space resolution, file
//! create/grow, page-fault-heavy shared reads, logout — through both
//! designs at N = 1, 4, 16, 64, 256, 1024 concurrent users, multiplexed
//! across every simulated CPU. Reports throughput (sessions and
//! operations per million simulated cycles), per-operation latency
//! percentiles from a deterministic histogram, VP-level queueing delay,
//! and the per-subsystem meter breakdown. At *every* scale point the
//! experiment asserts meter conservation, record conservation, and
//! old/new user-visible parity — it aborts on any violation, so a
//! printed table is itself the measurement.

use mx_hw::meter::CounterSet;
use mx_hw::Clock;
use mx_load::{run_both, LoadRun};

/// The sweep, smallest to largest. `max_sessions` truncates it (the CI
/// smoke runs with a 64-user cap).
const SCALE: [usize; 6] = [1, 4, 16, 64, 256, 1024];
/// One seed for the whole sweep: each point is a prefix-independent
/// population derived from (seed, session index).
const SEED: u64 = 1977;

fn row(out: &mut String, n: usize, r: &LoadRun) {
    let (wait, samples) = r.queue_delay;
    let qd = if samples == 0 {
        0.0
    } else {
        wait as f64 / samples as f64
    };
    out.push_str(&format!(
        "  {:>5} {:<7} {:>7} {:>9.3} {:>9.1} {:>9.3} {:>6} {:>6} {:>7} {:>7.2} {:>6} {:>5}  {}\n",
        n,
        r.design,
        r.ops,
        r.cycles as f64 / 1e6,
        r.ops_per_mcycle(),
        r.sessions_per_mcycle(),
        r.hist.percentile(50).expect("L1 rows always retire ops"),
        r.hist.percentile(95).expect("L1 rows always retire ops"),
        r.hist.percentile(99).expect("L1 rows always retire ops"),
        qd,
        r.queued_peak,
        r.event_queue_hwm,
        r.per_cpu_ops
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join("/"),
    ));
}

/// Runs the L1 sweep up to `max_sessions` users and renders the report.
///
/// # Panics
///
/// Panics on any oracle violation or user-visible parity break at any
/// scale point, and — with at least 4 users on a multi-CPU machine —
/// if any CPU retired zero user operations.
pub fn l1_load_scaling(max_sessions: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "  {:>5} {:<7} {:>7} {:>9} {:>9} {:>9} {:>6} {:>6} {:>7} {:>7} {:>6} {:>5}  {}\n",
        "users",
        "design",
        "ops",
        "Mcycles",
        "ops/Mcy",
        "sess/Mcy",
        "p50",
        "p95",
        "p99",
        "qdelay",
        "queued",
        "eqhwm",
        "ops-per-cpu",
    ));

    let mut last: Option<(usize, LoadRun, LoadRun)> = None;
    for &n in SCALE.iter().filter(|&&n| n <= max_sessions) {
        let (k, l) = run_both(&mx_load::LoadSpec::new(n, SEED));
        let problems = LoadRun::check_pair(&k, &l);
        assert!(problems.is_empty(), "L1 N={n}: {problems:?}");
        if n >= 4 {
            for r in [&k, &l] {
                assert!(
                    r.per_cpu_ops.iter().all(|&c| c > 0),
                    "L1 N={n}: a CPU retired no user work in {}: {:?}",
                    r.design,
                    r.per_cpu_ops
                );
            }
        }
        row(&mut out, n, &k);
        row(&mut out, n, &l);
        last = Some((n, k, l));
    }
    out.push_str(
        "  (latencies in simulated cycles; percentiles are power-of-two bucket\n  \
         bounds; qdelay = mean VP-switch intervals spent runnable-but-queued;\n  \
         eqhwm = real-memory event-queue high watermark — both kernel-only)\n",
    );

    let (n, k, l) = last.expect("at least one scale point");
    out.push_str(&format!(
        "\n  per-subsystem cycle attribution at N={n}, new kernel:\n{}",
        k.meter.render_text()
    ));
    out.push_str(&format!(
        "  per-subsystem cycle attribution at N={n}, 1974 supervisor:\n{}",
        l.meter.render_text()
    ));
    out.push_str(&format!(
        "\n  scale points swept             : {}\n",
        SCALE.iter().filter(|&&s| s <= max_sessions).count()
    ));
    out.push_str(&format!(
        "  parity labels compared         : {}\n",
        k.parity.len()
    ));
    out.push_str("  oracle violations              : 0\n");

    let mut counters = CounterSet::new();
    counters.set("max_sessions", n as u64);
    counters.set("kernel_ops", k.ops);
    counters.set("kernel_cycles", k.cycles);
    counters.set("legacy_ops", l.ops);
    counters.set("legacy_cycles", l.cycles);
    counters.set(
        "kernel_cpu0_ops",
        k.per_cpu_ops.first().copied().unwrap_or(0),
    );
    counters.set(
        "kernel_cpu1_ops",
        k.per_cpu_ops.get(1).copied().unwrap_or(0),
    );
    counters.set(
        "legacy_cpu0_ops",
        l.per_cpu_ops.first().copied().unwrap_or(0),
    );
    counters.set(
        "legacy_cpu1_ops",
        l.per_cpu_ops.get(1).copied().unwrap_or(0),
    );
    counters.set("queued_peak", k.queued_peak as u64);
    crate::trace::publish("l1.load", &Clock::new(), counters);

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_runs_clean_at_smoke_scale() {
        let report = l1_load_scaling(16);
        assert!(report.contains("oracle violations              : 0"));
        // Three scale points, two designs each, plus the header.
        let rows = report
            .lines()
            .filter(|l| l.contains(" kernel ") || l.contains(" legacy "))
            .count();
        assert_eq!(rows, 6);
        // Both CPUs appear in every per-cpu column (shape "a/b").
        assert!(report.lines().any(|l| l.contains(" kernel ")
            && l.trim_end().ends_with(|c: char| c.is_ascii_digit())
            && l.contains('/')));
    }
}
