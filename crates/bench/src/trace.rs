//! The cycle-attribution trace collector behind `repro --trace`.
//!
//! Experiment drivers publish each measured run here — a label like
//! `"p4.kernel"`, the clock's per-subsystem [`MeterSnapshot`], and the
//! system's statistics rendered as a [`CounterSet`]. The `repro` binary
//! drains the collector into a JSON report; the benchmark harness drains
//! it after every benchmark to print the same breakdown next to the
//! wall-clock numbers.
//!
//! The collector is thread-local: experiments and their metering run on
//! one thread, and keeping it local means no locking and no cross-test
//! interference under the parallel test runner.

use mx_hw::meter::{CounterSet, MeterSnapshot};
use mx_hw::Clock;
use std::cell::RefCell;

/// One published run: a labelled attribution snapshot plus counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRun {
    /// Which experiment and which system, e.g. `"p4.kernel"`.
    pub label: String,
    /// Clock reading at publication; equals `meter.total()` by the
    /// conservation property.
    pub clock_cycles: u64,
    /// Per-subsystem attribution at publication.
    pub meter: MeterSnapshot,
    /// Named statistics of the system that ran (fault counts, etc.).
    pub counters: CounterSet,
}

thread_local! {
    static RUNS: RefCell<Vec<TraceRun>> = const { RefCell::new(Vec::new()) };
}

/// Publishes a measured run into the thread's collector.
pub fn publish(label: &str, clock: &Clock, counters: CounterSet) {
    RUNS.with(|runs| {
        runs.borrow_mut().push(TraceRun {
            label: label.to_string(),
            clock_cycles: clock.now(),
            meter: clock.meter_snapshot(),
            counters,
        });
    });
}

/// Takes every published run, leaving the collector empty.
pub fn drain() -> Vec<TraceRun> {
    RUNS.with(|runs| runs.borrow_mut().split_off(0))
}

/// Renders drained runs as the `repro --trace` JSON document.
///
/// Hand-rolled JSON: labels and counter names are fixed identifiers and
/// every value is an integer, so no escaping is needed.
pub fn render_json(runs: &[TraceRun]) -> String {
    let mut out = String::from("{\"runs\":{");
    for (i, run) in runs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{}\":{{\"clock_cycles\":{},\"meter\":{},\"counters\":{}}}",
            run.label,
            run.clock_cycles,
            run.meter.to_json(),
            run.counters.to_json()
        ));
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx_hw::meter::Subsystem;
    use mx_hw::CostModel;

    #[test]
    fn published_runs_conserve_cycles() {
        drain();
        let cost = CostModel::default();
        let mut clk = Clock::new();
        let g = clk.enter(Subsystem::PageControl);
        clk.charge_disk_transfer(&cost);
        clk.exit(g);
        clk.charge(17);
        let mut counters = CounterSet::new();
        counters.set("page_faults", 1);
        publish("unit.kernel", &clk, counters);
        let runs = drain();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].label, "unit.kernel");
        assert_eq!(runs[0].clock_cycles, clk.now());
        assert_eq!(runs[0].meter.total(), runs[0].clock_cycles);
        assert!(drain().is_empty(), "drain empties the collector");
    }

    #[test]
    fn json_report_contains_every_section() {
        drain();
        let cost = CostModel::default();
        let mut clk = Clock::new();
        let g = clk.enter(Subsystem::Purifier);
        clk.charge_disk_transfer(&cost);
        clk.exit(g);
        let mut counters = CounterSet::new();
        counters.set("evictions", 2);
        publish("unit.legacy", &clk, counters);
        let json = render_json(&drain());
        assert!(json.starts_with("{\"runs\":{\"unit.legacy\":{"));
        assert!(json.contains("\"clock_cycles\":"));
        assert!(json.contains("\"purifier\":{\"cycles\":"));
        assert!(json.contains("\"counters\":{\"evictions\":2}"));
        assert!(json.ends_with("}}"));
    }
}
