//! P4 — wall-clock: the memory managers from ample to cramped core.

use mx_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mx_bench::p4_memory;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("p4_memory");
    g.sample_size(10);
    for pageable in [56usize, 36] {
        g.bench_with_input(BenchmarkId::from_parameter(pageable), &pageable, |b, &p| {
            b.iter(|| std::hint::black_box(p4_memory(&[p], 40, 600, 10)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
