//! P5 — wall-clock: one-level vs two-level processor multiplexing.

use mx_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mx_bench::p5_scheduler;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("p5_scheduler");
    g.sample_size(10);
    for procs in [2u32, 6] {
        g.bench_with_input(BenchmarkId::from_parameter(procs), &procs, |b, &p| {
            b.iter(|| std::hint::black_box(p5_scheduler(&[p], 40)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
