//! P6 — wall-clock: the threaded Reed-Kanodia primitives.

use mx_bench::harness::{criterion_group, criterion_main, Criterion};
use mx_sync::threaded::EventcountMutex;
use mx_sync::{EventCount, Sequencer};
use std::sync::Arc;
use std::thread;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("p6_eventcount");

    g.bench_function("advance_read_uncontended", |b| {
        let ec = EventCount::new();
        b.iter(|| {
            ec.advance();
            std::hint::black_box(ec.read())
        })
    });

    g.bench_function("sequencer_ticket", |b| {
        let seq = Sequencer::new();
        b.iter(|| std::hint::black_box(seq.ticket()))
    });

    g.bench_function("producer_consumer_handoff_1000", |b| {
        b.iter(|| {
            let ec = Arc::new(EventCount::new());
            let consumer = {
                let ec = Arc::clone(&ec);
                thread::spawn(move || ec.await_value(1000))
            };
            for _ in 0..1000 {
                ec.advance();
            }
            consumer.join().unwrap()
        })
    });

    g.bench_function("eventcount_mutex_4x250", |b| {
        b.iter(|| {
            let m = Arc::new(EventcountMutex::new(0u64));
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let m = Arc::clone(&m);
                    thread::spawn(move || {
                        for _ in 0..250 {
                            m.with(|v| *v += 1);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            m.with(|v| *v)
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
