//! T1-T3 — the census engine itself (table regeneration cost).

use mx_bench::harness::{criterion_group, criterion_main, Criterion};
use mx_census::multics::{standard_transforms, start_of_project};
use mx_census::size_table;

fn bench(c: &mut Criterion) {
    c.bench_function("t1_size_table", |b| {
        b.iter(|| std::hint::black_box(size_table(&start_of_project(), &standard_transforms())))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
