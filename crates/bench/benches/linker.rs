//! P1 — wall-clock: the in-kernel vs user-domain dynamic linker.

use mx_bench::harness::{criterion_group, criterion_main, Criterion};
use mx_bench::p1_linker;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("p1_linker");
    g.sample_size(10);
    g.bench_function("both_systems_24_symbols", |b| {
        b.iter(|| std::hint::black_box(p1_linker(24)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
