//! P3 — wall-clock: monolithic vs residue+user answering service.

use mx_bench::harness::{criterion_group, criterion_main, Criterion};
use mx_bench::p3_answering;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("p3_answering");
    g.sample_size(10);
    g.bench_function("ten_sessions", |b| {
        b.iter(|| std::hint::black_box(p3_answering(10)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
