//! P2 — wall-clock: buried pathname search vs user-domain expansion.

use mx_bench::harness::{criterion_group, criterion_main, Criterion};
use mx_bench::{p2_namespace, TreeSpec};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("p2_namespace");
    g.sample_size(10);
    g.bench_function("small_tree_4_rounds", |b| {
        b.iter(|| std::hint::black_box(p2_namespace(TreeSpec::small(), 4)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
