//! L1 — wall-clock: the multi-user load harness at two scale points.

use mx_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mx_load::{run_both, LoadSpec};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("l1_load");
    g.sample_size(10);
    for n in [16usize, 64] {
        g.bench_with_input(BenchmarkId::new("both_designs", n), &n, |b, &n| {
            b.iter(|| std::hint::black_box(run_both(&LoadSpec::new(n, 1977))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
