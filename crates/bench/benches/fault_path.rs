//! P8 — wall-clock: retranslation vs the descriptor lock bit.

use mx_bench::harness::{criterion_group, criterion_main, Criterion};
use mx_bench::p8_fault_path;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("p8_fault_path");
    g.sample_size(10);
    g.bench_function("flush_refault_8_pages_x2", |b| {
        b.iter(|| std::hint::black_box(p8_fault_path(8, 2)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
