//! P7 — wall-clock: dynamic quota walk vs static quota cell.

use mx_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mx_bench::p7_quota;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("p7_quota");
    g.sample_size(10);
    for depth in [2u32, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &d| {
            b.iter(|| std::hint::black_box(p7_quota(&[d], 6)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
