//! A3 — wall-clock: the descriptor-walk associative memory on and off.

use mx_bench::a3_associative_memory;
use mx_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("a3_tlb");
    g.sample_size(10);
    for refs in [400usize, 1200] {
        g.bench_with_input(BenchmarkId::from_parameter(refs), &refs, |b, &r| {
            b.iter(|| std::hint::black_box(a3_associative_memory(80, 40, r, 10)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
