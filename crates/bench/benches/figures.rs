//! F2-F4 — dependency analysis cost (SCC + layering on the registries).

use mx_bench::harness::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    c.bench_function("f3_actual_structure_loops", |b| {
        b.iter(|| {
            let g = mx_legacy::actual_structure();
            std::hint::black_box(g.loops())
        })
    });
    c.bench_function("f4_kernel_structure_layers", |b| {
        b.iter(|| {
            let g = mx_kernel::kernel_structure();
            std::hint::black_box(g.layers().expect("loop-free"))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
