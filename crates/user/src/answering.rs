//! The user-domain answering service (Montgomery, 1976).
//!
//! Of the old Answering Service's 10,000 trusted lines, "fewer than
//! 1,000 of them need be included in the kernel": the password check,
//! clearance check and process creation (the `login_residue` gate). The
//! other nine-tenths — greeting parsing, login policy (attempt limits),
//! session bookkeeping, billing aggregation, reports — run here with no
//! privilege at all. The restructured service "in its preliminary
//! implementation, ran about 3% slower" — the cost of the extra gate
//! crossing on each login, which benchmark P3 reproduces.

use mx_aim::Label;
use mx_kernel::{Kernel, KernelError, ProcessId, UserId};
use std::collections::HashMap;

/// Deterministic FNV-1a password hashing, done in user space so the
/// cleartext never crosses the gate.
pub fn password_hash(cleartext: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in cleartext.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// One live session.
#[derive(Debug, Clone)]
pub struct Session {
    /// The account name.
    pub name: String,
    /// The process serving the session.
    pub pid: ProcessId,
    /// Label the session logged in at.
    pub label: Label,
}

/// Per-account user-domain bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct AccountRecord {
    /// Completed sessions.
    pub sessions: u64,
    /// Total charge units billed.
    pub charge_units: u64,
    /// Consecutive failed login attempts (policy state).
    pub failed_attempts: u32,
}

/// The user-domain answering service.
#[derive(Debug, Default)]
pub struct AnsweringService {
    records: HashMap<String, AccountRecord>,
    sessions: Vec<Session>,
    /// Lockout threshold (a policy the kernel never needs to know).
    pub max_attempts: u32,
}

impl AnsweringService {
    /// A service with the default three-strikes policy.
    pub fn new() -> Self {
        Self {
            records: HashMap::new(),
            sessions: Vec::new(),
            max_attempts: 3,
        }
    }

    /// Registers an account: user-domain record plus the kernel residue
    /// credential (hash only).
    pub fn register(
        &mut self,
        kernel: &mut Kernel,
        name: &str,
        user: UserId,
        password: &str,
        clearance: Label,
    ) {
        kernel.register_account(name, user, password_hash(password), clearance);
        self.records.entry(name.to_string()).or_default();
    }

    /// The full login flow: policy checks here, authentication at the
    /// residue gate.
    ///
    /// # Errors
    ///
    /// [`KernelError::BadCredentials`] (wrong password, unknown account,
    /// or locked out), [`KernelError::AimViolation`] (label above
    /// clearance).
    pub fn login(
        &mut self,
        kernel: &mut Kernel,
        name: &str,
        password: &str,
        label: Label,
    ) -> Result<ProcessId, KernelError> {
        let record = self.records.entry(name.to_string()).or_default();
        if record.failed_attempts >= self.max_attempts {
            return Err(KernelError::BadCredentials);
        }
        // Nine-tenths of the old 10K-line service runs here,
        // unprivileged: greeting parsing, policy, session setup.
        kernel.charge_user_instructions(880, mx_hw::Language::Pli);
        match kernel.login_residue(name, password_hash(password), label) {
            Ok(pid) => {
                record.failed_attempts = 0;
                self.sessions.push(Session {
                    name: name.to_string(),
                    pid,
                    label,
                });
                Ok(pid)
            }
            Err(e) => {
                if e == KernelError::BadCredentials {
                    record.failed_attempts += 1;
                }
                Err(e)
            }
        }
    }

    /// Logout: residue gate destroys the process and reports the charge;
    /// the billing record is user-domain.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchProcess`] if the session is unknown.
    pub fn logout(&mut self, kernel: &mut Kernel, pid: ProcessId) -> Result<u64, KernelError> {
        let idx = self
            .sessions
            .iter()
            .position(|s| s.pid == pid)
            .ok_or(KernelError::NoSuchProcess)?;
        let session = self.sessions.remove(idx);
        kernel.charge_user_instructions(240, mx_hw::Language::Pli);
        let charge = kernel.logout_residue(&session.name, pid)?;
        let record = self.records.entry(session.name).or_default();
        record.sessions += 1;
        record.charge_units += charge;
        Ok(charge)
    }

    /// Live session count.
    pub fn active_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// An account's user-domain record.
    pub fn record(&self, name: &str) -> Option<&AccountRecord> {
        self.records.get(name)
    }

    /// The billing report: (account, sessions, charge units), sorted by
    /// account name.
    pub fn billing_report(&self) -> Vec<(String, u64, u64)> {
        let mut rows: Vec<_> = self
            .records
            .iter()
            .map(|(n, r)| (n.clone(), r.sessions, r.charge_units))
            .collect();
        rows.sort();
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx_aim::{CompartmentSet, Level};
    use mx_kernel::KernelConfig;

    fn boot() -> Kernel {
        Kernel::boot(KernelConfig {
            frames: 128,
            records_per_pack: 256,
            toc_slots_per_pack: 64,
            pt_slots: 24,
            max_processes: 8,
            root_quota: 200,
            ..KernelConfig::default()
        })
    }

    #[test]
    fn login_session_logout_and_billing() {
        let mut k = boot();
        let mut svc = AnsweringService::new();
        svc.register(&mut k, "saltzer", UserId(1), "cactus", Label::BOTTOM);
        let pid = svc
            .login(&mut k, "saltzer", "cactus", Label::BOTTOM)
            .unwrap();
        assert_eq!(svc.active_sessions(), 1);
        k.schedule();
        let charge = svc.logout(&mut k, pid).unwrap();
        assert!(charge > 0);
        let rec = svc.record("saltzer").unwrap();
        assert_eq!(rec.sessions, 1);
        assert_eq!(rec.charge_units, charge);
        assert_eq!(svc.active_sessions(), 0);
        assert_eq!(svc.billing_report(), vec![("saltzer".into(), 1, charge)]);
    }

    #[test]
    fn three_strikes_lockout_is_pure_user_domain_policy() {
        let mut k = boot();
        let mut svc = AnsweringService::new();
        svc.register(&mut k, "clark", UserId(2), "arpa", Label::BOTTOM);
        for _ in 0..3 {
            assert_eq!(
                svc.login(&mut k, "clark", "wrong", Label::BOTTOM)
                    .unwrap_err(),
                KernelError::BadCredentials
            );
        }
        // Even the right password is refused now — by the user-domain
        // policy, before the gate is ever crossed.
        let gates = k.machine.clock.gate_crossings();
        assert_eq!(
            svc.login(&mut k, "clark", "arpa", Label::BOTTOM)
                .unwrap_err(),
            KernelError::BadCredentials
        );
        assert_eq!(
            k.machine.clock.gate_crossings(),
            gates,
            "no gate crossing for lockout"
        );
    }

    #[test]
    fn clearance_enforced_by_the_residue() {
        let mut k = boot();
        let mut svc = AnsweringService::new();
        let secret = Label::new(Level(2), CompartmentSet::empty());
        svc.register(&mut k, "low", UserId(3), "pw", Label::BOTTOM);
        assert_eq!(
            svc.login(&mut k, "low", "pw", secret).unwrap_err(),
            KernelError::AimViolation
        );
        svc.register(&mut k, "high", UserId(4), "pw", secret);
        assert!(svc.login(&mut k, "high", "pw", secret).is_ok());
        assert!(svc.login(&mut k, "high", "pw", Label::BOTTOM).is_ok());
    }

    #[test]
    fn cleartext_never_crosses_the_gate() {
        // The gate takes a hash; this test just pins the user-space
        // hashing behaviour.
        assert_ne!(password_hash("a"), password_hash("b"));
        assert_eq!(password_hash("cactus"), password_hash("cactus"));
    }
}
