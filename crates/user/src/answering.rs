//! The user-domain answering service (Montgomery, 1976).
//!
//! Of the old Answering Service's 10,000 trusted lines, "fewer than
//! 1,000 of them need be included in the kernel": the password check,
//! clearance check and process creation (the `login_residue` gate). The
//! other nine-tenths — greeting parsing, login policy (attempt limits),
//! session bookkeeping, billing aggregation, reports — run here with no
//! privilege at all. The restructured service "in its preliminary
//! implementation, ran about 3% slower" — the cost of the extra gate
//! crossing on each login, which benchmark P3 reproduces.

use mx_aim::Label;
use mx_kernel::{Kernel, KernelError, ProcessId, UserId};
use std::collections::{HashMap, VecDeque};

/// Deterministic FNV-1a password hashing, done in user space so the
/// cleartext never crosses the gate.
pub fn password_hash(cleartext: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in cleartext.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// One live session.
#[derive(Debug, Clone)]
pub struct Session {
    /// The account name.
    pub name: String,
    /// The process serving the session.
    pub pid: ProcessId,
    /// Label the session logged in at.
    pub label: Label,
}

/// Per-account user-domain bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct AccountRecord {
    /// Completed sessions.
    pub sessions: u64,
    /// Total charge units billed.
    pub charge_units: u64,
    /// Consecutive failed login attempts (policy state).
    pub failed_attempts: u32,
}

/// Outcome of a batched login attempt under load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// A process slot was free; the session is live.
    Admitted(ProcessId),
    /// Every process slot was taken; the request parked at this depth in
    /// the admission queue. Queueing is pure user-domain policy — the
    /// kernel only ever said "table full".
    Queued(usize),
}

/// A login the service has parked until a process slot frees up.
#[derive(Debug, Clone)]
struct PendingLogin {
    name: String,
    password: String,
    label: Label,
}

/// The user-domain answering service.
#[derive(Debug, Default)]
pub struct AnsweringService {
    records: HashMap<String, AccountRecord>,
    sessions: Vec<Session>,
    pending: VecDeque<PendingLogin>,
    /// Lockout threshold (a policy the kernel never needs to know).
    pub max_attempts: u32,
}

impl AnsweringService {
    /// A service with the default three-strikes policy.
    pub fn new() -> Self {
        Self {
            records: HashMap::new(),
            sessions: Vec::new(),
            pending: VecDeque::new(),
            max_attempts: 3,
        }
    }

    /// Registers an account: user-domain record plus the kernel residue
    /// credential (hash only).
    pub fn register(
        &mut self,
        kernel: &mut Kernel,
        name: &str,
        user: UserId,
        password: &str,
        clearance: Label,
    ) {
        kernel.register_account(name, user, password_hash(password), clearance);
        self.records.entry(name.to_string()).or_default();
    }

    /// The full login flow: policy checks here, authentication at the
    /// residue gate.
    ///
    /// # Errors
    ///
    /// [`KernelError::BadCredentials`] (wrong password, unknown account,
    /// or locked out), [`KernelError::AimViolation`] (label above
    /// clearance).
    pub fn login(
        &mut self,
        kernel: &mut Kernel,
        name: &str,
        password: &str,
        label: Label,
    ) -> Result<ProcessId, KernelError> {
        let record = self.records.entry(name.to_string()).or_default();
        if record.failed_attempts >= self.max_attempts {
            return Err(KernelError::BadCredentials);
        }
        // Nine-tenths of the old 10K-line service runs here,
        // unprivileged: greeting parsing, policy, session setup.
        kernel.charge_user_instructions(880, mx_hw::Language::Pli);
        match kernel.login_residue(name, password_hash(password), label) {
            Ok(pid) => {
                record.failed_attempts = 0;
                self.sessions.push(Session {
                    name: name.to_string(),
                    pid,
                    label,
                });
                Ok(pid)
            }
            Err(e) => {
                if e == KernelError::BadCredentials {
                    record.failed_attempts += 1;
                }
                Err(e)
            }
        }
    }

    /// Logout: residue gate destroys the process and reports the charge;
    /// the billing record is user-domain.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchProcess`] if the session is unknown.
    pub fn logout(&mut self, kernel: &mut Kernel, pid: ProcessId) -> Result<u64, KernelError> {
        let idx = self
            .sessions
            .iter()
            .position(|s| s.pid == pid)
            .ok_or(KernelError::NoSuchProcess)?;
        let session = self.sessions.remove(idx);
        kernel.charge_user_instructions(240, mx_hw::Language::Pli);
        let charge = kernel.logout_residue(&session.name, pid)?;
        let record = self.records.entry(session.name).or_default();
        record.sessions += 1;
        record.charge_units += charge;
        Ok(charge)
    }

    /// Login under load: when every process slot is taken the request is
    /// queued instead of refused, and admitted later by
    /// [`AnsweringService::admit_waiting`] once a logout frees a slot.
    /// A login storm therefore never panics and never loses a
    /// well-formed request.
    ///
    /// # Errors
    ///
    /// Exactly the refusals [`AnsweringService::login`] gives — bad
    /// credentials, lockout, clearance violation. Slot exhaustion is not
    /// an error here; it queues.
    pub fn login_or_queue(
        &mut self,
        kernel: &mut Kernel,
        name: &str,
        password: &str,
        label: Label,
    ) -> Result<Admission, KernelError> {
        match self.login(kernel, name, password, label) {
            Ok(pid) => Ok(Admission::Admitted(pid)),
            Err(KernelError::TableFull(_)) => {
                self.pending.push_back(PendingLogin {
                    name: name.to_string(),
                    password: password.to_string(),
                    label,
                });
                Ok(Admission::Queued(self.pending.len()))
            }
            Err(e) => Err(e),
        }
    }

    /// Admits queued logins in arrival order while process slots last.
    /// Requests the policy now refuses outright (lockout reached while
    /// queued, say) are dropped; the head request blocked only by a full
    /// process table stays at the head.
    pub fn admit_waiting(&mut self, kernel: &mut Kernel) -> Vec<(String, ProcessId)> {
        let mut admitted = Vec::new();
        while let Some(req) = self.pending.pop_front() {
            match self.login(kernel, &req.name, &req.password, req.label) {
                Ok(pid) => admitted.push((req.name, pid)),
                Err(KernelError::TableFull(_)) => {
                    self.pending.push_front(req);
                    break;
                }
                Err(_) => {}
            }
        }
        admitted
    }

    /// Crash recovery for the service's own state: every live session's
    /// process died with core, so the session list is cleared — but the
    /// billing records and the *admission queue survive intact*. Parked
    /// logins are pure user-domain bookkeeping (name, password, label);
    /// the crash owes them nothing but their place in line, and
    /// [`AnsweringService::admit_waiting`] against the recovered kernel
    /// admits them in the original FIFO order. Returns the names of the
    /// sessions the crash killed, in login order.
    pub fn crash_recover(&mut self) -> Vec<String> {
        std::mem::take(&mut self.sessions)
            .into_iter()
            .map(|s| s.name)
            .collect()
    }

    /// Names of the parked logins, head (oldest) first — the order
    /// [`AnsweringService::admit_waiting`] will admit them in.
    pub fn pending_names(&self) -> Vec<String> {
        self.pending.iter().map(|p| p.name.clone()).collect()
    }

    /// Discards the *youngest* parked login, violating the service's
    /// keep-every-queued-login recovery obligation on purpose. Exists so
    /// recovery harnesses can prove their oracles catch a service that
    /// loses admissions across a crash; never called by real paths.
    #[doc(hidden)]
    pub fn drop_last_pending_for_test(&mut self) {
        self.pending.pop_back();
    }

    /// Logins parked for a process slot.
    pub fn queued_logins(&self) -> usize {
        self.pending.len()
    }

    /// Live session count.
    pub fn active_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// An account's user-domain record.
    pub fn record(&self, name: &str) -> Option<&AccountRecord> {
        self.records.get(name)
    }

    /// The billing report: (account, sessions, charge units), sorted by
    /// account name.
    pub fn billing_report(&self) -> Vec<(String, u64, u64)> {
        let mut rows: Vec<_> = self
            .records
            .iter()
            .map(|(n, r)| (n.clone(), r.sessions, r.charge_units))
            .collect();
        rows.sort();
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx_aim::{CompartmentSet, Level};
    use mx_kernel::KernelConfig;

    fn boot() -> Kernel {
        Kernel::boot(KernelConfig {
            frames: 128,
            records_per_pack: 256,
            toc_slots_per_pack: 64,
            pt_slots: 24,
            max_processes: 8,
            root_quota: 200,
            ..KernelConfig::default()
        })
    }

    #[test]
    fn login_session_logout_and_billing() {
        let mut k = boot();
        let mut svc = AnsweringService::new();
        svc.register(&mut k, "saltzer", UserId(1), "cactus", Label::BOTTOM);
        let pid = svc
            .login(&mut k, "saltzer", "cactus", Label::BOTTOM)
            .unwrap();
        assert_eq!(svc.active_sessions(), 1);
        k.schedule();
        let charge = svc.logout(&mut k, pid).unwrap();
        assert!(charge > 0);
        let rec = svc.record("saltzer").unwrap();
        assert_eq!(rec.sessions, 1);
        assert_eq!(rec.charge_units, charge);
        assert_eq!(svc.active_sessions(), 0);
        assert_eq!(svc.billing_report(), vec![("saltzer".into(), 1, charge)]);
    }

    #[test]
    fn three_strikes_lockout_is_pure_user_domain_policy() {
        let mut k = boot();
        let mut svc = AnsweringService::new();
        svc.register(&mut k, "clark", UserId(2), "arpa", Label::BOTTOM);
        for _ in 0..3 {
            assert_eq!(
                svc.login(&mut k, "clark", "wrong", Label::BOTTOM)
                    .unwrap_err(),
                KernelError::BadCredentials
            );
        }
        // Even the right password is refused now — by the user-domain
        // policy, before the gate is ever crossed.
        let gates = k.machine.clock.gate_crossings();
        assert_eq!(
            svc.login(&mut k, "clark", "arpa", Label::BOTTOM)
                .unwrap_err(),
            KernelError::BadCredentials
        );
        assert_eq!(
            k.machine.clock.gate_crossings(),
            gates,
            "no gate crossing for lockout"
        );
    }

    #[test]
    fn clearance_enforced_by_the_residue() {
        let mut k = boot();
        let mut svc = AnsweringService::new();
        let secret = Label::new(Level(2), CompartmentSet::empty());
        svc.register(&mut k, "low", UserId(3), "pw", Label::BOTTOM);
        assert_eq!(
            svc.login(&mut k, "low", "pw", secret).unwrap_err(),
            KernelError::AimViolation
        );
        svc.register(&mut k, "high", UserId(4), "pw", secret);
        assert!(svc.login(&mut k, "high", "pw", secret).is_ok());
        assert!(svc.login(&mut k, "high", "pw", Label::BOTTOM).is_ok());
    }

    #[test]
    fn login_storm_queues_beyond_process_slots() {
        let mut k = boot(); // 8 slots, one taken by the kernel's residue? none here
        let mut svc = AnsweringService::new();
        for i in 0..12 {
            svc.register(
                &mut k,
                &format!("user{i:02}"),
                UserId(10 + i),
                "pw",
                Label::BOTTOM,
            );
        }
        let mut live = Vec::new();
        let mut queued = 0;
        for i in 0..12 {
            match svc
                .login_or_queue(&mut k, &format!("user{i:02}"), "pw", Label::BOTTOM)
                .unwrap()
            {
                Admission::Admitted(pid) => live.push(pid),
                Admission::Queued(_) => queued += 1,
            }
        }
        assert_eq!(live.len(), 8, "every process slot filled");
        assert_eq!(queued, 4, "overflow queued, not refused, not panicked");
        assert_eq!(svc.queued_logins(), 4);
        // Nothing admits while the table is still full.
        assert!(svc.admit_waiting(&mut k).is_empty());
        // Two logouts free two slots; exactly the two oldest waiters land.
        svc.logout(&mut k, live[0]).unwrap();
        svc.logout(&mut k, live[1]).unwrap();
        let admitted = svc.admit_waiting(&mut k);
        let names: Vec<&str> = admitted.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["user08", "user09"], "arrival order preserved");
        assert_eq!(svc.queued_logins(), 2);
    }

    #[test]
    fn bad_credentials_are_refused_not_queued() {
        let mut k = boot();
        let mut svc = AnsweringService::new();
        svc.register(&mut k, "corbato", UserId(5), "ctss", Label::BOTTOM);
        assert_eq!(
            svc.login_or_queue(&mut k, "corbato", "wrong", Label::BOTTOM)
                .unwrap_err(),
            KernelError::BadCredentials
        );
        assert_eq!(svc.queued_logins(), 0, "refusals never park");
    }

    #[test]
    fn double_logout_is_a_typed_error() {
        let mut k = boot();
        let mut svc = AnsweringService::new();
        svc.register(&mut k, "once", UserId(6), "pw", Label::BOTTOM);
        let pid = svc.login(&mut k, "once", "pw", Label::BOTTOM).unwrap();
        svc.logout(&mut k, pid).unwrap();
        assert_eq!(
            svc.logout(&mut k, pid).unwrap_err(),
            KernelError::NoSuchProcess
        );
        let rec = svc.record("once").unwrap();
        assert_eq!(rec.sessions, 1, "billed exactly once");
    }

    #[test]
    fn logout_of_never_logged_in_user_is_a_typed_error() {
        let mut k = boot();
        let mut svc = AnsweringService::new();
        svc.register(&mut k, "ghost", UserId(7), "pw", Label::BOTTOM);
        assert_eq!(
            svc.logout(&mut k, ProcessId(3)).unwrap_err(),
            KernelError::NoSuchProcess
        );
    }

    #[test]
    fn abandoned_session_slot_is_reused_after_reap() {
        let mut k = boot();
        let mut svc = AnsweringService::new();
        for i in 0..9 {
            svc.register(
                &mut k,
                &format!("u{i}"),
                UserId(20 + i),
                "pw",
                Label::BOTTOM,
            );
        }
        // Fill all 8 slots; the 8th user walks away without logging out.
        let mut pids = Vec::new();
        for i in 0..8 {
            pids.push(
                svc.login(&mut k, &format!("u{i}"), "pw", Label::BOTTOM)
                    .unwrap(),
            );
        }
        assert!(matches!(
            svc.login_or_queue(&mut k, "u8", "pw", Label::BOTTOM)
                .unwrap(),
            Admission::Queued(_)
        ));
        // The service reaps the abandoned session (logout on the user's
        // behalf); its slot then serves the waiter.
        let abandoned = pids[7];
        svc.logout(&mut k, abandoned).unwrap();
        let admitted = svc.admit_waiting(&mut k);
        assert_eq!(admitted.len(), 1);
        assert_eq!(admitted[0].0, "u8");
        assert_eq!(admitted[0].1, abandoned, "the freed slot is the one reused");
    }

    #[test]
    fn crash_recovery_preserves_admission_order_and_billing() {
        let mut k = boot(); // 8 process slots
        let mut svc = AnsweringService::new();
        for i in 0..12 {
            svc.register(
                &mut k,
                &format!("user{i:02}"),
                UserId(10 + i),
                "pw",
                Label::BOTTOM,
            );
        }
        // One completed session before the storm, so a billing record
        // exists to survive the crash.
        let early = svc.login(&mut k, "user00", "pw", Label::BOTTOM).unwrap();
        let charge = svc.logout(&mut k, early).unwrap();
        // Fill every slot and park the overflow.
        for i in 0..12 {
            svc.login_or_queue(&mut k, &format!("user{i:02}"), "pw", Label::BOTTOM)
                .unwrap();
        }
        assert_eq!(svc.active_sessions(), 8);
        let queued_before = svc.pending_names();
        assert_eq!(queued_before, vec!["user08", "user09", "user10", "user11"]);

        // Power fails: core (and every process) is gone. The service is
        // user-domain state and rides it out.
        let killed = svc.crash_recover();
        assert_eq!(killed.len(), 8, "every live session died with core");
        assert_eq!(svc.active_sessions(), 0);
        assert_eq!(
            svc.pending_names(),
            queued_before,
            "the admission queue survives the crash untouched"
        );
        let rec = svc.record("user00").unwrap();
        assert_eq!((rec.sessions, rec.charge_units), (1, charge));

        // Against a recovered kernel (fresh process table here), the
        // parked logins admit in their original FIFO order.
        let mut k2 = boot();
        for i in 0..12 {
            svc.register(
                &mut k2,
                &format!("user{i:02}"),
                UserId(10 + i),
                "pw",
                Label::BOTTOM,
            );
        }
        let admitted = svc.admit_waiting(&mut k2);
        let names: Vec<&str> = admitted.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec!["user08", "user09", "user10", "user11"],
            "original arrival order, across the crash boundary"
        );
        assert_eq!(svc.queued_logins(), 0);
    }

    #[test]
    fn cleartext_never_crosses_the_gate() {
        // The gate takes a hash; this test just pins the user-space
        // hashing behaviour.
        assert_ne!(password_hash("a"), password_hash("b"));
        assert_eq!(password_hash("cactus"), password_hash("cactus"));
    }
}
