//! The user-domain name space manager (Bratt, 1975).
//!
//! "If the supervisor kernel provides a primitive to search a single,
//! designated directory for a presented name … the program that knows
//! about how to expand tree names need not be in the supervisor."
//!
//! This is that program. It walks `>`-separated tree names by repeated
//! `dir_search` gate calls, keeps a per-process **prefix cache** of
//! resolved directory identifiers (the freedom to cache is why the
//! extracted manager ran *somewhat faster* than the buried kernel
//! search), and — because the kernel hands out mythical identifiers for
//! anything it must not reveal — learns nothing it should not: a failed
//! initiation at the end of an inaccessible path is the uniform
//! "no access".

use mx_kernel::{Kernel, KernelError, ObjToken, ProcessId};
use std::collections::HashMap;

/// A per-process tree-name resolver with a prefix cache.
#[derive(Debug)]
pub struct NameSpace {
    pid: ProcessId,
    root: ObjToken,
    cache: HashMap<String, ObjToken>,
    /// Gate calls spent on searches (experiment counter).
    pub searches: u64,
    /// Cache hits (experiment counter).
    pub cache_hits: u64,
}

impl NameSpace {
    /// A resolver for one process.
    pub fn new(kernel: &mut Kernel, pid: ProcessId) -> Self {
        Self {
            pid,
            root: kernel.root_token(),
            cache: HashMap::new(),
            searches: 0,
            cache_hits: 0,
        }
    }

    /// Splits a tree name into components.
    fn components(path: &str) -> Vec<&str> {
        path.split('>').filter(|c| !c.is_empty()).collect()
    }

    /// Resolves a tree name to an object identifier, walking one
    /// directory per `dir_search` gate call, reusing cached prefixes.
    ///
    /// The returned token may be mythical; only using it will tell — and
    /// then only "no access".
    ///
    /// # Errors
    ///
    /// [`KernelError::NoEntry`] when a *readable* directory honestly
    /// lacks the name.
    pub fn resolve(&mut self, kernel: &mut Kernel, path: &str) -> Result<ObjToken, KernelError> {
        let comps = Self::components(path);
        if comps.is_empty() {
            return Ok(self.root);
        }
        // Longest cached prefix.
        let mut start = 0;
        let mut current = self.root;
        for i in (1..=comps.len()).rev() {
            let prefix = comps[..i].join(">");
            if let Some(tok) = self.cache.get(&prefix) {
                kernel.charge_user_instructions(5, mx_hw::Language::Pli);
                self.cache_hits += 1;
                current = *tok;
                start = i;
                break;
            }
        }
        for i in start..comps.len() {
            self.searches += 1;
            // Component parsing and cache maintenance are user-domain
            // work.
            kernel.charge_user_instructions(25, mx_hw::Language::Pli);
            current = kernel.dir_search(self.pid, current, comps[i])?;
            self.cache.insert(comps[..=i].join(">"), current);
        }
        Ok(current)
    }

    /// Resolves and initiates: the full "make this path usable" flow.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoAccess`], uniformly, when the path is forbidden
    /// or fictitious.
    pub fn initiate(&mut self, kernel: &mut Kernel, path: &str) -> Result<u32, KernelError> {
        let token = self.resolve(kernel, path)?;
        kernel.initiate(self.pid, token)
    }

    /// Drops cached prefixes (e.g. after deletions).
    pub fn flush_cache(&mut self) {
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx_aim::Label;
    use mx_hw::Word;
    use mx_kernel::{Acl, KernelConfig, UserId};

    fn boot() -> (Kernel, ProcessId, ProcessId) {
        let mut k = Kernel::boot(KernelConfig {
            frames: 128,
            records_per_pack: 256,
            toc_slots_per_pack: 64,
            pt_slots: 24,
            max_processes: 6,
            root_quota: 200,
            ..KernelConfig::default()
        });
        k.register_account("alice", UserId(1), 1, Label::BOTTOM);
        k.register_account("bob", UserId(2), 2, Label::BOTTOM);
        let alice = k.login_residue("alice", 1, Label::BOTTOM).unwrap();
        let bob = k.login_residue("bob", 2, Label::BOTTOM).unwrap();
        (k, alice, bob)
    }

    /// Builds >a>b>leaf where only `leaf` grants Bob access.
    fn build_tree(k: &mut Kernel, alice: ProcessId) {
        let root = k.root_token();
        let mut alice_only = Acl::owner(UserId(1));
        let a = k
            .create_entry(alice, root, "a", alice_only.clone(), Label::BOTTOM, true)
            .unwrap();
        let b = k
            .create_entry(alice, a, "b", alice_only.clone(), Label::BOTTOM, true)
            .unwrap();
        alice_only.grant(UserId(2), &[mx_kernel::AccessRight::Read]);
        k.create_entry(alice, b, "leaf", alice_only, Label::BOTTOM, false)
            .unwrap();
    }

    #[test]
    fn resolve_and_initiate_own_tree() {
        let (mut k, alice, _bob) = boot();
        build_tree(&mut k, alice);
        let mut ns = NameSpace::new(&mut k, alice);
        let segno = ns.initiate(&mut k, ">a>b>leaf").unwrap();
        k.write_word(alice, segno, 0, Word::new(5)).unwrap();
        assert_eq!(k.read_word(alice, segno, 0).unwrap(), Word::new(5));
    }

    #[test]
    fn prefix_cache_cuts_gate_calls() {
        let (mut k, alice, _bob) = boot();
        build_tree(&mut k, alice);
        let mut ns = NameSpace::new(&mut k, alice);
        ns.resolve(&mut k, ">a>b>leaf").unwrap();
        assert_eq!(ns.searches, 3);
        ns.resolve(&mut k, ">a>b>leaf").unwrap();
        assert_eq!(ns.searches, 3, "full hit");
        assert!(ns.cache_hits >= 1);
        // Sibling resolution reuses the >a>b prefix.
        let root = k.root_token();
        let a = k.dir_search(alice, root, "a").unwrap();
        let b = k.dir_search(alice, a, "b").unwrap();
        k.create_entry(
            alice,
            b,
            "leaf2",
            Acl::owner(UserId(1)),
            Label::BOTTOM,
            false,
        )
        .unwrap();
        ns.resolve(&mut k, ">a>b>leaf2").unwrap();
        assert_eq!(ns.searches, 4, "one extra search for the last component");
    }

    #[test]
    fn bob_reaches_an_accessible_leaf_through_inaccessible_directories() {
        let (mut k, alice, bob) = boot();
        build_tree(&mut k, alice);
        // Alice stores a word first.
        let mut ns_a = NameSpace::new(&mut k, alice);
        let sa = ns_a.initiate(&mut k, ">a>b>leaf").unwrap();
        k.write_word(alice, sa, 0, Word::new(0o42)).unwrap();
        // Bob cannot read >a or >a>b, but the leaf grants him Read: the
        // intervening identifiers are real and the access succeeds.
        let mut ns_b = NameSpace::new(&mut k, bob);
        let sb = ns_b.initiate(&mut k, ">a>b>leaf").unwrap();
        assert_eq!(k.read_word(bob, sb, 0).unwrap(), Word::new(0o42));
    }

    #[test]
    fn bob_cannot_distinguish_missing_from_forbidden() {
        let (mut k, alice, bob) = boot();
        build_tree(&mut k, alice);
        let mut ns = NameSpace::new(&mut k, bob);
        // ">a>b>secret" does not exist; ">a>b" exists but is forbidden.
        let ghost = ns.resolve(&mut k, ">a>b>ghost").unwrap();
        let real_dir = ns.resolve(&mut k, ">a>b").unwrap();
        let e1 = k.initiate(bob, ghost).unwrap_err();
        let e2 = k.initiate(bob, real_dir).unwrap_err();
        assert_eq!(e1, KernelError::NoAccess);
        assert_eq!(e2, KernelError::NoAccess, "identical answers");
        // A wholly fictitious path below the unreadable directory
        // resolves to a usable-looking chain of mythical identifiers.
        let phantom = ns.resolve(&mut k, ">a>no>such>path").unwrap();
        assert_eq!(k.initiate(bob, phantom).unwrap_err(), KernelError::NoAccess);
        // In the *readable* root, a missing first component is honest.
        assert_eq!(
            ns.resolve(&mut k, ">nothing").unwrap_err(),
            KernelError::NoEntry
        );
    }
}
