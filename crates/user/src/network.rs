//! User-domain network protocol code (Ciccarelli, 1977).
//!
//! The kernel keeps only the network-independent demultiplexer; the
//! protocol logic — terminal line assembly, echo policy, whatever a
//! given network needs — runs here. "The bulk of the kernel is much
//! reduced, and only grows slightly as new networks are attached":
//! attaching [`ThirdNetTerminal`]'s network costs the kernel one
//! [`FramingSpec`] value, while all three protocol handlers below are
//! ordinary user code.

use mx_kernel::demux::{FramingSpec, StreamId};
use mx_kernel::{Kernel, KernelError, ProcessId};

/// A line-oriented terminal session over the ARPANET stream.
#[derive(Debug)]
pub struct ArpanetTerminal {
    stream: StreamId,
    channel: u16,
    pid: ProcessId,
    buffer: Vec<u8>,
}

impl ArpanetTerminal {
    /// Attaches (or reuses) the ARPANET stream and claims a channel.
    ///
    /// # Errors
    ///
    /// Gate errors claiming the channel.
    pub fn open(
        kernel: &mut Kernel,
        stream: StreamId,
        channel: u16,
        pid: ProcessId,
    ) -> Result<Self, KernelError> {
        kernel.demux_claim(pid, stream, channel)?;
        Ok(Self {
            stream,
            channel,
            pid,
            buffer: Vec::new(),
        })
    }

    /// The ARPANET framing spec the kernel is given at attach time.
    pub fn framing() -> FramingSpec {
        FramingSpec::ARPANET
    }

    /// Pulls buffered input and returns any complete CR-terminated
    /// lines (ARPANET NVT-ish line discipline, all user-domain).
    ///
    /// # Errors
    ///
    /// Gate errors reading the channel.
    pub fn read_lines(&mut self, kernel: &mut Kernel) -> Result<Vec<String>, KernelError> {
        let bytes = kernel.demux_read(self.pid, self.stream, self.channel)?;
        self.buffer.extend_from_slice(&bytes);
        let mut lines = Vec::new();
        while let Some(pos) = self.buffer.iter().position(|b| *b == b'\r') {
            let line: Vec<u8> = self.buffer.drain(..=pos).collect();
            lines.push(String::from_utf8_lossy(&line[..line.len() - 1]).into_owned());
        }
        Ok(lines)
    }
}

/// A terminal session over the local front-end processor.
#[derive(Debug)]
pub struct FrontEndTerminal {
    stream: StreamId,
    channel: u16,
    pid: ProcessId,
}

impl FrontEndTerminal {
    /// Claims a front-end channel.
    ///
    /// # Errors
    ///
    /// Gate errors claiming the channel.
    pub fn open(
        kernel: &mut Kernel,
        stream: StreamId,
        channel: u16,
        pid: ProcessId,
    ) -> Result<Self, KernelError> {
        kernel.demux_claim(pid, stream, channel)?;
        Ok(Self {
            stream,
            channel,
            pid,
        })
    }

    /// The front-end framing spec.
    pub fn framing() -> FramingSpec {
        FramingSpec::FRONT_END
    }

    /// Reads raw buffered input (the front end already framed it).
    ///
    /// # Errors
    ///
    /// Gate errors reading the channel.
    pub fn read(&mut self, kernel: &mut Kernel) -> Result<Vec<u8>, KernelError> {
        kernel.demux_read(self.pid, self.stream, self.channel)
    }
}

/// The demonstration third network: attaching it adds *no kernel code*,
/// only this user-domain handler plus a framing spec (2-byte channel at
/// offset 0, 1-byte length at offset 2, payload at 3).
#[derive(Debug)]
pub struct ThirdNetTerminal {
    stream: StreamId,
    channel: u16,
    pid: ProcessId,
}

impl ThirdNetTerminal {
    /// The third network's framing spec — the whole kernel-side cost of
    /// the new network.
    pub fn framing() -> FramingSpec {
        FramingSpec {
            channel_offset: 0,
            channel_bytes: 2,
            length_offset: Some(2),
            payload_offset: 3,
        }
    }

    /// Claims a channel.
    ///
    /// # Errors
    ///
    /// Gate errors claiming the channel.
    pub fn open(
        kernel: &mut Kernel,
        stream: StreamId,
        channel: u16,
        pid: ProcessId,
    ) -> Result<Self, KernelError> {
        kernel.demux_claim(pid, stream, channel)?;
        Ok(Self {
            stream,
            channel,
            pid,
        })
    }

    /// Reads and reverses each datagram (a stand-in for "this network's
    /// odd protocol quirk" living in user space).
    ///
    /// # Errors
    ///
    /// Gate errors reading the channel.
    pub fn read_quirky(&mut self, kernel: &mut Kernel) -> Result<Vec<u8>, KernelError> {
        let mut bytes = kernel.demux_read(self.pid, self.stream, self.channel)?;
        bytes.reverse();
        Ok(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx_aim::Label;
    use mx_kernel::{KernelConfig, UserId};

    fn boot() -> (Kernel, ProcessId) {
        let mut k = Kernel::boot(KernelConfig {
            frames: 128,
            records_per_pack: 256,
            toc_slots_per_pack: 64,
            pt_slots: 24,
            max_processes: 4,
            root_quota: 200,
            ..KernelConfig::default()
        });
        k.register_account("op", UserId(1), 7, Label::BOTTOM);
        let pid = k.login_residue("op", 7, Label::BOTTOM).unwrap();
        (k, pid)
    }

    #[test]
    fn arpanet_line_discipline_assembles_lines() {
        let (mut k, pid) = boot();
        let stream = k.demux_attach(ArpanetTerminal::framing());
        let mut term = ArpanetTerminal::open(&mut k, stream, 7, pid).unwrap();
        k.demux_receive(stream, &[0, 0, 7, b'h', b'e', b'l'])
            .unwrap();
        assert_eq!(term.read_lines(&mut k).unwrap(), Vec::<String>::new());
        k.demux_receive(stream, &[0, 0, 7, b'l', b'o', b'\r', b'x'])
            .unwrap();
        assert_eq!(term.read_lines(&mut k).unwrap(), vec!["hello".to_string()]);
    }

    #[test]
    fn three_networks_one_kernel_demultiplexer() {
        let (mut k, pid) = boot();
        let arpa = k.demux_attach(ArpanetTerminal::framing());
        let fe = k.demux_attach(FrontEndTerminal::framing());
        let third = k.demux_attach(ThirdNetTerminal::framing());
        assert_eq!(
            k.demux.stream_count(),
            3,
            "three specs, zero new kernel handlers"
        );

        let mut t_fe = FrontEndTerminal::open(&mut k, fe, 3, pid).unwrap();
        k.demux_receive(fe, &[3, 2, b'o', b'k']).unwrap();
        assert_eq!(t_fe.read(&mut k).unwrap(), b"ok");

        let mut t3 = ThirdNetTerminal::open(&mut k, third, 0x0102, pid).unwrap();
        k.demux_receive(third, &[1, 2, 3, b'a', b'b', b'c'])
            .unwrap();
        assert_eq!(t3.read_quirky(&mut k).unwrap(), b"cba");

        let _ = arpa;
    }

    #[test]
    fn events_flow_upward_for_claimed_channels() {
        let (mut k, pid) = boot();
        let stream = k.demux_attach(ArpanetTerminal::framing());
        let _term = ArpanetTerminal::open(&mut k, stream, 9, pid).unwrap();
        k.demux_receive(stream, &[0, 0, 9, b'!']).unwrap();
        let events = k.upm.drain_events();
        assert!(events.iter().any(|e| matches!(
            e,
            mx_kernel::user_process::KernelEvent::ChannelInput { channel: 9, .. }
        )));
    }
}
