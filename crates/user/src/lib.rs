//! The user domain: everything the kernel design project moved out.
//!
//! Four subsystems that ran inside the old supervisor run here as
//! ordinary, unprivileged code composed from the small kernel gate set:
//!
//! * [`namespace`] — tree-name expansion (Bratt): repeated calls of the
//!   single-directory search gate, with a per-process prefix cache —
//!   the reason the extracted name space manager "ran somewhat faster";
//! * [`linker`] — the dynamic linker (Janson): linkage faults resolved
//!   by reading symbol tables out of object segments through ordinary
//!   reads, at the cost of extra gate crossings — the reason the
//!   extracted linker ran "somewhat slower";
//! * [`answering`] — the answering service (Montgomery): login policy,
//!   session management and accounting presentation, over the sub-1000
//!   line kernel residue gate;
//! * [`network`] — per-network protocol code (Ciccarelli) over the
//!   network-independent kernel demultiplexer; attaching a third
//!   network adds user code and a framing spec, not kernel code.

pub mod answering;
pub mod linker;
pub mod namespace;
pub mod network;

pub use answering::{Admission, AnsweringService};
pub use linker::{publish_library, UserLinker};
pub use namespace::NameSpace;
pub use network::{ArpanetTerminal, FrontEndTerminal, ThirdNetTerminal};
