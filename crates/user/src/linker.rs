//! The user-domain dynamic linker (Janson, 1974).
//!
//! The extracted linker resolves a symbolic reference entirely with
//! unprivileged machinery: tree-name expansion through the name space
//! manager, an `initiate` gate, and then ordinary `read_word` gates to
//! scan the **symbol table stored in the object segment itself**. That
//! is more gate crossings and more faulted pages than the old in-kernel
//! linker needed — "the dynamic linker ran somewhat slower when removed
//! from the kernel" — but 2,000 lines and 11% of the user-visible gates
//! left ring zero.
//!
//! Symbol-table format (written by [`publish_library`]): word 0 is the
//! definition count; each definition is 9 words — 8 words of packed
//! name followed by the definition's word offset.

use crate::namespace::NameSpace;
use mx_hw::Word;
use mx_kernel::{Kernel, KernelError, ProcessId};
use std::collections::HashMap;

/// Words per symbol-table definition record.
const DEF_WORDS: u32 = 9;

fn pack_name(name: &str) -> [Word; 8] {
    let mut words = [Word::ZERO; 8];
    for (i, b) in name.bytes().take(32).enumerate() {
        let w = i / 4;
        let shift = (i % 4) as u32 * 9;
        words[w] = Word::new(words[w].raw() | (u64::from(b) << shift));
    }
    words
}

fn unpack_name(words: &[Word; 8]) -> String {
    let mut out = String::new();
    for w in words {
        for c in 0..4 {
            let b = ((w.raw() >> (c * 9)) & 0x1FF) as u8;
            if b == 0 {
                return out;
            }
            out.push(b as char);
        }
    }
    out
}

/// Writes a library's symbol table into its segment (what the compiler
/// and binder would have produced).
///
/// # Errors
///
/// Propagates gate errors (access, quota).
pub fn publish_library(
    kernel: &mut Kernel,
    pid: ProcessId,
    segno: u32,
    defs: &[(&str, u32)],
) -> Result<(), KernelError> {
    kernel.write_word(pid, segno, 0, Word::new(defs.len() as u64))?;
    for (i, (name, offset)) in defs.iter().enumerate() {
        let base = 1 + i as u32 * DEF_WORDS;
        for (j, w) in pack_name(name).iter().enumerate() {
            kernel.write_word(pid, segno, base + j as u32, *w)?;
        }
        kernel.write_word(pid, segno, base + 8, Word::new(u64::from(*offset)))?;
    }
    Ok(())
}

/// A snapped link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnappedLink {
    /// Segment number of the target in this process.
    pub segno: u32,
    /// Word offset of the definition.
    pub offset: u32,
}

/// The per-process user-domain linker.
#[derive(Debug)]
pub struct UserLinker {
    pid: ProcessId,
    /// Snapped links: (path, symbol) → target.
    snapped: HashMap<(String, String), SnappedLink>,
    /// Linkage faults taken (cache misses).
    pub faults: u64,
}

impl UserLinker {
    /// A linker for one process.
    pub fn new(pid: ProcessId) -> Self {
        Self {
            pid,
            snapped: HashMap::new(),
            faults: 0,
        }
    }

    /// Resolves `symbol` in the object segment at `path`, snapping the
    /// link for future calls.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoAccess`] if the path is unusable;
    /// [`KernelError::NoEntry`] if the symbol is absent.
    pub fn link(
        &mut self,
        kernel: &mut Kernel,
        ns: &mut NameSpace,
        path: &str,
        symbol: &str,
    ) -> Result<SnappedLink, KernelError> {
        if let Some(l) = self.snapped.get(&(path.to_string(), symbol.to_string())) {
            return Ok(*l);
        }
        self.faults += 1;
        // The linking algorithm itself (relocation decoding, definition
        // matching) runs as user-domain PL/I: charge its work. The
        // extracted algorithm was initially bigger than the in-kernel
        // one (the paper: the slowdown's causes were "well understood
        // and curable").
        kernel.charge_user_instructions(140, mx_hw::Language::Pli);
        let segno = ns.initiate(kernel, path)?;
        // Scan the symbol table out of the segment, one ordinary read at
        // a time (each a gate crossing, possibly a page fault).
        let count = kernel.read_word(self.pid, segno, 0)?.raw() as u32;
        for i in 0..count {
            kernel.charge_user_instructions(10, mx_hw::Language::Pli);
            let base = 1 + i * DEF_WORDS;
            let mut name_words = [Word::ZERO; 8];
            for (j, w) in name_words.iter_mut().enumerate() {
                *w = kernel.read_word(self.pid, segno, base + j as u32)?;
            }
            if unpack_name(&name_words) == symbol {
                let offset = kernel.read_word(self.pid, segno, base + 8)?.raw() as u32;
                let link = SnappedLink { segno, offset };
                self.snapped
                    .insert((path.to_string(), symbol.to_string()), link);
                return Ok(link);
            }
        }
        Err(KernelError::NoEntry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx_aim::Label;
    use mx_kernel::{Acl, KernelConfig, UserId};

    fn boot() -> (Kernel, ProcessId) {
        let mut k = Kernel::boot(KernelConfig {
            frames: 128,
            records_per_pack: 256,
            toc_slots_per_pack: 64,
            pt_slots: 24,
            max_processes: 4,
            root_quota: 200,
            ..KernelConfig::default()
        });
        k.register_account("dev", UserId(1), 9, Label::BOTTOM);
        let pid = k.login_residue("dev", 9, Label::BOTTOM).unwrap();
        (k, pid)
    }

    fn setup_lib(k: &mut Kernel, pid: ProcessId) -> NameSpace {
        let root = k.root_token();
        k.create_entry(
            pid,
            root,
            "libmath",
            Acl::owner(UserId(1)),
            Label::BOTTOM,
            false,
        )
        .unwrap();
        let mut ns = NameSpace::new(k, pid);
        let segno = ns.initiate(k, ">libmath").unwrap();
        publish_library(k, pid, segno, &[("sin", 100), ("cos", 200), ("sqrt", 300)]).unwrap();
        ns
    }

    #[test]
    fn link_finds_symbols_in_segment_storage() {
        let (mut k, pid) = boot();
        let mut ns = setup_lib(&mut k, pid);
        let mut linker = UserLinker::new(pid);
        let l = linker.link(&mut k, &mut ns, ">libmath", "cos").unwrap();
        assert_eq!(l.offset, 200);
        let l2 = linker.link(&mut k, &mut ns, ">libmath", "sqrt").unwrap();
        assert_eq!(l2.offset, 300);
        assert_eq!(l.segno, l2.segno, "same initiated segment");
    }

    #[test]
    fn snapped_links_skip_the_gates() {
        let (mut k, pid) = boot();
        let mut ns = setup_lib(&mut k, pid);
        let mut linker = UserLinker::new(pid);
        linker.link(&mut k, &mut ns, ">libmath", "sin").unwrap();
        let gates_before = k.machine.clock.gate_crossings();
        let l = linker.link(&mut k, &mut ns, ">libmath", "sin").unwrap();
        assert_eq!(l.offset, 100);
        assert_eq!(
            k.machine.clock.gate_crossings(),
            gates_before,
            "no gate at all once snapped"
        );
        assert_eq!(linker.faults, 1);
    }

    #[test]
    fn undefined_symbol_and_missing_library() {
        let (mut k, pid) = boot();
        let mut ns = setup_lib(&mut k, pid);
        let mut linker = UserLinker::new(pid);
        assert_eq!(
            linker.link(&mut k, &mut ns, ">libmath", "tan").unwrap_err(),
            KernelError::NoEntry
        );
        assert_eq!(
            linker.link(&mut k, &mut ns, ">libtrig", "sin").unwrap_err(),
            KernelError::NoEntry,
            "missing library surfaces as the honest no-entry in the readable root"
        );
    }
}
