//! A network file service — the paper's "specialized systems that are
//! dedicated to file storage and management".
//!
//! Three networks feed the kernel's *one* network-independent
//! demultiplexer; an unprivileged user-domain server process turns the
//! demultiplexed requests into file operations through the ordinary
//! gates. Attaching the third network costs the kernel a framing spec —
//! a few words of data — and nothing else.
//!
//! Wire protocol (inside each network's own framing): one request per
//! frame payload:
//!
//! ```text
//!   'W' <name-byte> <page> <value>   write value to page of file
//!   'R' <name-byte> <page>           read page of file (prints result)
//! ```
//!
//! ```text
//! cargo run --example file_service
//! ```

use multics::aim::Label;
use multics::hw::Word;
use multics::kernel::demux::StreamId;
use multics::kernel::{Acl, Kernel, KernelConfig, KernelError, ProcessId, UserId};
use multics::user::{ArpanetTerminal, FrontEndTerminal, NameSpace, ThirdNetTerminal};

/// The unprivileged file server: owns a directory of files keyed by a
/// one-byte name and executes requests arriving on its channels.
struct FileServer {
    pid: ProcessId,
    ns: NameSpace,
    served: u64,
}

impl FileServer {
    fn new(kernel: &mut Kernel, pid: ProcessId) -> Self {
        let root = kernel.root_token();
        kernel
            .create_entry(
                pid,
                root,
                "served",
                Acl::owner(UserId(1)),
                Label::BOTTOM,
                true,
            )
            .expect("server directory");
        Self {
            pid,
            ns: NameSpace::new(kernel, pid),
            served: 0,
        }
    }

    fn ensure_file(&mut self, kernel: &mut Kernel, name: u8) -> Result<u32, KernelError> {
        let path = format!(">served>file-{name}");
        match self.ns.initiate(kernel, &path) {
            Ok(segno) => Ok(segno),
            Err(KernelError::NoEntry) => {
                let dir = self.ns.resolve(kernel, ">served")?;
                kernel.create_entry(
                    self.pid,
                    dir,
                    &format!("file-{name}"),
                    Acl::owner(UserId(1)),
                    Label::BOTTOM,
                    false,
                )?;
                self.ns.initiate(kernel, &path)
            }
            Err(e) => Err(e),
        }
    }

    /// Executes one request payload; returns a human-readable log line.
    fn serve(&mut self, kernel: &mut Kernel, payload: &[u8]) -> String {
        self.served += 1;
        let reply = (|| -> Result<String, KernelError> {
            match payload {
                [b'W', name, page, value] => {
                    let segno = self.ensure_file(kernel, *name)?;
                    kernel.write_word(
                        self.pid,
                        segno,
                        u32::from(*page) * 1024,
                        Word::new(u64::from(*value)),
                    )?;
                    Ok(format!("W file-{name} page {page} := {value}"))
                }
                [b'R', name, page] => {
                    let segno = self.ensure_file(kernel, *name)?;
                    let w = kernel.read_word(self.pid, segno, u32::from(*page) * 1024)?;
                    Ok(format!("R file-{name} page {page} -> {}", w.raw()))
                }
                _ => Ok("malformed request dropped".to_string()),
            }
        })();
        match reply {
            Ok(s) => s,
            Err(e) => format!("request failed: {e}"),
        }
    }
}

fn main() {
    let mut kernel = Kernel::boot(KernelConfig::default());
    kernel.register_account("server", UserId(1), 1, Label::BOTTOM);
    let pid = kernel
        .login_residue("server", 1, Label::BOTTOM)
        .expect("server login");

    // One demultiplexer, three networks: the kernel grows by three
    // framing specs, not three handlers.
    let arpa: StreamId = kernel.demux_attach(ArpanetTerminal::framing());
    let fe: StreamId = kernel.demux_attach(FrontEndTerminal::framing());
    let third: StreamId = kernel.demux_attach(ThirdNetTerminal::framing());
    for (stream, channel) in [(arpa, 7u16), (fe, 3), (third, 0x0102)] {
        kernel.demux_claim(pid, stream, channel).expect("claim");
    }
    println!(
        "file service up: {} streams through the single kernel demultiplexer\n",
        kernel.demux.stream_count()
    );

    let mut server = FileServer::new(&mut kernel, pid);

    // Traffic arrives from all three networks, each in its own framing.
    // ARPANET: 3-byte leader then payload.
    let arpa_frames: Vec<Vec<u8>> = vec![
        vec![0, 0, 7, b'W', 1, 0, 42],
        vec![0, 0, 7, b'W', 1, 5, 43],
        vec![0, 0, 7, b'R', 1, 0],
    ];
    // Front end: channel, length, payload.
    let fe_frames: Vec<Vec<u8>> = vec![
        vec![3, 4, b'W', 2, 0, 99],
        vec![3, 3, b'R', 2, 0],
        vec![3, 3, b'R', 1, 5], // Cross-network read of net-1's file.
    ];
    // Third net: 2-byte channel, length, payload.
    let third_frames: Vec<Vec<u8>> = vec![vec![1, 2, 3, b'R', 9, 0], vec![1, 2, 4, b'W', 9, 0, 7]];

    for f in &arpa_frames {
        kernel.demux_receive(arpa, f).unwrap();
    }
    for f in &fe_frames {
        kernel.demux_receive(fe, f).unwrap();
    }
    for f in &third_frames {
        kernel.demux_receive(third, f).unwrap();
    }

    // The server drains each channel and serves the requests.
    for (label, stream, channel) in [
        ("arpanet", arpa, 7u16),
        ("front-end", fe, 3),
        ("third-net", third, 0x0102),
    ] {
        let bytes = kernel
            .demux_read(pid, stream, channel)
            .expect("read channel");
        // Requests were concatenated by the demux; re-split by opcode
        // arity (W=4 bytes, R=3).
        let mut rest = &bytes[..];
        while !rest.is_empty() {
            let len = if rest[0] == b'W' { 4 } else { 3 };
            let (req, tail) = rest.split_at(len.min(rest.len()));
            println!("[{label}] {}", server.serve(&mut kernel, req));
            rest = tail;
        }
    }

    println!("\nserved {} requests", server.served);
    println!(
        "events delivered upward through the real-memory queue: {}",
        kernel.vpm.read_eventcount(kernel.upm.queue_event)
    );
    let (frames_in, frames_bad) = kernel.demux.frame_counts(arpa).unwrap();
    println!("arpanet stream: {frames_in} frames in, {frames_bad} dropped");
}
