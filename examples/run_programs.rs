//! Executing user programs on both supervisors.
//!
//! Assembles a small program — it builds a 3,000-word table across
//! three pages, then sums it — stores it in a segment, and runs it on
//! the old supervisor and on Kernel/Multics. Every instruction fetch
//! goes through real address translation; the stores into fresh pages
//! raise the growth paths of each design (dynamic quota walk vs. the
//! hardware quota exception).
//!
//! ```text
//! cargo run --example run_programs
//! ```

use multics::aim::Label;
use multics::hw::interp::{assemble, Instr, Op};
use multics::hw::Word;
use multics::kernel::{Acl, Kernel, KernelConfig, UserId};
use multics::legacy::{Acl as LAcl, Supervisor, SupervisorConfig, UserId as LUserId};

/// The benchmark program, parameterized by the data segment's number.
///
/// ```text
///   for X in 0..3000 { data[X] = 1 }       (three pages of growth)
///   sum = 0; for X in 0..3000 { sum += data[X] }
///   A = sum; HLT
/// ```
fn program(prog_seg: u32, data_seg: u32) -> Vec<Word> {
    const N: u32 = 3000;
    assemble(&[
        // fill loop @0
        Instr::imm(Op::Ldx, 0),            // 0: X = 0
        Instr::imm(Op::Ldi, 1),            // 1: A = 1     (loop @1)
        Instr::mem(Op::Stax, data_seg, 0), // 2: data[X] = 1
        Instr::imm(Op::Inx, 1),            // 3: X += 1
        Instr::imm(Op::Cpx, N),            // 4
        Instr::mem(Op::Jne, prog_seg, 1),  // 5: loop
        // sum loop
        Instr::imm(Op::Ldi, 0),              // 6: A = 0
        Instr::mem(Op::Sta, data_seg, 4000), // 7: sum = 0 (word 4000, page 3)
        Instr::imm(Op::Ldx, 0),              // 8: X = 0
        Instr::mem(Op::Ldax, data_seg, 0),   // 9: A = data[X]   (loop @9)
        Instr::mem(Op::Add, data_seg, 4000), // 10: A += sum
        Instr::mem(Op::Sta, data_seg, 4000), // 11: sum = A
        Instr::imm(Op::Inx, 1),              // 12: X += 1
        Instr::imm(Op::Cpx, N),              // 13
        Instr::mem(Op::Jne, prog_seg, 9),    // 14: loop
        Instr::mem(Op::Lda, data_seg, 4000), // 15: A = sum
        Instr::bare(Op::Hlt),                // 16
    ])
}

fn main() {
    // ------------------------------------------------ old supervisor --
    let mut sup = Supervisor::boot(SupervisorConfig::default());
    let lpid = sup.create_process(LUserId(1), Label::BOTTOM).unwrap();
    sup.create_segment_in(sup.root(), "prog", LAcl::owner(LUserId(1)), Label::BOTTOM)
        .unwrap();
    sup.create_segment_in(sup.root(), "data", LAcl::owner(LUserId(1)), Label::BOTTOM)
        .unwrap();
    let prog_seg = sup.initiate(lpid, "prog").unwrap();
    let data_seg = sup.initiate(lpid, "data").unwrap();
    for (i, w) in program(prog_seg, data_seg).iter().enumerate() {
        sup.user_write(lpid, prog_seg, i as u32, *w).unwrap();
    }
    let before = sup.machine.clock.now();
    let (steps, regs) = sup.run_program(lpid, prog_seg, 0, 100_000).unwrap();
    println!("old supervisor:");
    println!("  program ran {steps} instructions, A = {}", regs.a.raw());
    println!("  cycles: {}", sup.machine.clock.now() - before);
    println!(
        "  page faults {}, quota walks {} (avg {:.1} levels)",
        sup.stats.page_faults,
        sup.stats.quota_walks,
        sup.stats.quota_walk_levels as f64 / sup.stats.quota_walks.max(1) as f64
    );

    // ------------------------------------------------- Kernel/Multics --
    let mut k = Kernel::boot(KernelConfig::default());
    k.register_account("runner", UserId(1), 1, Label::BOTTOM);
    let pid = k.login_residue("runner", 1, Label::BOTTOM).unwrap();
    let root = k.root_token();
    let prog_tok = k
        .create_entry(
            pid,
            root,
            "prog",
            Acl::owner(UserId(1)),
            Label::BOTTOM,
            false,
        )
        .unwrap();
    let data_tok = k
        .create_entry(
            pid,
            root,
            "data",
            Acl::owner(UserId(1)),
            Label::BOTTOM,
            false,
        )
        .unwrap();
    let kprog = k.initiate(pid, prog_tok).unwrap();
    let kdata = k.initiate(pid, data_tok).unwrap();
    for (i, w) in program(kprog, kdata).iter().enumerate() {
        k.write_word(pid, kprog, i as u32, *w).unwrap();
    }
    let before = k.machine.clock.now();
    let run = k.run_program(pid, kprog, 0, 100_000).unwrap();
    println!("\nKernel/Multics:");
    println!(
        "  program ran {} instructions ({:?}), A = {}",
        run.steps,
        run.outcome,
        run.regs.a.raw()
    );
    println!("  cycles: {}", k.machine.clock.now() - before);
    println!(
        "  page faults {}, quota exceptions {} (every creation a direct cell hit)",
        k.stats.page_faults, k.stats.quota_faults
    );

    assert_eq!(regs.a.raw(), 3000);
    assert_eq!(run.regs.a.raw(), 3000);
    println!("\nboth systems computed sum = 3000 through real paged execution");
}
