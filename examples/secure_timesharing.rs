//! Secure time-sharing: AIM levels and compartments end to end.
//!
//! Reproduces the paper's motivating scenario — a machine shared by
//! users at different sensitivity levels, with mandatory controls (the
//! Access Isolation Mechanism of box 1) enforced at every gate — and
//! shows the residual covert channel the paper itself points out.
//!
//! ```text
//! cargo run --example secure_timesharing
//! ```

use multics::aim::{AccessKind, CompartmentSet, Label, Level, ReferenceMonitor};
use multics::hw::Word;
use multics::kernel::{AccessRight, Acl, Kernel, KernelConfig, KernelError, UserId};
use multics::user::AnsweringService;

fn main() {
    let mut kernel = Kernel::boot(KernelConfig::default());
    let mut answering = AnsweringService::new();

    let unclass = Label::BOTTOM;
    let secret = Label::new(Level(2), CompartmentSet::empty());
    let secret_crypto = Label::new(Level(2), CompartmentSet::empty().with(0));

    answering.register(&mut kernel, "clerk", UserId(1), "pw1", unclass);
    answering.register(&mut kernel, "analyst", UserId(2), "pw2", secret);
    answering.register(
        &mut kernel,
        "cryptographer",
        UserId(3),
        "pw3",
        secret_crypto,
    );

    // Everyone logs in at (up to) their clearance.
    let clerk = answering
        .login(&mut kernel, "clerk", "pw1", unclass)
        .unwrap();
    let analyst = answering
        .login(&mut kernel, "analyst", "pw2", secret)
        .unwrap();
    let crypt = answering
        .login(&mut kernel, "cryptographer", "pw3", secret_crypto)
        .unwrap();
    println!(
        "three sessions live: clerk {unclass}, analyst {secret}, cryptographer {secret_crypto}"
    );

    // The clerk publishes an unclassified bulletin everyone may read.
    let root = kernel.root_token();
    let mut world_read = Acl::owner(UserId(1));
    for u in [2, 3] {
        world_read.grant(UserId(u), &[AccessRight::Read]);
    }
    let bulletin = kernel
        .create_entry(clerk, root, "bulletin", world_read, unclass, false)
        .unwrap();
    let b_clerk = kernel.initiate(clerk, bulletin).unwrap();
    kernel
        .write_word(clerk, b_clerk, 0, Word::new(0o52_52_52))
        .unwrap();

    // Reading up the lattice is fine (simple security grants): the
    // analyst reads the unclassified bulletin.
    let b_analyst = kernel.initiate(analyst, bulletin).unwrap();
    println!(
        "analyst reads the unclassified bulletin: {}",
        kernel.read_word(analyst, b_analyst, 0).unwrap()
    );
    // But the analyst cannot WRITE it — the ⋆-property stops write-down.
    match kernel.write_word(analyst, b_analyst, 0, Word::new(1)) {
        Err(KernelError::NoAccess) => println!("analyst write-down to the bulletin: refused"),
        other => panic!("expected refusal, got {other:?}"),
    }

    // The analyst files a secret report; ACL grants the clerk read, but
    // the label wins: the clerk sees the uniform refusal.
    let mut acl = Acl::owner(UserId(2));
    acl.grant(UserId(1), &[AccessRight::Read]);
    let report = kernel
        .create_entry(analyst, root, "report", acl, secret, false)
        .unwrap();
    let r_analyst = kernel.initiate(analyst, report).unwrap();
    kernel
        .write_word(analyst, r_analyst, 0, Word::new(0o777))
        .unwrap();
    assert_eq!(
        kernel.initiate(clerk, report).unwrap_err(),
        KernelError::NoAccess
    );
    println!("clerk read-up of the secret report: refused (uniform 'no access')");

    // Compartments are incomparable even at the same level: the analyst
    // and the cryptographer cannot read each other's material.
    assert!(secret.incomparable(secret_crypto) || secret_crypto.dominates(secret));
    let cipher = kernel
        .create_entry(
            crypt,
            root,
            "cipher",
            Acl::owner(UserId(3)),
            secret_crypto,
            false,
        )
        .unwrap();
    assert_eq!(
        kernel.initiate(analyst, cipher).unwrap_err(),
        KernelError::NoAccess
    );
    println!("analyst touch of compartment-0 material: refused");

    // The decision function is pure and auditable.
    println!("\nreference-monitor spot checks:");
    for (s, o, kind, label) in [
        (secret, unclass, AccessKind::Read, "secret reads unclass"),
        (unclass, secret, AccessKind::Read, "unclass reads secret"),
        (unclass, secret, AccessKind::Write, "unclass writes secret"),
        (
            secret,
            secret_crypto,
            AccessKind::Read,
            "secret reads secret{0}",
        ),
    ] {
        println!(
            "  {label:<26} -> {:?}",
            ReferenceMonitor::decide(s, o, kind)
        );
    }

    // The confinement caveat the paper closes with: reading a hole in a
    // sparse low file updates low accounting state on behalf of a high
    // subject.
    let sparse = kernel
        .create_entry(
            clerk,
            root,
            "sparse",
            {
                let mut a = Acl::owner(UserId(1));
                a.grant(UserId(2), &[AccessRight::Read]);
                a
            },
            unclass,
            false,
        )
        .unwrap();
    let s_clerk = kernel.initiate(clerk, sparse).unwrap();
    kernel
        .write_word(clerk, s_clerk, 9 * 1024, Word::new(5))
        .unwrap();
    let before = kernel.flows.violation_count();
    let s_analyst = kernel.initiate(analyst, sparse).unwrap();
    kernel.read_word(analyst, s_analyst, 3 * 1024).unwrap(); // A hole.
    println!(
        "\nconfinement: the analyst's read of a hole materialized a page and \
         updated a low quota cell\n  unlawful flows recorded: {} -> {}",
        before,
        kernel.flows.violation_count()
    );

    for (who, pid) in [
        ("clerk", clerk),
        ("analyst", analyst),
        ("cryptographer", crypt),
    ] {
        let units = answering.logout(&mut kernel, pid).unwrap();
        println!("{who} logged out ({units} charge units)");
    }
}
