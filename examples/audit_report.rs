//! The integrity auditor's view: dependency lattices and kernel size.
//!
//! The project's goal was "to make integrity auditing feasible". This
//! example plays the auditor: it takes the two supervisor designs'
//! declared structures, shows why the old one cannot be audited a module
//! at a time and the new one can, and reprints the size ledger the paper
//! uses to argue the kernel can be halved.
//!
//! ```text
//! cargo run --example audit_report
//! ```

use multics::census::multics::{standard_transforms, start_of_project};
use multics::census::{entry_point_stats, size_table};
use multics::deps::render::render_audit_costs;
use multics::deps::ModuleGraph;

fn audit(name: &str, g: &ModuleGraph) {
    println!("== auditing: {name} ==");
    match g.layers() {
        Ok(layers) => {
            println!("verdict: LOOP-FREE — correctness can be established iteratively,");
            println!("one module at a time, bottom-up:");
            for (i, layer) in layers.iter().enumerate() {
                let names: Vec<&str> = layer.iter().map(|m| g.name(*m)).collect();
                println!("  pass {i}: certify {}", names.join(", "));
            }
        }
        Err(loops) => {
            println!(
                "verdict: {} DEPENDENCY LOOP(S) — module-at-a-time auditing fails.",
                loops.len()
            );
            for comp in &loops {
                let names: Vec<&str> = comp.iter().map(|m| g.name(*m)).collect();
                println!("  these must be believed *together*: {}", names.join(", "));
                for e in g.loop_edges(comp).iter().take(6) {
                    println!(
                        "    because {} -> {} [{}]",
                        g.name(e.from),
                        g.name(e.to),
                        e.kind.label()
                    );
                }
            }
        }
    }
    println!("\naudit cost (modules whose correctness each one assumes):");
    print!("{}", render_audit_costs(g));
    println!();
}

fn main() {
    audit(
        "the 1974 supervisor (Figure 3)",
        &multics::legacy::actual_structure(),
    );
    audit(
        "Kernel/Multics (Figure 4)",
        &multics::kernel::kernel_structure(),
    );

    println!("== what the auditor must read ==");
    let catalogue = start_of_project();
    let table = size_table(&catalogue, &standard_transforms());
    println!("{table}");
    let stats = entry_point_stats(&catalogue, "linker");
    println!(
        "the linker alone was {:.0}% of the gates a user could call;\n\
         extracting it (and the name space, answering service, networks)\n\
         shrank the audited interface from 157 gates to the {} this\n\
         reproduction's kernel exposes:",
        stats.user_gate_pct,
        multics::kernel::Kernel::USER_GATES.len(),
    );
    for gate in multics::kernel::Kernel::USER_GATES {
        println!("  {gate}");
    }
}
