//! Quickstart: boot Kernel/Multics, log in, make a file, watch it page.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use multics::aim::Label;
use multics::hw::Word;
use multics::kernel::{Acl, Kernel, KernelConfig, UserId};
use multics::user::{AnsweringService, NameSpace};

fn main() {
    // Boot the kernel on the simulated machine (with the paper's
    // proposed hardware additions: lock bit, quota trap, dual DBR).
    let mut kernel = Kernel::boot(KernelConfig::default());
    println!("Kernel/Multics booted:");
    println!("  {} fixed virtual processors", kernel.vpm.count());
    println!("  {} pageable frames", kernel.pfm.pageable());
    println!(
        "  {} user gates: {:?}\n",
        Kernel::USER_GATES.len(),
        Kernel::USER_GATES
    );

    // The answering service (user domain) registers an account and logs
    // in through the kernel residue gate.
    let mut answering = AnsweringService::new();
    answering.register(&mut kernel, "grace", UserId(1), "hopper", Label::BOTTOM);
    let pid = answering
        .login(&mut kernel, "grace", "hopper", Label::BOTTOM)
        .expect("login");
    println!("logged in as 'grace' -> process {pid:?}");

    // Build a small tree with the user-domain name space manager.
    let root = kernel.root_token();
    let home = kernel
        .create_entry(
            pid,
            root,
            "home",
            Acl::owner(UserId(1)),
            Label::BOTTOM,
            true,
        )
        .expect("mkdir >home");
    kernel
        .create_entry(
            pid,
            home,
            "notes",
            Acl::owner(UserId(1)),
            Label::BOTTOM,
            false,
        )
        .expect("create >home>notes");
    let mut ns = NameSpace::new(&mut kernel, pid);
    let segno = ns.initiate(&mut kernel, ">home>notes").expect("initiate");
    println!("initiated >home>notes as segment number {segno}");

    // Writing a never-before-used page raises the hardware quota
    // exception; the kernel checks the statically bound quota cell and
    // creates the page.
    // Four 9-bit characters fit one 36-bit word.
    for (i, word) in ["MULT", "KERN", "DSGN"].iter().enumerate() {
        let packed = word.bytes().fold(0u64, |acc, b| (acc << 9) | u64::from(b));
        kernel
            .write_word(pid, segno, i as u32 * 1024, Word::new(packed))
            .expect("write");
    }
    println!("wrote 3 words on 3 pages (3 quota exceptions serviced)");

    // Force the pages out, then read them back through real missing-page
    // faults serviced under the descriptor lock protocol.
    let notes_token = kernel.dir_search(pid, home, "notes").unwrap();
    let uid = kernel.uid_of_token(notes_token).unwrap();
    let handle = kernel.segm.get(uid).unwrap().handle;
    kernel
        .pfm
        .flush(
            &mut kernel.machine,
            &mut kernel.drm,
            &mut kernel.qcm,
            handle,
        )
        .expect("flush");
    for i in 0..3u32 {
        let w = kernel.read_word(pid, segno, i * 1024).expect("read");
        print!("  page {i}: ");
        let mut bytes = Vec::new();
        let mut v = w.raw();
        while v != 0 {
            bytes.push((v & 0x1FF) as u8);
            v >>= 9;
        }
        bytes.reverse();
        println!("{}", String::from_utf8_lossy(&bytes));
    }

    // Session accounting.
    kernel.schedule();
    let charge = answering.logout(&mut kernel, pid).expect("logout");
    println!("\nlogged out; session billed {charge} units");
    println!(
        "kernel counters: {} segment faults, {} page faults, {} quota exceptions",
        kernel.stats.segment_faults, kernel.stats.page_faults, kernel.stats.quota_faults
    );
    println!(
        "machine clock: {} simulated cycles",
        kernel.machine.clock.now()
    );
}
