//! The Multics Kernel Design Project, reproduced in Rust — facade crate.
//!
//! This crate re-exports the whole workspace under one roof for the
//! examples and integration tests:
//!
//! * [`hw`] — the simulated 36-bit segmented-paged machine;
//! * [`sync`] — Reed–Kanodia eventcounts, sequencers, the real-memory
//!   message queue;
//! * [`aim`] — the Access Isolation Mechanism (Bell–LaPadula);
//! * [`deps`] — dependency-structure analysis (the five kinds, loops,
//!   lattices);
//! * [`legacy`] — the 1974 supervisor with its dependency loops
//!   (Figures 2/3);
//! * [`kernel`] — the loop-free, type-extended Kernel/Multics
//!   (Figure 4), the paper's primary contribution;
//! * [`user`] — the extracted user-domain subsystems (linker, name
//!   space, answering service, network protocols);
//! * [`census`] — the kernel-size census engine and the 1973/1977
//!   catalogue;
//! * [`bench_harness`] — workload generators and the experiment drivers behind
//!   `repro` and `cargo bench`;
//! * [`explore`] — the deterministic schedule-exploration harness
//!   (pluggable dispatch/wakeup policies, oracle-checked scenarios,
//!   replay-from-seed);
//! * [`load`] — the deterministic multi-user load harness (seeded
//!   session scripts driven byte-identically through both designs,
//!   with latency histograms and admission queueing).
//!
//! # Examples
//!
//! ```
//! use multics::kernel::{Kernel, KernelConfig};
//! use multics::aim::Label;
//!
//! let mut k = Kernel::boot(KernelConfig::default());
//! k.register_account("demo", multics::kernel::UserId(1), 42, Label::BOTTOM);
//! let pid = k.login_residue("demo", 42, Label::BOTTOM).unwrap();
//! let root = k.root_token();
//! let tok = k
//!     .create_entry(
//!         pid,
//!         root,
//!         "hello",
//!         multics::kernel::Acl::owner(multics::kernel::UserId(1)),
//!         Label::BOTTOM,
//!         false,
//!     )
//!     .unwrap();
//! let segno = k.initiate(pid, tok).unwrap();
//! k.write_word(pid, segno, 0, multics::hw::Word::new(0o1776)).unwrap();
//! assert_eq!(k.read_word(pid, segno, 0).unwrap(), multics::hw::Word::new(0o1776));
//! ```

pub use mx_aim as aim;
pub use mx_bench as bench_harness;
pub use mx_census as census;
pub use mx_deps as deps;
pub use mx_explore as explore;
pub use mx_hw as hw;
pub use mx_kernel as kernel;
pub use mx_legacy as legacy;
pub use mx_load as load;
pub use mx_sync as sync;
pub use mx_user as user;
